//! Umbrella crate for the `circlekit` reproduction workspace.
//!
//! This crate exists to host the workspace-wide integration tests (in
//! `tests/`) and the runnable examples (in `examples/`). The actual library
//! code lives in the `crates/` members; start with the [`circlekit`] facade
//! crate.

pub use circlekit;
