//! Quickstart: build a small social graph, define a circle, and score it
//! with the paper's four community scoring functions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use circlekit::graph::{GraphBuilder, VertexSet};
use circlekit::scoring::{Scorer, ScoringFunction};

fn main() {
    // A toy directed social graph: a tight clique of friends (0-3), a
    // couple of acquaintances (4, 5), and a celebrity (6) everyone follows.
    let mut b = GraphBuilder::directed();
    for u in 0..4u32 {
        for v in 0..4u32 {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.add_edge(0, 4).add_edge(4, 0); // a mutual acquaintance
    b.add_edge(1, 5);
    for v in 0..6u32 {
        b.add_edge(v, 6); // everyone follows the celebrity
    }
    let graph = b.build();
    println!(
        "graph: {} vertices, {} directed edges",
        graph.node_count(),
        graph.edge_count()
    );

    // The owner's "friends" circle: the clique.
    let friends: VertexSet = (0u32..4).collect();
    // A "following" circle: acquaintances plus the celebrity.
    let following = VertexSet::from_vec(vec![4, 5, 6]);

    let mut scorer = Scorer::new(&graph);
    for (name, circle) in [("friends", &friends), ("following", &following)] {
        println!("\ncircle {name:?} ({} members):", circle.len());
        let stats = scorer.stats(circle);
        println!("  n_C={} m_C={} c_C={}", stats.n_c, stats.m_c, stats.c_c);
        for f in ScoringFunction::PAPER {
            println!("  {:<16} {:>8.4}", f.name(), f.score(&stats));
        }
    }

    // The full 13-function Yang-Leskovec suite is available too.
    let stats = scorer.stats(&friends);
    println!("\nfull suite on \"friends\":");
    for f in ScoringFunction::ALL {
        println!(
            "  [{:<11}] {:<16} {:>8.4}",
            f.category().to_string(),
            f.name(),
            f.score(&stats)
        );
    }
}
