//! The paper's Figure 6 workflow: score circles (Google+/Twitter shapes)
//! and classical communities (LiveJournal/Orkut shapes) with the same four
//! functions and compare the distributions.
//!
//! ```sh
//! cargo run --release --example circles_vs_communities [scale]
//! ```

use circlekit::experiments::compare_datasets;
use circlekit::render::render_fig6;
use circlekit::scoring::ScoringFunction;
use circlekit::synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);

    println!("generating the four corpora at scale {scale} ...");
    let gp = presets::google_plus()
        .scaled(scale)
        .generate(&mut SmallRng::seed_from_u64(2014));
    let tw = presets::twitter()
        .scaled(scale)
        .generate(&mut SmallRng::seed_from_u64(2015));
    // Community corpora are ~30x larger than the ego crawls in the paper;
    // keep a size gap so the Ratio Cut contrast survives the scaling.
    let lj = presets::livejournal()
        .scaled(scale * 0.25)
        .generate(&mut SmallRng::seed_from_u64(2016));
    let ok = presets::orkut()
        .scaled(scale * 0.25)
        .generate(&mut SmallRng::seed_from_u64(2017));

    for ds in [&gp, &tw, &lj, &ok] {
        println!("  {}", ds.summary());
    }

    let scores = compare_datasets(&[&gp, &tw, &lj, &ok]);
    print!("{}", render_fig6(&scores));

    println!("\npaper-shape checks:");
    let ratio = |i: usize| scores[i].summary(ScoringFunction::RatioCut).expect("scored").mean;
    println!(
        "  ratio cut: circles >> communities ({:.4}, {:.4} vs {:.4}, {:.4}): {}",
        ratio(0),
        ratio(1),
        ratio(2),
        ratio(3),
        ratio(0) > ratio(2) && ratio(1) > ratio(2)
    );
    let cond = |i: usize| {
        scores[i]
            .summary(ScoringFunction::Conductance)
            .expect("scored")
            .median
    };
    println!(
        "  conductance: circles ~1, communities spread ({:.2}, {:.2} vs {:.2}, {:.2}): {}",
        cond(0),
        cond(1),
        cond(2),
        cond(3),
        cond(0) > cond(2) && cond(1) > cond(2)
    );
}
