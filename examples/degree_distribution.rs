//! The paper's §IV-A.1 / Figure 3 workflow: fit power-law, log-normal and
//! exponential models to in-degree sequences the CSN way, and show that
//! the crawl strategy decides the verdict (ego crawl → log-normal,
//! BFS crawl of a power-law population → power-law).
//!
//! ```sh
//! cargo run --release --example degree_distribution
//! ```

use circlekit::experiments::degree_fit;
use circlekit::metrics::DegreeKind;
use circlekit::render::render_fig3;
use circlekit::synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let ego = presets::google_plus()
        .scaled(0.01)
        .generate(&mut SmallRng::seed_from_u64(2014));
    let bfs = presets::magno()
        .scaled(0.0003)
        .generate(&mut SmallRng::seed_from_u64(2018));

    for (label, ds) in [("ego crawl (McAuley-Leskovec shape)", &ego), ("BFS crawl (Magno shape)", &bfs)] {
        println!("=== {label}: {} vertices ===", ds.graph.node_count());
        match degree_fit(ds, DegreeKind::In) {
            Ok(report) => {
                print!("{}", render_fig3(&report));
                println!(
                    "paper expectation: {} -> measured: {}\n",
                    if ds.name.starts_with("google") {
                        "log-normal"
                    } else {
                        "power-law"
                    },
                    report.family()
                );
            }
            Err(e) => println!("fit failed: {e}\n"),
        }
    }
}
