//! The paper's Figure 5 workflow: generate a Google+-shaped ego-network
//! data set, score its circles and a size-matched random-walk baseline,
//! and print the comparison.
//!
//! ```sh
//! cargo run --release --example gplus_circles [scale]
//! ```

use circlekit::experiments::{circles_vs_random, ModularityMode};
use circlekit::render::render_fig5;
use circlekit::synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let mut rng = SmallRng::seed_from_u64(2014);

    println!("generating google+-shaped data set at scale {scale} ...");
    let dataset = presets::google_plus().scaled(scale).generate(&mut rng);
    println!(
        "{}: {} vertices, {} edges, {} circles in {} ego networks\n",
        dataset.name,
        dataset.graph.node_count(),
        dataset.graph.edge_count(),
        dataset.groups.len(),
        dataset.egos.len()
    );

    let result = circles_vs_random(&dataset, ModularityMode::ClosedForm, &mut rng);
    print!("{}", render_fig5(&result, 11));

    println!("\npaper-shape checks:");
    let avg = &result.per_function[0];
    println!(
        "  circles denser than random walks (avg degree {:.2} vs {:.2}): {}",
        avg.circles.mean,
        avg.random.mean,
        avg.circles.mean > avg.random.mean
    );
    let modularity = &result.per_function[3];
    println!(
        "  circles separate from the null model (modularity {:.4} vs {:.4}): {}",
        modularity.circles.mean,
        modularity.random.mean,
        modularity.circles.mean > modularity.random.mean
    );
    println!(
        "  >50% of circles modularity-significant: {} ({:.0}%)",
        result.modularity_significant_fraction > 0.5,
        100.0 * result.modularity_significant_fraction
    );
}
