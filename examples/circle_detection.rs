//! Extension experiment: detect circles automatically in ego networks
//! (the McAuley–Leskovec problem, solved with a label-propagation
//! baseline) and ask the paper's question about them — do *detected*
//! circles score like the labelled ones?
//!
//! ```sh
//! cargo run --release --example circle_detection
//! ```

use circlekit::detect::detect_circles;
use circlekit::scoring::{Scorer, ScoringFunction};
use circlekit::stats::Summary;
use circlekit::synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2014);
    let dataset = presets::google_plus().scaled(0.008).generate(&mut rng);
    println!(
        "{}: {} vertices, {} labelled circles, {} ego networks",
        dataset.name,
        dataset.graph.node_count(),
        dataset.groups.len(),
        dataset.egos.len()
    );

    // Detect circles in every ego network.
    let mut detected = Vec::new();
    for &owner in &dataset.ego_owners {
        detected.extend(detect_circles(&dataset.graph, owner, 5, &mut rng));
    }
    println!("detected {} circles (>= 5 members) via label propagation", detected.len());

    // Best-Jaccard match of each detected circle against the labels.
    let jaccards: Vec<f64> = detected
        .iter()
        .map(|d| {
            dataset
                .groups
                .iter()
                .map(|g| d.jaccard(g))
                .fold(0.0f64, f64::max)
        })
        .collect();
    println!("best-match Jaccard: {}", Summary::from_slice(&jaccards));

    // Score both collections with the paper's functions.
    let mut scorer = Scorer::new(&dataset.graph);
    println!("\n{:<16} {:>12} {:>12}", "function", "labelled", "detected");
    for f in ScoringFunction::PAPER {
        let labelled = Summary::from_slice(&scorer.score_sets(f, &dataset.groups));
        let found = Summary::from_slice(&scorer.score_sets(f, &detected));
        println!("{:<16} {:>12.4} {:>12.4}", f.name(), labelled.mean, found.mean);
    }
    println!(
        "\nInterpretation: detected clusters sit inside the same dense ego\n\
         networks, so they inherit the circles' signature — dense inside,\n\
         heavily connected outward (conductance near 1)."
    );
}
