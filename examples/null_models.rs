//! Null-model tour: the machinery behind the paper's Modularity score
//! (eq. 4) and the §IV reference models.
//!
//! ```sh
//! cargo run --release --example null_models
//! ```

use circlekit::graph::VertexSet;
use circlekit::metrics::{average_clustering, average_shortest_path_sampled};
use circlekit::nullmodel::{
    barabasi_albert, erdos_renyi, havel_hakimi, randomize_connected, watts_strogatz,
    NullModelEnsemble,
};
use circlekit::scoring::{Scorer, ScoringFunction};
use circlekit::statfit::analyze_tail;
use circlekit::synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2014);

    // 1. The paper's null model: degree-preserving randomisation.
    let ds = presets::google_plus().scaled(0.004).generate(&mut rng);
    let circle = ds.groups.iter().max_by_key(|g| g.len()).expect("has circles");
    let mut scorer = Scorer::new(&ds.graph);
    let stats = scorer.stats(circle);
    let ensemble = NullModelEnsemble::sample(&ds.graph, 5, 2.0, false, &mut rng);
    let sampled_expectation = ensemble.expected_internal_edges(circle);
    println!("largest circle: n_C={} m_C={}", stats.n_c, stats.m_c);
    println!(
        "E(m_C) closed form: {:.2}   sampled (Viger-Latapy): {:.2}",
        stats.expected_internal_edges(),
        sampled_expectation
    );
    println!(
        "modularity closed form: {:.5}   sampled: {:.5}\n",
        ScoringFunction::Modularity.score(&stats),
        ScoringFunction::modularity_with_expectation(&stats, sampled_expectation)
    );

    // 2. Havel-Hakimi + connected randomisation: the Viger-Latapy pipeline
    //    from an explicit degree sequence.
    let degrees = vec![3usize; 40];
    let realised = havel_hakimi(&degrees).expect("3-regular sequence is graphical");
    let shuffled = randomize_connected(&realised, 3.0, &mut rng);
    println!(
        "3-regular on 40 nodes: realised m={} shuffled m={} (degrees preserved: {})",
        realised.edge_count(),
        shuffled.edge_count(),
        (0..40u32).all(|v| shuffled.degree(v) == 3)
    );

    // 3. Reference models vs the paper's structural observations.
    use circlekit::graph::Direction;
    let er = erdos_renyi(1_000, 5_000, false, &mut rng);
    let ws = watts_strogatz(1_000, 10, 0.05, &mut rng);
    let ba = barabasi_albert(1_000, 5, &mut rng);
    println!("\n{:<18} {:>12} {:>8}", "model", "clustering", "asp");
    for (name, g) in [("erdos-renyi", &er), ("watts-strogatz", &ws), ("barabasi-albert", &ba)] {
        let cc = average_clustering(g);
        let asp = average_shortest_path_sampled(g, Direction::Both, 30, &mut rng).average;
        println!("{name:<18} {cc:>12.4} {asp:>8.2}");
    }

    // 4. And the degree-family verdicts, via the CSN pipeline.
    for (name, g) in [("erdos-renyi", &er), ("barabasi-albert", &ba)] {
        let degrees: Vec<f64> = (0..g.node_count() as u32).map(|v| g.degree(v) as f64).collect();
        match analyze_tail(&degrees) {
            Ok(report) => println!("{name}: degree family = {}", report.best),
            Err(e) => println!("{name}: fit failed ({e})"),
        }
    }

    // 5. Sanity: scoring the whole graph gives zero boundary.
    let all: VertexSet = (0..er.node_count() as u32).collect();
    let mut s = Scorer::new(&er);
    assert_eq!(ScoringFunction::Conductance.score(&s.stats(&all)), 0.0);
}
