//! Crawl-bias study: the Table II story generalised. The same population
//! looks wildly different depending on how you sample it — ego crawls
//! produce dense, tight graphs; BFS produces wide, sparse ones; forest
//! fires sit in between.
//!
//! ```sh
//! cargo run --release --example crawl_bias
//! ```

use circlekit::graph::Direction;
use circlekit::metrics::{average_clustering, average_shortest_path_sampled, DegreeKind, DegreeStats};
use circlekit::sampling::{bfs_crawl, ego_crawl, forest_fire_set, random_walk_set};
use circlekit::synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2014);
    // Population: a Magno-shaped power-law graph.
    let population = presets::magno().scaled(0.0006).generate(&mut rng).graph;
    let n = population.node_count();
    println!("population: {} vertices, {} edges\n", n, population.edge_count());

    let target = n / 5;
    let hub = (0..n as u32).max_by_key(|&v| population.degree(v)).expect("non-empty");

    let bfs = bfs_crawl(&population, hub, target);
    let fire = forest_fire_set(&population, target, 0.7, &mut rng);
    let walk = random_walk_set(&population, target, &mut rng);
    let owners: Vec<u32> = (0..n as u32)
        .filter(|&v| population.out_degree(v) > 20)
        .take(12)
        .collect();
    let ego = ego_crawl(&population, &owners);

    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>8}",
        "crawl", "nodes", "avg-deg", "clustering", "asp"
    );
    for (name, set) in [
        ("bfs", &bfs),
        ("forest-fire", &fire),
        ("random-walk", &walk),
        ("ego-crawl", &ego),
    ] {
        let sub = population.subgraph(set).expect("valid crawl");
        let g = sub.graph();
        let deg = DegreeStats::new(g, DegreeKind::Total).average();
        let cc = average_clustering(g);
        let asp = average_shortest_path_sampled(g, Direction::Both, 20, &mut rng).average;
        println!(
            "{:<14} {:>8} {:>10.2} {:>12.4} {:>8.2}",
            name,
            g.node_count(),
            deg,
            cc,
            asp
        );
    }
    println!(
        "\nThe ego crawl is the most locally clustered sample (it collects\n\
         whole neighbourhoods), while frontier crawls spread thin - the\n\
         sampling bias behind the McAuley-vs-Magno contrast in Table II.\n\
         On the paper's real Google+ population the effect is amplified by\n\
         the ego networks' density (see `reproduce table2`)."
    );
}
