//! Lenient-ingestion harness: real-world SNAP dumps arrive with CRLF
//! endings, truncated tails, duplicate edges, label-only group lines and
//! out-of-range ids. These tests pin the strict/lenient/fail-fast
//! contract of `circlekit-graph`'s ingestion layer from outside the
//! crate: fail-fast names the first offending 1-based line, lenient
//! ingestion drops exactly the bad records and accounts for every one of
//! them in the [`IngestReport`].

use circlekit_graph::{
    parse_edge_list, parse_edge_list_lenient, parse_edge_list_with_policy, parse_groups,
    parse_groups_lenient, parse_groups_with_policy, read_edge_list, read_edge_list_lenient,
    validate_groups, Graph, GraphError, IngestPolicy, ParseEdgeListReason, VertexSet,
};

#[test]
fn truncated_last_line_is_skipped_leniently_and_fatal_strictly() {
    // A download cut off mid-record: the final line has only one field.
    let text = "0 1\n1 2\n2";
    let err = parse_edge_list(text).expect_err("strict parse fails");
    assert_eq!(err.line, 3);
    assert_eq!(err.reason, ParseEdgeListReason::WrongFieldCount(1));

    let (edges, report) = parse_edge_list_lenient(text);
    assert_eq!(edges, vec![(0, 1), (1, 2)]);
    assert_eq!(report.lines, 3);
    assert_eq!(report.records, 2);
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].line, 3);
    assert!(!report.is_clean());
}

#[test]
fn crlf_line_endings_parse_everywhere() {
    let text = "0 1\r\n1 2\r\n# comment\r\n2 0\r\n";
    let strict = parse_edge_list(text).expect("CRLF is not an error");
    assert_eq!(strict, vec![(0, 1), (1, 2), (2, 0)]);

    let (lenient, report) = parse_edge_list_lenient(text);
    assert_eq!(lenient, strict);
    assert!(report.is_clean(), "{report}");

    let streamed = read_edge_list(text.as_bytes()).expect("streaming reader");
    assert_eq!(streamed, strict);
}

#[test]
fn duplicate_edges_are_kept_but_counted() {
    let text = "0 1\n1 2\n0 1\n0 1\n";
    let (edges, report) = parse_edge_list_lenient(text);
    // Lenient ingestion reports duplicates without judging them: some
    // corpora legitimately contain multi-edges.
    assert_eq!(edges.len(), 4);
    assert_eq!(report.duplicate_edges, 2);
    assert_eq!(report.records, 4);
}

#[test]
fn streaming_reader_matches_in_memory_parser() {
    let text = "0 1\n\n# hub\n1 2\n2 3\n3 0\n";
    assert_eq!(
        read_edge_list(text.as_bytes()).expect("streamed"),
        parse_edge_list(text).expect("in memory"),
    );
    let (streamed, streamed_report) = read_edge_list_lenient(text.as_bytes()).expect("streamed");
    let (parsed, parsed_report) = parse_edge_list_lenient(text);
    assert_eq!(streamed, parsed);
    assert_eq!(streamed_report, parsed_report);
}

#[test]
fn streaming_reader_reports_1_based_lines_in_io_errors() {
    let err = read_edge_list("0 1\nnope\n".as_bytes()).expect_err("bad line");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("line 2"), "{err}");
}

#[test]
fn label_only_group_lines_become_empty_groups() {
    let text = "circle0\t0 1 2\ncircle1\ncircle2\t3 4\n";
    let (groups, report) = parse_groups_lenient(text, None);
    assert_eq!(groups.len(), 2);
    assert_eq!(report.empty_groups, 1);
    assert_eq!(report.records, 2);
}

#[test]
fn out_of_range_members_are_dropped_with_an_accurate_count() {
    let text = "c0\t0 1 99\nc1\t7 8\nc2\t1 2\n";
    let (groups, report) = parse_groups_lenient(text, Some(4));
    // 99, 7 and 8 exceed the 4-node host graph; c1 loses every member.
    assert_eq!(groups.len(), 2);
    assert_eq!(groups[0], VertexSet::from_iter([0, 1]));
    assert_eq!(groups[1], VertexSet::from_iter([1, 2]));
    assert_eq!(report.dropped_members, 3);
    assert_eq!(report.empty_groups, 1);
}

#[test]
fn fail_fast_groups_name_the_offending_line() {
    let text = "c0\t0 1\nc1\t0 99\n";
    let err = parse_groups_with_policy(text, Some(4), IngestPolicy::FailFast)
        .expect_err("out-of-range member is fatal");
    assert_eq!(err.line, 2);
    assert_eq!(err.reason, ParseEdgeListReason::OutOfRange { node: 99, node_count: 4 });
    assert_eq!(err.to_string(), "line 2: node id 99 out of range for graph with 4 nodes");
}

#[test]
fn strict_policy_rejects_what_lenient_drops() {
    let edges = "0 1\n1 2\njunk\n";
    assert!(parse_edge_list_with_policy(edges, IngestPolicy::Strict).is_err());
    let (kept, _) = parse_edge_list_with_policy(edges, IngestPolicy::Lenient)
        .expect("lenient never fails on content");
    assert_eq!(kept, vec![(0, 1), (1, 2)]);

    let groups = "c0\t0 9\n";
    assert!(parse_groups_with_policy(groups, Some(4), IngestPolicy::Strict).is_err());
    let (kept, report) = parse_groups_with_policy(groups, Some(4), IngestPolicy::Lenient)
        .expect("lenient never fails on content");
    assert_eq!(kept, vec![VertexSet::from_iter([0])]);
    assert_eq!(report.dropped_members, 1);
}

#[test]
fn validate_groups_guards_scoring_entry_points() {
    let graph = Graph::from_edges(false, vec![(0, 1), (1, 2)]);
    let good = vec![VertexSet::from_iter([0, 1]), VertexSet::from_iter([1, 2])];
    assert!(validate_groups(&good, graph.node_count()).is_ok());

    let bad = vec![VertexSet::from_iter([0, 1]), VertexSet::from_iter([2, 9])];
    let err = validate_groups(&bad, graph.node_count()).expect_err("9 is out of range");
    assert_eq!(err, GraphError::NodeOutOfRange { node: 9, node_count: 3 });
}

#[test]
fn ingest_report_display_lists_skipped_lines() {
    let (_, report) = parse_edge_list_lenient("0 1\noops\n1 2\n");
    let rendered = report.to_string();
    assert!(rendered.contains("3 lines"), "{rendered}");
    assert!(rendered.contains("2 records kept"), "{rendered}");
    assert!(rendered.contains("skipped line 2"), "{rendered}");
}

#[test]
fn clean_strict_parse_still_reports_totals() {
    let (edges, report) =
        parse_edge_list_with_policy("0 1\n1 2\n", IngestPolicy::FailFast).expect("clean input");
    assert_eq!(edges.len(), 2);
    assert!(report.is_clean());
    assert_eq!(report.records, 2);

    let (groups, report) =
        parse_groups_with_policy("c0\t0 1\n", Some(3), IngestPolicy::FailFast).expect("clean");
    assert_eq!(groups, parse_groups("c0\t0 1\n").expect("plain parse"));
    assert!(report.is_clean());
}
