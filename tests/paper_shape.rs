//! End-to-end assertions that the reproduction recovers the *shape* of
//! every headline result in the paper, on seeded synthetic corpora.

use circlekit::experiments::{
    characterize, circles_vs_random, clustering_report, compare_datasets, degree_fit,
    directed_vs_undirected, ego_overlap_report, summarize_datasets, ModularityMode,
};
use circlekit::metrics::DegreeKind;
use circlekit::scoring::ScoringFunction;
use circlekit::statfit::ModelKind;
use circlekit::synth::{presets, GroupKind, SynthDataset};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn gplus() -> SynthDataset {
    presets::google_plus()
        .scaled(0.008)
        .generate(&mut SmallRng::seed_from_u64(2014))
}

/// Larger fixture for the Figure 5 separation statistics, which need a
/// few hundred circle members per group to stabilise.
fn gplus_large() -> SynthDataset {
    presets::google_plus()
        .scaled(0.02)
        .generate(&mut SmallRng::seed_from_u64(2014))
}

fn twitter() -> SynthDataset {
    presets::twitter()
        .scaled(0.008)
        .generate(&mut SmallRng::seed_from_u64(2015))
}

fn livejournal() -> SynthDataset {
    presets::livejournal()
        .scaled(0.002)
        .generate(&mut SmallRng::seed_from_u64(2016))
}

fn orkut() -> SynthDataset {
    presets::orkut()
        .scaled(0.002)
        .generate(&mut SmallRng::seed_from_u64(2017))
}

/// §IV-A.1 / Figure 3: the ego-crawl in-degree is log-normal, not
/// power-law, under the CSN method.
#[test]
fn fig3_ego_crawl_in_degree_is_lognormal() {
    let ds = gplus();
    let report = degree_fit(&ds, DegreeKind::In).expect("fit succeeds");
    assert_eq!(report.family(), ModelKind::LogNormal, "ks={:?}", report.fit.ks);
}

/// Table II: a BFS crawl of a power-law population keeps its power-law
/// verdict — the contrast column of the table.
#[test]
fn table2_bfs_crawl_in_degree_is_powerlaw() {
    let ds = presets::magno()
        .scaled(0.0003)
        .generate(&mut SmallRng::seed_from_u64(2018));
    let report = degree_fit(&ds, DegreeKind::In).expect("fit succeeds");
    assert_eq!(report.family(), ModelKind::PowerLaw, "ks={:?}", report.fit.ks);
}

/// Table II: the ego crawl is smaller, denser and shorter-pathed than the
/// BFS crawl.
#[test]
fn table2_ego_crawl_denser_and_tighter_than_bfs_crawl() {
    let ego = gplus();
    let bfs = presets::magno()
        .scaled(0.0003)
        .generate(&mut SmallRng::seed_from_u64(2018));
    let mut rng = SmallRng::seed_from_u64(1);
    let ego_row = characterize(&ego, 16, &mut rng);
    let bfs_row = characterize(&bfs, 16, &mut rng);
    assert!(
        ego_row.average_in_degree > 2.0 * bfs_row.average_in_degree,
        "ego {} vs bfs {}",
        ego_row.average_in_degree,
        bfs_row.average_in_degree
    );
    assert!(ego_row.average_shortest_path < bfs_row.average_shortest_path);
    assert!(ego_row.diameter <= bfs_row.diameter);
}

/// Figure 2: almost all ego networks overlap (the paper reports 93.5 %),
/// and membership counts are heavy-tailed.
#[test]
fn fig2_ego_networks_overlap_with_heavy_tailed_membership() {
    let stats = ego_overlap_report(&gplus());
    assert!(stats.overlap_fraction > 0.85, "{}", stats.overlap_fraction);
    let series = stats.membership_series();
    let (first_k, first_count) = series.first().copied().expect("non-empty");
    assert_eq!(first_k, 1);
    // Most vertices are in exactly one ego network...
    assert!(first_count as f64 / stats.covered_vertices() as f64 > 0.5);
    // ...but a tail of multi-ego vertices exists.
    assert!(series.iter().any(|&(k, _)| k >= 3));
}

/// Figure 4: the clustering coefficient has a smooth unimodal CDF with a
/// mid-range mean (the paper reports 0.4901).
#[test]
fn fig4_clustering_coefficient_is_midrange() {
    let report = clustering_report(&gplus());
    assert!(
        (0.15..0.75).contains(&report.mean),
        "mean clustering {}",
        report.mean
    );
    // CDF spans a real distribution rather than a point mass.
    assert!(report.summary.std_dev > 0.05);
}

/// Figure 5: all four functions separate circles from size-matched
/// random-walk sets.
#[test]
fn fig5_all_four_functions_separate_circles_from_random_sets() {
    let ds = gplus_large();
    let mut rng = SmallRng::seed_from_u64(5);
    let result = circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng);
    for pair in &result.per_function {
        assert!(
            pair.ks_separation > 0.3,
            "{} separation only {}",
            pair.function,
            pair.ks_separation
        );
    }
    // Circles score higher on internal connectivity...
    assert!(result.per_function[0].circles.mean > result.per_function[0].random.mean);
    // ...lower on conductance (circles are denser than flat random walks)...
    assert!(result.per_function[2].circles.mean < result.per_function[2].random.mean);
    // ...and clearly above the null model.
    assert!(result.per_function[3].circles.mean > result.per_function[3].random.mean);
}

/// §V-A text: more than half of the circles deviate significantly from
/// the null model; most circles cut less than the random baseline.
#[test]
fn fig5_headline_fractions() {
    let ds = gplus_large();
    let mut rng = SmallRng::seed_from_u64(6);
    let result = circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng);
    assert!(
        result.modularity_significant_fraction > 0.5,
        "only {:.0}% significant",
        100.0 * result.modularity_significant_fraction
    );
    assert!(
        result.ratio_cut_below_random_median > 0.5,
        "only {:.0}% below random median",
        100.0 * result.ratio_cut_below_random_median
    );
}

/// Figure 6: the four-corpus comparison recovers the paper's ordering —
/// circles similar to communities internally, far leakier externally.
#[test]
fn fig6_circles_leak_communities_do_not() {
    let gp = gplus();
    let tw = twitter();
    let lj = livejournal();
    let ok = orkut();
    let scores = compare_datasets(&[&gp, &tw, &lj, &ok]);

    let mean = |i: usize, f: ScoringFunction| scores[i].summary(f).expect("scored").mean;

    // Ratio cut: both circle corpora above both community corpora.
    for circle_idx in [0, 1] {
        for community_idx in [2, 3] {
            assert!(
                mean(circle_idx, ScoringFunction::RatioCut)
                    > mean(community_idx, ScoringFunction::RatioCut),
                "ratio cut ordering violated: {} vs {}",
                scores[circle_idx].name,
                scores[community_idx].name
            );
        }
    }
    // Conductance: circles near 1, LiveJournal communities well below.
    assert!(mean(0, ScoringFunction::Conductance) > 0.8);
    assert!(mean(1, ScoringFunction::Conductance) > 0.8);
    assert!(mean(2, ScoringFunction::Conductance) < mean(0, ScoringFunction::Conductance));
    // Average degree: same order of magnitude everywhere (the paper finds
    // "no significant difference in the shape").
    let ad: Vec<f64> = (0..4)
        .map(|i| mean(i, ScoringFunction::AverageDegree))
        .collect();
    let (lo, hi) = (
        ad.iter().cloned().fold(f64::INFINITY, f64::min),
        ad.iter().cloned().fold(0.0, f64::max),
    );
    assert!(hi / lo < 30.0, "average-degree spread too wide: {ad:?}");
}

/// Table III: the summaries carry the right structure labels.
#[test]
fn table3_kind_labels() {
    let gp = gplus();
    let lj = livejournal();
    let rows = summarize_datasets(&[&gp, &lj]);
    assert_eq!(rows[0].kind, GroupKind::Circles);
    assert!(rows[0].directed);
    assert_eq!(rows[1].kind, GroupKind::Communities);
    assert!(!rows[1].directed);
}

/// §IV-B: collapsing directions changes the scale-invariant scores only
/// mildly (the paper reports ≈ 2.38 %).
#[test]
fn robustness_direction_collapse_is_mild() {
    for ds in [gplus(), twitter()] {
        let report = directed_vs_undirected(&ds);
        assert!(
            report.overall < 0.30,
            "{}: deviation {:.1}%",
            report.dataset,
            100.0 * report.overall
        );
    }
}
