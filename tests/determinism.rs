//! Determinism guarantees: every generator and experiment must produce
//! byte-identical results under a fixed seed — the property that makes
//! EXPERIMENTS.md reproducible.

use circlekit::experiments::{
    characterize, circle_sharing_densification, circles_vs_random, compare_datasets,
    detection_comparison, ego_view_comparison, function_correlations, ModularityMode,
};
use circlekit::synth::{presets, SynthDataset};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> SynthDataset {
    presets::google_plus()
        .scaled(0.004)
        .generate(&mut SmallRng::seed_from_u64(seed))
}

#[test]
fn generators_are_deterministic_and_seed_sensitive() {
    let a = dataset(1);
    let b = dataset(1);
    let c = dataset(2);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.groups, b.groups);
    assert_eq!(a.egos, b.egos);
    assert_ne!(a.graph, c.graph, "different seeds must differ");
}

#[test]
fn fig5_experiment_is_deterministic() {
    let ds = dataset(3);
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng)
    };
    let (x, y) = (run(7), run(7));
    for (a, b) in x.per_function.iter().zip(&y.per_function) {
        assert_eq!(a.circle_scores, b.circle_scores);
        assert_eq!(a.random_scores, b.random_scores);
    }
    assert_eq!(
        x.modularity_significant_fraction,
        y.modularity_significant_fraction
    );
}

#[test]
fn sampled_modularity_is_deterministic_under_seed() {
    let ds = dataset(4);
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        circles_vs_random(
            &ds,
            ModularityMode::Sampled { samples: 2, quality: 1.0 },
            &mut rng,
        )
    };
    let (x, y) = (run(9), run(9));
    assert_eq!(
        x.per_function[3].circle_scores,
        y.per_function[3].circle_scores
    );
}

#[test]
fn deterministic_experiments_match_exactly() {
    let ds = dataset(5);
    // Experiments that take no RNG must be pure functions of the data set.
    let a = format!("{:?}", compare_datasets(&[&ds]));
    let b = format!("{:?}", compare_datasets(&[&ds]));
    assert_eq!(a, b);
    let a = format!("{:?}", ego_view_comparison(&ds));
    let b = format!("{:?}", ego_view_comparison(&ds));
    assert_eq!(a, b);
    let a = format!("{:?}", function_correlations(&ds));
    let b = format!("{:?}", function_correlations(&ds));
    assert_eq!(a, b);
}

#[test]
fn seeded_experiments_match_exactly() {
    let ds = dataset(6);
    let run_all = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t2 = format!("{:?}", characterize(&ds, 8, &mut rng));
        let det = format!("{:?}", detection_comparison(&ds, &mut rng));
        let sh = format!("{:?}", circle_sharing_densification(&ds, 0.3, &mut rng));
        (t2, det, sh)
    };
    assert_eq!(run_all(11), run_all(11));
}
