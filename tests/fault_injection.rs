//! Fault-injection harness (`--features fault-inject`): proves the
//! pipeline's robustness claims end to end by *forcing* the failures the
//! machinery guards against. An injected worker panic must never abort
//! the process — it is caught, named in the [`BatchReport`] and retried
//! serially; an injected walk stall must let a deadline fire; and a run
//! interrupted mid-flight must resume from its checkpoint to output
//! bit-identical to an uninterrupted run.
//!
//! The injection hooks are process-global, so every test that arms one
//! holds [`FAULT_LOCK`] for its whole body.

#![cfg(feature = "fault-inject")]

use circlekit::checkpoint::{CheckpointStore, RunError};
use circlekit::experiments::{
    circles_vs_random_checkpointed, circles_vs_random_parallel, compare_datasets_checkpointed,
    compare_datasets_parallel, CirclesVsRandom,
};
use circlekit::synth::presets;
use circlekit_graph::{Graph, GraphBuilder, Interrupted, RunControl, VertexSet};
use circlekit_sampling::size_matched_random_walk_sets_parallel_with_control;
use circlekit_scoring::{ParallelScorer, Scorer, ScoringFunction};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Duration;

/// Serialises tests that arm the process-global fault hooks.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking *injection* test must not poison the others.
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn disarm_all() {
    circlekit_scoring::fault::disarm();
    circlekit_sampling::fault::disarm();
}

/// Two triangles bridged by a path — enough structure for every scoring
/// function to produce distinct values.
fn fixture_graph() -> Graph {
    let mut b = GraphBuilder::undirected();
    b.add_edges([
        (0u32, 1u32),
        (0, 2),
        (1, 2),
        (3, 4),
        (4, 5),
        (3, 5),
        (2, 6),
        (6, 3),
        (6, 7),
    ]);
    b.build()
}

fn fixture_sets() -> Vec<VertexSet> {
    vec![
        VertexSet::from_iter([0, 1, 2]),
        VertexSet::from_iter([3, 4, 5]),
        VertexSet::from_iter([2, 3, 6]),
        VertexSet::from_iter([0, 1, 2, 6]),
        VertexSet::from_iter([4, 5, 6, 7]),
        VertexSet::from_iter([1, 2, 3]),
    ]
}

fn fig5_bits(result: &CirclesVsRandom) -> Vec<(String, Vec<u64>, Vec<u64>)> {
    result
        .per_function
        .iter()
        .map(|p| {
            (
                p.function.name().to_string(),
                p.circle_scores.iter().map(|v| v.to_bits()).collect(),
                p.random_scores.iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

#[test]
fn injected_panic_never_aborts_and_recovery_is_bit_identical() {
    let _guard = lock();
    disarm_all();
    let graph = fixture_graph();
    let sets = fixture_sets();
    let mut serial = Scorer::new(&graph);
    let clean: Vec<Vec<f64>> = sets
        .iter()
        .map(|s| {
            let stats = serial.stats(s);
            ScoringFunction::PAPER.iter().map(|f| f.score(&stats)).collect()
        })
        .collect();

    let scorer = ParallelScorer::with_threads(&graph, 2);
    circlekit_scoring::fault::arm_set_panic(2, false);
    let batch = scorer.score_table_robust(&ScoringFunction::PAPER, &sets, &RunControl::new());
    disarm_all();

    // The panic was contained in its chunk, named in the report, and the
    // serial retry healed it: every row is present and bit-identical.
    assert_eq!(batch.report.chunk_errors.len(), 1, "{}", batch.report);
    let chunk = &batch.report.chunk_errors[0];
    assert!(chunk.recovered, "{}", batch.report);
    assert!(
        (chunk.first_set..chunk.first_set + chunk.set_count).contains(&2),
        "chunk {chunk:?} should cover set 2"
    );
    assert!(batch.report.is_complete());
    let rows: Vec<Vec<f64>> = batch.rows.into_iter().map(|r| r.expect("all rows scored")).collect();
    for (i, (got, want)) in rows.iter().zip(&clean).enumerate() {
        let got: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "row {i}");
    }
}

#[test]
fn sticky_panic_is_reported_as_set_failure_without_losing_chunk_mates() {
    let _guard = lock();
    disarm_all();
    let graph = fixture_graph();
    let sets = fixture_sets();
    let scorer = ParallelScorer::with_threads(&graph, 2);

    circlekit_scoring::fault::arm_set_panic(1, true);
    let batch = scorer.score_table_robust(&ScoringFunction::PAPER, &sets, &RunControl::new());
    disarm_all();

    assert!(!batch.report.is_complete());
    assert_eq!(batch.report.scored_sets, sets.len() - 1);
    assert_eq!(batch.report.failures.len(), 1, "{}", batch.report);
    assert_eq!(batch.report.failures[0].set, 1);
    assert!(batch.rows[1].is_none());
    // Every other set in the panicking chunk was still scored.
    for (i, row) in batch.rows.iter().enumerate() {
        if i != 1 {
            assert!(row.is_some(), "set {i} lost to a neighbour's panic");
        }
    }
}

#[test]
fn injected_walk_stall_lets_the_deadline_fire() {
    let _guard = lock();
    disarm_all();
    let graph = fixture_graph();
    let sizes = [3usize, 3, 4];

    // Sanity: without the stall the controlled sampler succeeds.
    let clean = size_matched_random_walk_sets_parallel_with_control(
        &graph,
        &sizes,
        99,
        1,
        &RunControl::new().with_deadline(Duration::from_secs(60)),
    )
    .expect("no interruption without a stall");
    assert_eq!(clean.len(), sizes.len());

    circlekit_sampling::fault::arm_walk_stall(0, 60);
    let err = size_matched_random_walk_sets_parallel_with_control(
        &graph,
        &sizes,
        99,
        1,
        &RunControl::new().with_deadline(Duration::from_millis(20)),
    )
    .expect_err("the stalled walk overruns the deadline");
    disarm_all();
    assert_eq!(err, Interrupted::DeadlineExceeded);
}

#[test]
fn cancellation_is_observed_before_any_scoring() {
    let _guard = lock();
    disarm_all();
    let graph = fixture_graph();
    let sets = fixture_sets();
    let scorer = ParallelScorer::with_threads(&graph, 2);

    let control = RunControl::new();
    control.cancel_flag().cancel();
    let batch = scorer.score_table_robust(&ScoringFunction::PAPER, &sets, &control);
    assert_eq!(batch.report.interrupted, Some(Interrupted::Cancelled));
    assert_eq!(batch.report.scored_sets, 0);
}

#[test]
fn fig5_with_injected_panic_matches_the_clean_run_bit_for_bit() {
    let _guard = lock();
    disarm_all();
    let dataset = presets::google_plus()
        .scaled(0.004)
        .generate(&mut SmallRng::seed_from_u64(41));
    let reference = circles_vs_random_parallel(&dataset, 7, 2);

    circlekit_scoring::fault::arm_set_panic(0, false);
    let mut store = CheckpointStore::in_memory(7);
    let healed = circles_vs_random_checkpointed(&dataset, 7, 2, &RunControl::new(), &mut store)
        .expect("one-shot panic is recovered");
    disarm_all();

    assert_eq!(fig5_bits(&healed), fig5_bits(&reference));
}

#[test]
fn interrupted_fig6_resumes_bit_identically_from_its_checkpoint() {
    let _guard = lock();
    disarm_all();
    let mut rng = SmallRng::seed_from_u64(17);
    let gp = presets::google_plus().scaled(0.004).generate(&mut rng);
    let lj = presets::livejournal().scaled(0.002).generate(&mut rng);
    let all = [&gp, &lj];
    let reference = compare_datasets_parallel(&all, 2);

    let dir = std::env::temp_dir().join("circlekit-fault-injection");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("fig6-resume.ckpt");
    let _ = std::fs::remove_file(&path);

    // First attempt: a zero deadline interrupts before any work.
    let mut store = CheckpointStore::at_path(&path, 0).expect("fresh store");
    let control = RunControl::new().with_deadline(Duration::from_secs(0));
    match compare_datasets_checkpointed(&all, 2, &control, &mut store) {
        Err(RunError::Interrupted(Interrupted::DeadlineExceeded)) => {}
        other => panic!("expected a deadline interruption, got {other:?}"),
    }

    // Second attempt: reopen the sidecar and finish without a deadline.
    let mut store = CheckpointStore::at_path(&path, 0).expect("reopened store");
    let resumed = compare_datasets_checkpointed(&all, 2, &RunControl::new(), &mut store)
        .expect("resumed run completes");

    assert_eq!(resumed.len(), reference.len());
    for (res, want) in resumed.iter().zip(&reference) {
        assert_eq!(res.name, want.name);
        for ((f1, s1, _), (f2, s2, _)) in res.per_function.iter().zip(&want.per_function) {
            assert_eq!(f1, f2);
            let got: Vec<u64> = s1.iter().map(|v| v.to_bits()).collect();
            let bits: Vec<u64> = s2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, bits, "{} / {}", res.name, f1.name());
        }
    }
    let _ = std::fs::remove_file(&path);
}
