//! Serial-equivalence harness for the parallel batch-scoring engine.
//!
//! Parallelism must never change results: every parallel entry point is
//! required to produce output *bit-identical* to its sequential
//! counterpart at any thread count. These tests pin that contract at
//! every layer — raw scoring, score tables, random-walk sampling, and
//! the Figure 5/6 experiment drivers.

use circlekit::experiments::{
    circles_vs_random_parallel, compare_datasets, compare_datasets_parallel,
};
use circlekit::synth::presets;
use circlekit_graph::{Graph, VertexSet};
use circlekit_sampling::{
    size_matched_random_walk_sets_parallel, size_matched_random_walk_sets_seeded,
};
use circlekit_scoring::{ParallelScorer, Scorer, ScoringFunction};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// A graph with heterogeneous structure: two triangles bridged by a path,
/// plus an isolated vertex.
fn fixture_graph() -> Graph {
    let mut b = circlekit_graph::GraphBuilder::undirected();
    b.add_edges([
        (0u32, 1u32),
        (0, 2),
        (1, 2),
        (3, 4),
        (4, 5),
        (3, 5),
        (2, 6),
        (6, 3),
    ]);
    b.reserve_nodes(8); // vertex 7 is isolated
    b.build()
}

fn fixture_batch(g: &Graph) -> Vec<VertexSet> {
    let mut rng = SmallRng::seed_from_u64(42);
    let mut sets: Vec<VertexSet> = vec![
        (0u32..3).collect(),
        (3u32..6).collect(),
        VertexSet::from_vec(vec![2, 6, 3]),
        VertexSet::from_vec(vec![7]),
        (0u32..g.node_count() as u32).collect(),
    ];
    // Pad with random-walk sets so chunks are non-trivial at 7 threads.
    let sizes: Vec<usize> = (0..20).map(|i| 1 + i % 6).collect();
    sets.extend(
        sizes
            .iter()
            .map(|&s| circlekit_sampling::random_walk_set(g, s, &mut rng)),
    );
    sets
}

#[test]
fn score_sets_bit_identical_for_all_paper_functions() {
    let g = fixture_graph();
    let sets = fixture_batch(&g);
    let mut serial = Scorer::new(&g);
    for function in ScoringFunction::PAPER {
        let expected = serial.score_sets(function, &sets);
        for threads in THREAD_COUNTS {
            let parallel = ParallelScorer::with_threads(&g, threads);
            let got = parallel.score_sets(function, &sets);
            // Exact bit equality, not approximate: the parallel path must
            // evaluate the very same float operations per set.
            let expected_bits: Vec<u64> = expected.iter().map(|x| x.to_bits()).collect();
            let got_bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(expected_bits, got_bits, "{function} at {threads} threads");
        }
    }
}

#[test]
fn score_table_bit_identical_across_thread_counts() {
    let g = fixture_graph();
    let sets = fixture_batch(&g);
    let mut serial = Scorer::new(&g);
    let expected = serial.score_table(&ScoringFunction::ALL, &sets);
    for threads in THREAD_COUNTS {
        let parallel = ParallelScorer::with_threads(&g, threads);
        assert_eq!(
            expected,
            parallel.score_table(&ScoringFunction::ALL, &sets),
            "threads={threads}"
        );
        assert_eq!(
            expected,
            serial.score_table_parallel(&ScoringFunction::ALL, &sets, threads),
            "delegated threads={threads}"
        );
    }
}

#[test]
fn stats_batch_matches_serial_stats() {
    let g = fixture_graph();
    let sets = fixture_batch(&g);
    let mut serial = Scorer::new(&g);
    let expected: Vec<_> = sets.iter().map(|s| serial.stats(s)).collect();
    for threads in THREAD_COUNTS {
        let parallel = ParallelScorer::with_threads(&g, threads);
        assert_eq!(expected, parallel.stats_batch(&sets), "threads={threads}");
    }
}

#[test]
fn random_walk_sampling_invariant_to_thread_count() {
    let g = fixture_graph();
    let sizes: Vec<usize> = (0..33).map(|i| i % 8).collect();
    for root_seed in [0u64, 7, u64::MAX] {
        let reference = size_matched_random_walk_sets_seeded(&g, &sizes, root_seed);
        for threads in THREAD_COUNTS {
            let got = size_matched_random_walk_sets_parallel(&g, &sizes, root_seed, threads);
            assert_eq!(reference, got, "seed={root_seed} threads={threads}");
        }
    }
}

#[test]
fn empty_batch_both_paths() {
    let g = fixture_graph();
    let mut serial = Scorer::new(&g);
    let empty: [VertexSet; 0] = [];
    assert!(serial
        .score_sets(ScoringFunction::Conductance, &empty)
        .is_empty());
    for threads in THREAD_COUNTS {
        let parallel = ParallelScorer::with_threads(&g, threads);
        assert!(parallel
            .score_sets(ScoringFunction::Conductance, &empty)
            .is_empty());
        assert_eq!(
            parallel.score_table(&ScoringFunction::PAPER, &empty).set_count(),
            0
        );
        assert!(size_matched_random_walk_sets_parallel(&g, &[], 1, threads).is_empty());
    }
}

#[test]
fn singleton_sets_both_paths() {
    let g = fixture_graph();
    // One singleton per vertex, including the isolated vertex 7.
    let sets: Vec<VertexSet> = (0..g.node_count() as u32)
        .map(|v| VertexSet::from_vec(vec![v]))
        .collect();
    let mut serial = Scorer::new(&g);
    let expected = serial.score_table(&ScoringFunction::ALL, &sets);
    for threads in THREAD_COUNTS {
        let parallel = ParallelScorer::with_threads(&g, threads);
        assert_eq!(
            expected,
            parallel.score_table(&ScoringFunction::ALL, &sets),
            "threads={threads}"
        );
    }
    // Sanity: a singleton has no internal edges anywhere in the table.
    assert_eq!(
        expected.column(ScoringFunction::EdgesInside).unwrap(),
        vec![0.0; sets.len()]
    );
}

#[test]
fn whole_vertex_set_both_paths() {
    let g = fixture_graph();
    let whole: VertexSet = (0..g.node_count() as u32).collect();
    let sets = vec![whole];
    let mut serial = Scorer::new(&g);
    let expected = serial.score_table(&ScoringFunction::ALL, &sets);
    for threads in THREAD_COUNTS {
        let parallel = ParallelScorer::with_threads(&g, threads);
        let got = parallel.score_table(&ScoringFunction::ALL, &sets);
        assert_eq!(expected, got, "threads={threads}");
    }
    // The whole vertex set has an empty boundary.
    assert_eq!(expected.column(ScoringFunction::Conductance).unwrap()[0], 0.0);
    assert_eq!(expected.column(ScoringFunction::Expansion).unwrap()[0], 0.0);
}

#[test]
fn fig5_pipeline_thread_count_invariant_on_synth_data() {
    let dataset = presets::google_plus()
        .scaled(0.004)
        .generate(&mut SmallRng::seed_from_u64(2014));
    let reference = circles_vs_random_parallel(&dataset, 11, 1);
    for threads in [2usize, 7] {
        let got = circles_vs_random_parallel(&dataset, 11, threads);
        // Debug formatting captures every float exactly enough: `{:?}`
        // prints the shortest representation that round-trips.
        assert_eq!(format!("{reference:?}"), format!("{got:?}"), "threads={threads}");
    }
}

#[test]
fn fig6_pipeline_matches_sequential_on_synth_data() {
    let gp = presets::google_plus()
        .scaled(0.004)
        .generate(&mut SmallRng::seed_from_u64(2014));
    let lj = presets::livejournal()
        .scaled(0.001)
        .generate(&mut SmallRng::seed_from_u64(2015));
    let sequential = compare_datasets(&[&gp, &lj]);
    for threads in THREAD_COUNTS {
        let parallel = compare_datasets_parallel(&[&gp, &lj], threads);
        assert_eq!(
            format!("{sequential:?}"),
            format!("{parallel:?}"),
            "threads={threads}"
        );
    }
}
