//! Cross-crate integration tests: the substrates must agree with each
//! other where their semantics overlap.

use circlekit::graph::{Graph, VertexSet};
use circlekit::metrics::{average_clustering, triangle_count};
use circlekit::nullmodel::{erdos_renyi, havel_hakimi, randomize, NullModelEnsemble};
use circlekit::sampling::{random_walk_set, uniform_set};
use circlekit::scoring::{Scorer, ScoringFunction};
use circlekit::stats::Summary;
use circlekit::synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The closed-form modularity expectation and the sampled (edge-swap)
/// expectation must agree on average over random sets.
#[test]
fn closed_form_and_sampled_null_expectations_agree() {
    let mut rng = SmallRng::seed_from_u64(77);
    let g = erdos_renyi(300, 1500, false, &mut rng);
    let ensemble = NullModelEnsemble::sample(&g, 8, 3.0, false, &mut rng);
    let mut scorer = Scorer::new(&g);
    let mut closed = Vec::new();
    let mut sampled = Vec::new();
    for _ in 0..20 {
        let set = uniform_set(&g, 30, &mut rng);
        let stats = scorer.stats(&set);
        closed.push(stats.expected_internal_edges());
        sampled.push(ensemble.expected_internal_edges(&set));
    }
    let c = Summary::from_slice(&closed).mean;
    let s = Summary::from_slice(&sampled).mean;
    assert!(
        (c - s).abs() / c.max(s) < 0.25,
        "closed-form {c} vs sampled {s} diverge"
    );
}

/// Degree-preserving randomisation must kill the planted community
/// structure: a dense circle's internal edges drop towards the null
/// expectation.
#[test]
fn randomization_destroys_circle_density() {
    let mut rng = SmallRng::seed_from_u64(78);
    let ds = presets::google_plus().scaled(0.004).generate(&mut rng);
    let circle = ds
        .groups
        .iter()
        .max_by_key(|g| g.len())
        .expect("has circles")
        .clone();
    let mut scorer = Scorer::new(&ds.graph);
    let before = scorer.stats(&circle).m_c;
    let shuffled = randomize(&ds.graph, 3.0, &mut rng);
    let mut scorer_r = Scorer::new(&shuffled);
    let after = scorer_r.stats(&circle).m_c;
    assert!(
        (after as f64) < 0.6 * before as f64,
        "shuffling kept {after}/{before} internal edges"
    );
}

/// Havel–Hakimi realisations of a synthetic graph's degree sequence carry
/// the same degree sequence (undirected round trip through nullmodel).
#[test]
fn havel_hakimi_roundtrip_on_synth_degrees() {
    let mut rng = SmallRng::seed_from_u64(79);
    let ds = presets::livejournal().scaled(0.0005).generate(&mut rng);
    let und = ds.graph.to_undirected();
    let degrees: Vec<usize> = (0..und.node_count() as u32).map(|v| und.degree(v)).collect();
    let realised = havel_hakimi(&degrees).expect("real degree sequences are graphical");
    for (v, &d) in degrees.iter().enumerate() {
        assert_eq!(realised.degree(v as u32), d);
    }
}

/// Random-walk sets follow the graph structure: on a sparse graph they
/// contain more internal edges than uniform sets of the same size.
#[test]
fn random_walks_are_more_connected_than_uniform_sets() {
    let mut rng = SmallRng::seed_from_u64(80);
    let g = erdos_renyi(2_000, 6_000, false, &mut rng);
    let mut walk_edges = 0usize;
    let mut uniform_edges = 0usize;
    for _ in 0..20 {
        let w = random_walk_set(&g, 40, &mut rng);
        let u = uniform_set(&g, 40, &mut rng);
        walk_edges += g.subgraph(&w).unwrap().graph().edge_count();
        uniform_edges += g.subgraph(&u).unwrap().graph().edge_count();
    }
    assert!(
        walk_edges > 2 * uniform_edges,
        "walks {walk_edges} vs uniform {uniform_edges}"
    );
}

/// Scoring must see exactly the triangles the metrics crate counts: a TPR
/// of 1 on a triangle-rich clique, 0 on a star.
#[test]
fn scoring_and_metrics_agree_on_triangles() {
    let clique = Graph::from_edges(
        false,
        (0..5u32).flat_map(|u| ((u + 1)..5).map(move |v| (u, v))),
    );
    assert_eq!(triangle_count(&clique), 10);
    assert_eq!(average_clustering(&clique), 1.0);
    let mut scorer = Scorer::new(&clique);
    let all: VertexSet = (0u32..5).collect();
    assert_eq!(ScoringFunction::Tpr.score(&scorer.stats(&all)), 1.0);

    let star = Graph::from_edges(false, (1..6u32).map(|v| (0, v)));
    assert_eq!(triangle_count(&star), 0);
    let mut scorer = Scorer::new(&star);
    let all: VertexSet = (0u32..6).collect();
    assert_eq!(ScoringFunction::Tpr.score(&scorer.stats(&all)), 0.0);
}

/// The directed/undirected conversion commutes with scoring the way the
/// robustness experiment assumes: conductance is invariant under
/// bidirection.
#[test]
fn conductance_invariant_under_bidirection() {
    let mut rng = SmallRng::seed_from_u64(81);
    let und = erdos_renyi(200, 800, false, &mut rng);
    let dir = und.to_bidirected();
    let mut s_u = Scorer::new(&und);
    let mut s_d = Scorer::new(&dir);
    for _ in 0..10 {
        let set = uniform_set(&und, 25, &mut rng);
        let a = ScoringFunction::Conductance.score(&s_u.stats(&set));
        let b = ScoringFunction::Conductance.score(&s_d.stats(&set));
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}
