//! Edge-case and failure-injection tests across crates: degenerate
//! graphs, pathological sets, and malformed inputs must fail loudly or
//! produce well-defined values — never NaN, never a wrong silent answer.

use circlekit::detect::{detect_circles, k_core, label_propagation, louvain};
use circlekit::experiments::{
    circles_vs_random, clustering_report, directed_vs_undirected, score_groups, ModularityMode,
};
use circlekit::graph::{
    connected_components, parse_edge_list, parse_groups, Graph, GraphBuilder, VertexSet,
};
use circlekit::metrics::{average_clustering, degree_assortativity, DegreeKind, DegreeStats};
use circlekit::nullmodel::{havel_hakimi, randomize, randomize_connected};
use circlekit::sampling::{random_walk_set, uniform_set};
use circlekit::scoring::{Scorer, ScoringFunction};
use circlekit::statfit::analyze_tail;
use circlekit::synth::{GroupKind, SynthDataset};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn empty_graph() -> Graph {
    GraphBuilder::undirected().build()
}

fn isolated(n: usize, directed: bool) -> Graph {
    let mut b = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b.reserve_nodes(n);
    b.build()
}

#[test]
fn scoring_on_empty_and_edgeless_graphs_is_finite() {
    for g in [empty_graph(), isolated(5, false), isolated(5, true)] {
        let mut scorer = Scorer::new(&g);
        let full: VertexSet = (0..g.node_count() as u32).collect();
        for set in [VertexSet::new(), full] {
            let stats = scorer.stats(&set);
            for f in ScoringFunction::ALL {
                let v = f.score(&stats);
                assert!(v.is_finite(), "{f} on degenerate graph: {v}");
            }
        }
    }
}

#[test]
fn metrics_on_degenerate_graphs() {
    for g in [empty_graph(), isolated(4, false)] {
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(degree_assortativity(&g), None);
        let stats = DegreeStats::new(&g, DegreeKind::Total);
        assert!(stats.positive_as_f64().is_empty());
    }
    assert_eq!(connected_components(&empty_graph()).component_count(), 0);
}

#[test]
fn detection_on_degenerate_graphs() {
    let mut rng = SmallRng::seed_from_u64(1);
    assert!(louvain(&empty_graph(), &mut rng).is_empty());
    assert_eq!(label_propagation(&isolated(3, false), 5, &mut rng).len(), 3);
    assert!(k_core(&empty_graph(), 1).is_empty());
    // Ego with no alters yields no circles.
    let single = Graph::from_edges(true, [(0u32, 1u32)]);
    let circles = detect_circles(&single, 1, 1, &mut rng);
    assert!(circles.is_empty(), "{circles:?}");
}

#[test]
fn sampling_degenerate_sizes() {
    let g = isolated(6, false);
    let mut rng = SmallRng::seed_from_u64(2);
    assert!(random_walk_set(&g, 0, &mut rng).is_empty());
    assert_eq!(random_walk_set(&g, 6, &mut rng).len(), 6);
    assert_eq!(uniform_set(&g, 100, &mut rng).len(), 6);
}

#[test]
fn nullmodel_degenerate_inputs() {
    let mut rng = SmallRng::seed_from_u64(3);
    // Empty and single-edge graphs survive randomisation untouched.
    let g = empty_graph();
    assert_eq!(randomize(&g, 4.0, &mut rng), g);
    let one = Graph::from_edges(false, [(0u32, 1u32)]);
    assert_eq!(randomize(&one, 4.0, &mut rng).edge_count(), 1);
    assert_eq!(randomize_connected(&one, 4.0, &mut rng).edge_count(), 1);
    // Havel-Hakimi on all-zero sequences.
    assert_eq!(havel_hakimi(&[0; 7]).unwrap().edge_count(), 0);
}

#[test]
fn statfit_rejects_degenerate_sequences() {
    assert!(analyze_tail(&[]).is_err());
    assert!(analyze_tail(&[5.0]).is_err());
    assert!(analyze_tail(&[3.0, 3.0, 3.0, 3.0]).is_err());
    // All-sub-1 values are filtered to nothing.
    assert!(analyze_tail(&[0.1, 0.5, 0.9]).is_err());
}

#[test]
fn parsers_reject_malformed_but_accept_messy_whitespace() {
    assert!(parse_edge_list("0 1 2\n").is_err());
    assert!(parse_edge_list("a b\n").is_err());
    assert_eq!(parse_edge_list("  0\t\t1  \n\n").unwrap(), vec![(0, 1)]);
    assert!(parse_groups("1 2 huh\n").is_err());
    assert!(parse_groups("onlylabel\n").unwrap().is_empty());
}

#[test]
fn experiments_survive_dataset_without_groups() {
    // A dataset with no labelled groups: experiment drivers must not
    // panic, they report empty/zero results.
    let ds = SynthDataset {
        name: "groupless".into(),
        graph: Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]),
        groups: Vec::new(),
        egos: Vec::new(),
        ego_owners: Vec::new(),
        kind: GroupKind::Circles,
    };
    let mut rng = SmallRng::seed_from_u64(4);
    let fig5 = circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng);
    assert!(fig5.per_function.iter().all(|p| p.circle_scores.is_empty()));
    assert_eq!(fig5.ratio_cut_below_random_median, 0.0);
    let scores = score_groups(&ds);
    assert!(scores.per_function.iter().all(|(_, s, _)| s.is_empty()));
    let rob = directed_vs_undirected(&ds);
    assert_eq!(rob.per_function.len(), 4);
    let cc = clustering_report(&ds);
    assert!((0.0..=1.0).contains(&cc.mean));
}

#[test]
fn experiments_survive_single_vertex_groups() {
    let ds = SynthDataset {
        name: "singletons".into(),
        graph: Graph::from_edges(false, [(0u32, 1u32), (1, 2)]),
        groups: vec![
            VertexSet::from_vec(vec![0]),
            VertexSet::from_vec(vec![1]),
            VertexSet::from_vec(vec![2]),
        ],
        egos: Vec::new(),
        ego_owners: Vec::new(),
        kind: GroupKind::Communities,
    };
    let scores = score_groups(&ds);
    for (f, col, _) in &scores.per_function {
        assert!(
            col.iter().all(|v| v.is_finite()),
            "{f} produced non-finite scores on singleton groups"
        );
    }
}

#[test]
fn self_loop_heavy_input_is_sanitised() {
    let mut b = GraphBuilder::directed();
    for v in 0..5u32 {
        b.add_edge(v, v);
    }
    b.add_edge(0, 1);
    let g = b.build();
    assert_eq!(g.edge_count(), 1);
    let mut scorer = Scorer::new(&g);
    let all: VertexSet = (0u32..2).collect();
    assert_eq!(scorer.stats(&all).m_c, 1);
}

#[test]
fn vertex_set_extreme_ids() {
    let set = VertexSet::from_vec(vec![u32::MAX, 0, u32::MAX - 1]);
    assert_eq!(set.len(), 3);
    assert!(set.contains(u32::MAX));
    let other = VertexSet::from_vec(vec![u32::MAX]);
    assert!(set.overlaps(&other));
    assert_eq!(set.intersection(&other).len(), 1);
}

#[test]
fn random_walk_on_star_restarts_instead_of_hanging() {
    // A directed star with no outgoing edges from leaves: the walk must
    // restart rather than loop forever.
    let g = Graph::from_edges(true, (1..20u32).map(|v| (0, v)));
    let mut rng = SmallRng::seed_from_u64(5);
    let set = random_walk_set(&g, 15, &mut rng);
    assert_eq!(set.len(), 15);
}
