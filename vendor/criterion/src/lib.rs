//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `benchmark_group` / `bench_function` /
//! `Bencher::iter` API the workspace's benches use, backed by a simple
//! wall-clock measurement loop: a short warmup estimates per-iteration
//! cost, then `sample_size` samples are timed and min/median/mean are
//! printed. No statistical analysis, plots, or baseline comparison.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 100;
const WARMUP_TARGET: Duration = Duration::from_millis(300);
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// The benchmark harness entry point.
#[derive(Debug)]
#[derive(Default)]
pub struct Criterion {
    _private: (),
}


impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup: run until the target warmup time passes, doubling the
        // iteration count, to estimate per-iteration cost.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            routine(&mut b);
            if b.elapsed >= WARMUP_TARGET || iters >= 1 << 20 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(2);
        };

        // Pick an iteration count per sample aiming at SAMPLE_TARGET.
        let sample_iters = if per_iter > 0.0 {
            ((SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64).max(1)
        } else {
            1
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: sample_iters, elapsed: Duration::ZERO };
            routine(&mut b);
            samples.push(b.elapsed.as_secs_f64() / sample_iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{:<24} time: [min {} median {} mean {}] ({} samples x {} iters)",
            self.name,
            id,
            format_seconds(min),
            format_seconds(median),
            format_seconds(mean),
            samples.len(),
            sample_iters,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this harness
            // has no options, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(0.0025), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 us");
        assert_eq!(format_seconds(2.5e-9), "2.5 ns");
    }
}
