//! Recursive-descent JSON parser producing a [`Value`] tree.

use crate::Error;
use serde::value::Value;

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of JSON input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of JSON input"))?
        {
            b'n' => self.keyword("null", Value::Null),
            b't' => self.keyword("true", Value::Bool(true)),
            b'f' => self.keyword("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the paired low one.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error::msg("unpaired surrogate in string"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::msg(format!(
                            "invalid escape `\\{}`",
                            other as char
                        )))
                    }
                },
                b if b < 0x20 => return Err(Error::msg("control character in string")),
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
