//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the vendored `serde`'s [`Value`] tree as JSON.
//! Output is compact (no whitespace) with struct field order preserved,
//! matching what crates.io serde_json produces for the types in this
//! workspace.

mod parse;

pub use serde::value::Value;

use serde::de::DeserializeOwned;
use serde::ser::Serialize;
use std::fmt;

/// Error serializing or deserializing JSON.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::value::to_value(value).map_err(|e| Error(e.to_string()))
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value)?.to_string())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse::parse(input)?;
    T::deserialize(value).map_err(|e| Error(e.to_string()))
}

/// Builds a [`Value`] from JSON-ish syntax. Supports `null`, flat
/// `{ "key": expr, ... }` objects, `[expr, ...]` arrays, and bare
/// expressions; object values are arbitrary `Serialize` expressions
/// (nest further objects via a nested `json!` call).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $((
                ::std::string::String::from($key),
                $crate::to_value(&$value).expect("json! value serialization"),
            )),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![
            $($crate::to_value(&$value).expect("json! value serialization")),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serialization")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Report {
        name: String,
        count: usize,
        ratio: f64,
        flags: Vec<bool>,
        pair: (u32, u32),
        ks: [f64; 3],
        kind: Kind,
        note: Option<String>,
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    fn sample() -> Report {
        Report {
            name: "run".to_string(),
            count: 3,
            ratio: 0.5,
            flags: vec![true, false],
            pair: (1, 2),
            ks: [0.1, 0.2, 0.3],
            kind: Kind::Beta,
            note: None,
        }
    }

    #[test]
    fn derived_struct_round_trips() {
        let report = sample();
        let json = to_string(&report).unwrap();
        let back: Report = from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn output_is_compact_and_ordered() {
        let json = to_string(&sample()).unwrap();
        assert_eq!(
            json,
            r#"{"name":"run","count":3,"ratio":0.5,"flags":[true,false],"pair":[1,2],"ks":[0.1,0.2,0.3],"kind":"Beta","note":null}"#
        );
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Value = from_str(" { \"a\" : [ 1 , -2.5 ] , \"b\\n\" : \"x\\u0041\" } ").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![
                (
                    "a".to_string(),
                    Value::Seq(vec![Value::UInt(1), Value::Float(-2.5)])
                ),
                ("b\n".to_string(), Value::Str("xA".to_string())),
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn missing_field_error_mentions_the_field() {
        let err = from_str::<Report>("{\"name\":\"x\"}").unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn json_macro_builds_flat_objects() {
        let v = json!({ "experiment": "fig5", "mean": 1.25, "n": 4usize, "none": Option::<String>::None });
        assert_eq!(
            v.to_string(),
            r#"{"experiment":"fig5","mean":1.25,"n":4,"none":null}"#
        );
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u32, 2u32]).to_string(), "[1,2]");
    }

    #[test]
    fn float_formatting_matches_serde_json() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
    }
}
