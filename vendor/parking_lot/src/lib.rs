//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std
//! lock (a thread panicked while holding it) recovers the guard, since
//! parking_lot has no poisoning concept.

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Gets mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Gets mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_counter_across_threads() {
        let m = Mutex::new(0u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
