//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! two shapes this workspace uses — structs with named fields and enums
//! with only unit variants — without depending on `syn`/`quote` (the
//! container cannot fetch them). The input item is parsed with a small
//! hand-rolled token walker; anything outside the supported shapes
//! (generics, tuple structs, data-carrying variants) panics with a
//! clear message at compile time.
//!
//! Generated code targets the vendored `serde` crate's Value-funnel
//! API: structs serialize through `serialize_struct` field pushes and
//! deserialize via `serde::__private::take_field`; unit enum variants
//! serialize as their name string, matching real serde's externally
//! tagged representation for unit variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

enum Body {
    /// Named struct fields, in declaration order.
    Struct(Vec<String>),
    /// Unit enum variants, in declaration order.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    out.push_str("#[automatically_derived]\n");
    out.push_str(&format!("impl ::serde::ser::Serialize for {} {{\n", item.name));
    out.push_str(
        "    fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {\n",
    );
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(&format!(
                "        let mut state = ::serde::ser::Serializer::serialize_struct(\
                 serializer, \"{}\", {})?;\n",
                item.name,
                fields.len()
            ));
            for field in fields {
                out.push_str(&format!(
                    "        ::serde::ser::SerializeStruct::serialize_field(\
                     &mut state, \"{field}\", &self.{field})?;\n"
                ));
            }
            out.push_str("        ::serde::ser::SerializeStruct::end(state)\n");
        }
        Body::Enum(variants) => {
            out.push_str("        let variant: &str = match self {\n");
            for variant in variants {
                out.push_str(&format!(
                    "            {}::{variant} => \"{variant}\",\n",
                    item.name
                ));
            }
            out.push_str("        };\n");
            out.push_str(
                "        ::serde::ser::Serializer::serialize_value(serializer, \
                 ::serde::value::Value::Str(::std::string::String::from(variant)))\n",
            );
        }
    }
    out.push_str("    }\n}\n");
    out.parse().expect("derived Serialize impl should parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    out.push_str("#[automatically_derived]\n");
    out.push_str(&format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {} {{\n",
        item.name
    ));
    out.push_str(
        "    fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) \
         -> ::core::result::Result<Self, D::Error> {\n",
    );
    out.push_str(
        "        let value = ::serde::de::Deserializer::deserialize_value(deserializer)?;\n",
    );
    // `::serde::de::Error::custom(e)` appears only inside `return
    // Err(...)` so the trait's `Self` is pinned to `D::Error` by the
    // function signature (a bare `map_err(Error::custom)` would leave
    // it for `From`-based inference to guess).
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(&format!(
                "        let mut entries = match ::serde::__private::expect_map(value, \"{}\") {{\n\
                 \x20           ::core::result::Result::Ok(entries) => entries,\n\
                 \x20           ::core::result::Result::Err(e) => \
                 return ::core::result::Result::Err(::serde::de::Error::custom(e)),\n\
                 \x20       }};\n",
                item.name
            ));
            out.push_str(&format!(
                "        ::core::result::Result::Ok({} {{\n",
                item.name
            ));
            for field in fields {
                out.push_str(&format!(
                    "            {field}: match ::serde::__private::take_field(\
                     &mut entries, \"{}\", \"{field}\") {{\n\
                     \x20               ::core::result::Result::Ok(v) => v,\n\
                     \x20               ::core::result::Result::Err(e) => \
                     return ::core::result::Result::Err(::serde::de::Error::custom(e)),\n\
                     \x20           }},\n",
                    item.name
                ));
            }
            out.push_str("        })\n");
        }
        Body::Enum(variants) => {
            out.push_str(&format!(
                "        let variant = match ::serde::__private::expect_variant(value, \"{}\") {{\n\
                 \x20           ::core::result::Result::Ok(v) => v,\n\
                 \x20           ::core::result::Result::Err(e) => \
                 return ::core::result::Result::Err(::serde::de::Error::custom(e)),\n\
                 \x20       }};\n",
                item.name
            ));
            out.push_str("        match variant.as_str() {\n");
            for variant in variants {
                out.push_str(&format!(
                    "            \"{variant}\" => ::core::result::Result::Ok(\
                     {}::{variant}),\n",
                    item.name
                ));
            }
            out.push_str(&format!(
                "            other => ::core::result::Result::Err(\
                 ::serde::de::Error::custom(::std::format!(\
                 \"unknown {} variant `{{}}`\", other))),\n",
                item.name
            ));
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out.parse().expect("derived Deserialize impl should parse")
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = expect_ident(&mut tokens, "`struct` or `enum`");
    let name = expect_ident(&mut tokens, "item name");
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }
    let body_group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde derive (vendored): `{name}` must have a braced body \
             (tuple/unit items unsupported), found {other:?}"
        ),
    };
    let body = match keyword.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group.stream(), &name)),
        "enum" => Body::Enum(parse_unit_variants(body_group.stream(), &name)),
        other => panic!("serde derive (vendored): unsupported item kind `{other}`"),
    };
    Input { name, body }
}

/// Skips any number of outer attributes (`#[...]`), including the
/// `#[doc = "..."]` forms doc comments lower to.
fn skip_attributes(tokens: &mut Tokens) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde derive (vendored): malformed attribute, found {other:?}"),
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, etc.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn expect_ident(tokens: &mut Tokens, what: &str) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive (vendored): expected {what}, found {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream, item: &str) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        let field = expect_ident(&mut tokens, "field name");
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde derive (vendored): struct `{item}` must use named fields, \
                 found {other:?} after `{field}`"
            ),
        }
        // Consume the type: everything up to a comma at angle-bracket
        // depth zero. Commas inside (), [] and {} are invisible here
        // because groups arrive as single trees.
        let mut depth = 0usize;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth = depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    if fields.is_empty() {
        panic!("serde derive (vendored): struct `{item}` has no fields");
    }
    fields
}

fn parse_unit_variants(stream: TokenStream, item: &str) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let variant = expect_ident(&mut tokens, "variant name");
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            other => panic!(
                "serde derive (vendored): enum `{item}` may only contain unit \
                 variants; `{variant}` is followed by {other:?}"
            ),
        }
    }
    if variants.is_empty() {
        panic!("serde derive (vendored): enum `{item}` has no variants");
    }
    variants
}
