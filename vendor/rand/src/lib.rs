//! Offline stand-in for the `rand` crate.
//!
//! The circlekit build container has no network access, so the workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / the extension trait [`Rng`]
//! * [`rngs::SmallRng`] — a deterministic xoshiro256++ generator with
//!   SplitMix64 `seed_from_u64` expansion
//! * [`seq::SliceRandom`] — `shuffle`, `choose`, `choose_multiple`
//! * [`distributions::Distribution`] and [`distributions::Standard`]
//!
//! The streams produced are deterministic and stable across circlekit
//! versions, but are **not** bit-compatible with crates.io `rand`; every
//! seeded artefact in this repository is defined against this
//! implementation.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (so nearby seeds yield unrelated streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: the standard seed-expansion mixer.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing random value generation, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude in the spirit of `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: u32 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut trues = 0usize;
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        assert!((700..1300).contains(&trues), "bool heavily biased: {trues}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
