//! Sequence-related randomness: shuffling and choosing from slices.

use crate::Rng;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns an iterator over `amount` distinct elements chosen
    /// uniformly without replacement (fewer if the slice is shorter).
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index buffer: the first `amount`
        // positions end up holding a uniform sample without replacement.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter { slice: self, indices, next: 0 }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Iterator returned by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: Vec<usize>,
    next: usize,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let idx = *self.indices.get(self.next)?;
        self.next += 1;
        Some(&self.slice[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.indices.len() - self.next;
        (rem, Some(rem))
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(22);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_is_distinct_and_capped() {
        let mut rng = SmallRng::seed_from_u64(23);
        let v: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "duplicates in sample: {picked:?}");

        let over: Vec<u32> = v.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(over.len(), 10);
    }
}
