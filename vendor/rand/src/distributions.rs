//! Distributions and uniform range sampling.

use crate::Rng;
use crate::RngCore;
use core::ops::{Range, RangeInclusive};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution for a type: uniform over all values for
/// integers and `bool`, uniform over `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $next:ident),* $(,)?) => {
        $(impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$next() as $t
            }
        })*
    };
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of mantissa precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Draws a `u64` uniformly from `[0, bound]` using power-of-two masked
/// rejection — unbiased and cheap for the small bounds graph code uses.
#[inline]
fn uniform_u64_inclusive<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    if bound == u64::MAX {
        return rng.next_u64();
    }
    let mask = u64::MAX >> (bound | 1).leading_zeros();
    loop {
        let v = rng.next_u64() & mask;
        if v <= bound {
            return v;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty as $wide:ty),* $(,)?) => {
        $(impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64 - 1;
                let offset = uniform_u64_inclusive(span, rng);
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let offset = uniform_u64_inclusive(span, rng);
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        })*
    };
}

uniform_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64,
);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {
        $(impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let f: $t = Standard.sample(rng);
                let v = low + f * (high - low);
                // Guard against rounding up to the open bound.
                if v < high { v } else { <$t>::max(low, high - (high - low) * <$t>::EPSILON) }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let f: $t = Standard.sample(rng);
                low + f * (high - low)
            }
        })*
    };
}

uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Explicit uniform distribution over a range, mirroring
/// `rand::distributions::Uniform`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: SampleUniform + Copy> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Uniform { low, high, inclusive: false }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        Uniform { low, high, inclusive: true }
    }
}

impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(self.low, self.high, rng)
        } else {
            T::sample_half_open(self.low, self.high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all of 0..5 sampled: {seen:?}");
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.gen_range(3u32..=4) {
                3 => lo = true,
                4 => hi = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn degenerate_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(13);
        assert_eq!(rng.gen_range(7u64..=7), 7);
    }
}
