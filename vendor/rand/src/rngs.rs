//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator: xoshiro256++.
///
/// This mirrors the role of `rand::rngs::SmallRng` (which is
/// xoshiro256++ on 64-bit targets in rand 0.8), though the streams are
/// not bit-compatible with crates.io builds.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = SmallRng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
