//! Helpers invoked by `serde_derive`-generated code. Not public API.

use crate::de::{DeserializeOwned, Error};
use crate::value::{Value, ValueError};

/// Unwraps a `Value::Map`, reporting the target type on mismatch.
pub fn expect_map(value: Value, ty: &str) -> Result<Vec<(String, Value)>, ValueError> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(ValueError::custom(format!(
            "expected map for struct {ty}, found {other:?}"
        ))),
    }
}

/// Unwraps a `Value::Str` naming a unit enum variant.
pub fn expect_variant(value: Value, ty: &str) -> Result<String, ValueError> {
    match value {
        Value::Str(name) => Ok(name),
        other => Err(ValueError::custom(format!(
            "expected string variant for enum {ty}, found {other:?}"
        ))),
    }
}

/// Removes and deserializes one named field from a struct map.
pub fn take_field<T: DeserializeOwned>(
    entries: &mut Vec<(String, Value)>,
    ty: &str,
    name: &str,
) -> Result<T, ValueError> {
    let idx = entries
        .iter()
        .position(|(key, _)| key == name)
        .ok_or_else(|| ValueError::custom(format!("missing field `{name}` in struct {ty}")))?;
    let (_, value) = entries.remove(idx);
    T::deserialize(value)
}
