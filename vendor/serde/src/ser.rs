//! Serialization traits and impls for std types.

use crate::value::{to_value, Value};
use std::fmt::Display;

/// Errors produced while serializing.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Creates an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized data.
///
/// Unlike real serde's many-method trait, everything funnels through
/// [`Serializer::serialize_value`]; `serialize_struct` is provided on
/// top of it so manual impls written against the real serde API (build
/// a struct serializer, push fields, `end()`) still compile.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully-built [`Value`].
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Begins serializing a struct with `len` fields.
    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<StructSerializer<Self>, Self::Error> {
        Ok(StructSerializer {
            ser: self,
            fields: Vec::with_capacity(len),
        })
    }
}

/// Field-pushing interface returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced by [`SerializeStruct::end`].
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// The concrete struct serializer: accumulates fields in declaration
/// order, then emits one ordered `Value::Map`.
pub struct StructSerializer<S: Serializer> {
    ser: S,
    fields: Vec<(String, Value)>,
}

impl<S: Serializer> SerializeStruct for StructSerializer<S> {
    type Ok = S::Ok;
    type Error = S::Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        let v = to_value(value).map_err(Self::Error::custom)?;
        self.fields.push((key.to_string(), v));
        Ok(())
    }

    fn end(self) -> Result<Self::Ok, Self::Error> {
        self.ser.serialize_value(Value::Map(self.fields))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(*self as u64))
            }
        })*
    };
}

serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                // Match serde_json: non-negative integers print unsigned.
                let value = if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) };
                serializer.serialize_value(value)
            }
        })*
    };
}

serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self as f64))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(inner) => inner.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

fn serialize_seq<'a, S, T, I>(serializer: S, items: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut seq = Vec::new();
    for item in items {
        seq.push(to_value(item).map_err(S::Error::custom)?);
    }
    serializer.serialize_value(Value::Seq(seq))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(serializer, self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(serializer, self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(serializer, self)
    }
}

macro_rules! serialize_tuple {
    ($(($($idx:tt $t:ident),+))*) => {
        $(impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![
                    $(to_value(&self.$idx).map_err(S::Error::custom)?),+
                ];
                serializer.serialize_value(Value::Seq(seq))
            }
        })*
    };
}

serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
