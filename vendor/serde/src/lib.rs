//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal serialization framework exposing the serde API subset
//! circlekit uses: the [`Serialize`]/[`Deserialize`] traits, manual
//! `serialize_struct` support, `de::Error::custom`, and (behind the
//! `derive` feature) derive macros for named-field structs and
//! unit-variant enums.
//!
//! Unlike real serde's visitor architecture, everything funnels through
//! an order-preserving [`value::Value`] tree; `serde_json` renders and
//! parses that tree. This keeps the wire format identical to what
//! crates.io serde_json would produce for the types in this workspace
//! (maps keep field order; unit enum variants are plain strings).

pub mod de;
pub mod ser;
pub mod value;

#[doc(hidden)]
pub mod __private;

pub use de::Deserialize;
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
