//! The self-describing tree every (de)serialization funnels through.

use crate::ser::{Serialize, Serializer};
use std::fmt;

/// A dynamically-typed serialized value.
///
/// `Map` is a `Vec` rather than a hash map so struct field order is
/// preserved end-to-end — the JSON layer depends on that for stable
/// output.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / a `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative values land here).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An order-preserving string-keyed map.
    Map(Vec<(String, Value)>),
}

impl fmt::Display for Value {
    /// Renders the value as compact JSON (no whitespace). Non-finite
    /// floats render as `null`, matching serde_json's lossy behaviour.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats,
                    // matching serde_json ("1.0", not "1").
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Seq(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Map(entries) => {
                f.write_str("{")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// The error type used by [`Value`]-level (de)serialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueError(String);

impl ValueError {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        ValueError(message.into())
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl crate::ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl crate::de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// A [`Serializer`] whose output is the [`Value`] tree itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Serializes any [`Serialize`] type into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> crate::de::Deserialize<'de> for Value {
    fn deserialize<D: crate::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_value()
    }
}
