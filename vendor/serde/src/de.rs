//! Deserialization traits and impls for std types.

use crate::value::{Value, ValueError};
use std::fmt::Display;

/// Errors produced while deserializing.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Creates an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source of serialized data. Everything funnels through one
/// self-describing [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produces the full value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

impl<'de> Deserializer<'de> for Value {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self)
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

fn unexpected<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", type_name(got)))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(unexpected("bool", &other)),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.deserialize_value()?;
                let out = match &value {
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    _ => None,
                };
                out.ok_or_else(|| unexpected(stringify!($t), &value))
            }
        })*
    };
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Float(x) => Ok(x),
            Value::UInt(u) => Ok(u as f64),
            Value::Int(i) => Ok(i as f64),
            // serde_json writes non-finite floats as null; accept the
            // round trip.
            Value::Null => Ok(f64::NAN),
            other => Err(unexpected("f64", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|item| T::deserialize(item).map_err(D::Error::custom))
                .collect(),
            other => Err(unexpected("sequence", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($idx:tt $t:ident),+))*) => {
        $(impl<'de, $($t: DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                let value = deserializer.deserialize_value()?;
                match value {
                    Value::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                $t::deserialize(iter.next().expect("length checked"))
                                    .map_err(De::Error::custom)?
                            },
                        )+))
                    }
                    Value::Seq(items) => Err(De::Error::custom(format!(
                        "expected tuple of length {}, found sequence of length {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(unexpected("sequence", &other)),
                }
            }
        })*
    };
}

deserialize_tuple! {
    (1; 0 T0)
    (2; 0 T0, 1 T1)
    (3; 0 T0, 1 T1, 2 T2)
    (4; 0 T0, 1 T1, 2 T2, 3 T3)
    (5; 0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    (6; 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
}
