//! Offline stand-in for the `rand_distr` crate: just the two
//! distributions the synth crate samples degree sequences from.

pub use rand::distributions::Distribution;
use rand::Rng;
use std::fmt;

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z` standard
/// normal (sampled via Box–Muller).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the mean and standard
    /// deviation of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; reject u1 == 0 so ln is finite.
        let z = loop {
            let u1: f64 = rng.gen();
            let u2: f64 = rng.gen();
            if u1 > 0.0 {
                break (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        };
        (self.mu + self.sigma * z).exp()
    }
}

/// Zipf distribution over `{1, ..., n}` with exponent `s`: probability
/// of `k` proportional to `k^-s`. Sampled by binary search over a
/// precomputed cumulative table — fine for the `n <= 10_000` the synth
/// generators use.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, ..., n}` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n == 0 {
            return Err(Error("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(Error("Zipf requires finite exponent >= 0"));
        }
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Zipf { cumulative })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|&c| c < u);
        (idx.min(self.cumulative.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_is_positive_and_centered() {
        let dist = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(31);
        let mut log_sum = 0.0;
        for _ in 0..4000 {
            let v = dist.sample(&mut rng);
            assert!(v > 0.0);
            log_sum += v.ln();
        }
        let mean = log_sum / 4000.0;
        assert!(mean.abs() < 0.1, "log-mean far from mu: {mean}");
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn zipf_range_and_monotone_mass() {
        let dist = Zipf::new(100, 1.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(32);
        let mut count_one = 0usize;
        let mut count_ten = 0usize;
        for _ in 0..4000 {
            let v = dist.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v) && v.fract() == 0.0);
            if v == 1.0 {
                count_one += 1;
            } else if v == 10.0 {
                count_ten += 1;
            }
        }
        assert!(count_one > count_ten, "rank 1 should dominate rank 10");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }
}
