//! `prop::option::of` — maybe-a-value strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Yields `None` for about a quarter of cases, `Some` of the inner
/// strategy otherwise (real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Clone, Copy, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u8..4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn of_yields_both_variants() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = of(0u32..10);
        let values: Vec<Option<u32>> = (0..200).map(|_| strat.new_value(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().flatten().all(|&v| v < 10));
    }
}
