//! `any::<T>()` — the "whole domain of `T`" strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::distributions::{Distribution, Standard};
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Strategy generating uniformly over all of `T` (floats: `[0, 1)`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// Creates the [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T>
where
    T: Debug,
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    T: Debug,
    Standard: Distribution<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}
