//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use rand::distributions::SampleUniform;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating test inputs of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated input type.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }

    /// Erases the strategy's concrete type so heterogeneous strategies
    /// can live in one collection (the `prop_oneof!` building block).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core of [`Strategy`], for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value_dyn(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Picks one of several strategies uniformly per generated value — the
/// engine behind `prop_oneof!`.
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over `arms`; panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Copy + Debug + PartialOrd,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Copy + Debug + PartialOrd,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($($($t:ident $idx:tt),+;)*) => {
        $(impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        })*
    };
}

tuple_strategy! {
    A 0;
    A 0, B 1;
    A 0, B 1, C 2;
    A 0, B 1, C 2, D 3;
    A 0, B 1, C 2, D 3, E 4;
    A 0, B 1, C 2, D 3, E 4, F 5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_maps_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (0u32..10, (5usize..=6).prop_map(|n| n * 2), Just(7i32));
        for _ in 0..200 {
            let (a, b, c) = strat.new_value(&mut rng);
            assert!(a < 10);
            assert!(b == 10 || b == 12);
            assert_eq!(c, 7);
        }
    }
}
