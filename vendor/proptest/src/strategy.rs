//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use rand::distributions::SampleUniform;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating test inputs of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated input type.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Copy + Debug + PartialOrd,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Copy + Debug + PartialOrd,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($($($t:ident $idx:tt),+;)*) => {
        $(impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        })*
    };
}

tuple_strategy! {
    A 0;
    A 0, B 1;
    A 0, B 1, C 2;
    A 0, B 1, C 2, D 3;
    A 0, B 1, C 2, D 3, E 4;
    A 0, B 1, C 2, D 3, E 4, F 5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_maps_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (0u32..10, (5usize..=6).prop_map(|n| n * 2), Just(7i32));
        for _ in 0..200 {
            let (a, b, c) = strat.new_value(&mut rng);
            assert!(a < 10);
            assert!(b == 10 || b == 12);
            assert_eq!(c, 7);
        }
    }
}
