//! `prop::sample::select` — pick one of a fixed set of options.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Picks uniformly from `options`.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn select_only_yields_listed_options() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = select(vec![2u8, 4, 6]);
        for _ in 0..100 {
            assert!([2, 4, 6].contains(&strat.new_value(&mut rng)));
        }
    }
}
