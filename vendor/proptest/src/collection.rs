//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange { min: range.start, max: range.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange { min: *range.start(), max: *range.end() }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = vec((0u32..5, 0u32..5), 1..4);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((1..=3).contains(&v.len()), "length {}", v.len());
        }
        let exact = vec(0u8..2, 6usize);
        assert_eq!(exact.new_value(&mut rng).len(), 6);
    }
}
