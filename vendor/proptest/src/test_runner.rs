//! Runner configuration and per-case outcomes.

/// The RNG driving input generation — deterministic per (test, case).
pub type TestRng = rand::rngs::SmallRng;

/// Runner configuration. Only `cases` is supported.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of (non-rejected) cases to execute per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; match it so property coverage
        // is comparable.
        Config { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold; the message explains how.
    Fail(String),
    /// The input did not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}
