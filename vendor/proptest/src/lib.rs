//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/`proptest!` API subset the workspace's
//! property tests use: range and `any::<T>()` strategies, tuples,
//! `prop::collection::vec`, `prop::sample::select`, `prop::option::of`,
//! `.prop_map`, `.boxed()`/`prop_oneof!` unions,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! seeded [`test_runner::TestRng`] (fully deterministic run-to-run) and
//! there is **no shrinking** — a failure reports the raw generated
//! inputs instead of a minimized counterexample.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

use std::fmt::Debug;

#[doc(hidden)]
pub fn __run_proptest<S: strategy::Strategy>(
    config: test_runner::Config,
    name: &str,
    strategy: S,
    mut run: impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;

    let mut executed = 0u32;
    let mut attempts = 0u64;
    let mut rejected = 0u64;
    while executed < config.cases {
        if rejected > 16 * u64::from(config.cases) + 1024 {
            panic!(
                "proptest `{name}`: gave up after {rejected} rejected cases \
                 ({executed}/{} executed)",
                config.cases
            );
        }
        // One independent, deterministic stream per attempt.
        let mut rng =
            test_runner::TestRng::seed_from_u64(0xC1C1_E007_0000_0000u64 ^ attempts);
        attempts += 1;
        let values = strategy.new_value(&mut rng);
        let rendered = render_inputs(&values);
        match run(values) {
            Ok(()) => executed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => rejected += 1,
            Err(test_runner::TestCaseError::Fail(msg)) => panic!(
                "proptest `{name}` failed at case {executed}: {msg}\n\
                 inputs: {rendered}\n\
                 (vendored proptest: no shrinking; inputs shown verbatim)"
            ),
        }
    }
}

fn render_inputs<T: Debug>(values: &T) -> String {
    let full = format!("{values:?}");
    if full.len() > 4096 {
        format!("{}… ({} chars total)", &full[..4096], full.len())
    } else {
        full
    }
}

/// Defines deterministic property tests over strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::__run_proptest(
                $cfg,
                stringify!($name),
                ($($strat,)+),
                |values| {
                    let ($($arg,)+) = values;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Builds a [`strategy::Union`] over heterogeneous strategy arms, all
/// generating the same value type. Unlike real proptest the arms are
/// unweighted (uniform); the workspace's tests don't weight them.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition, failing the current case (not the process) so
/// the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a
/// failure) when a generated input does not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    ::std::string::String::from(stringify!($cond)),
                ),
            );
        }
    };
}
