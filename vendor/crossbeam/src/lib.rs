//! Offline stand-in for the `crossbeam` crate: the scoped-thread API,
//! implemented on top of `std::thread::scope` (stable since 1.63).

pub use crate::thread::scope;

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A handle to a scope in which borrowed-data threads can be spawned.
    ///
    /// Copyable so closures can re-spawn from within workers, like
    /// crossbeam's `&Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// so it can spawn further threads, matching crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Owned handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    ///
    /// Returns `Ok(result)` if the closure completed, or `Err(payload)`
    /// if it (not a spawned thread that was joined and handled)
    /// panicked. Panics from unjoined spawned threads propagate as with
    /// `std::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let mid = data.len() / 2;
                let (left, right) = data.split_at(mid);
                let h1 = s.spawn(move |_| left.iter().sum::<u64>());
                let h2 = s.spawn(move |_| right.iter().sum::<u64>());
                h1.join().unwrap() + h2.join().unwrap()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn panics_surface_as_err() {
            let result = super::scope(|s| {
                let h = s.spawn(|_| panic!("worker died"));
                // Propagate like callers that unwrap joins do.
                if h.join().is_err() {
                    panic!("worker died");
                }
            });
            assert!(result.is_err());
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}
