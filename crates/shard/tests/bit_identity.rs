//! The central shard guarantee: for any graph, any vertex set, and any
//! shard count, the scatter-gather pipeline (halo extraction → per-shard
//! partials → reduction) reproduces `SetStats::compute` on the
//! unpartitioned graph **bit-for-bit**, IEEE-754 fields included — and
//! therefore every scoring function applied to it.

use circlekit_graph::{Graph, GraphBuilder, VertexSet};
use circlekit_scoring::{Scorer, ScoringFunction, SetStats};
use circlekit_shard::{compute_partial, manifest_for, reduce_partials, shard_graph,
    sharded_set_stats};
use proptest::prelude::*;

const MAX_NODE: u32 = 30;
const SHARD_COUNTS: [u32; 5] = [1, 2, 3, 5, 8];

fn graph_and_set() -> impl Strategy<Value = (Vec<(u32, u32)>, Vec<u32>, bool)> {
    (
        prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 1..150),
        prop::collection::vec(0..MAX_NODE, 0..20),
        any::<bool>(),
    )
}

fn build(edges: Vec<(u32, u32)>, directed: bool) -> Graph {
    let mut b = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
    b.build()
}

/// Equality down to the f64 bit patterns (derived `PartialEq` would
/// accept `-0.0 == 0.0`).
fn assert_bit_identical(got: &SetStats, expected: &SetStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(got, expected);
    prop_assert_eq!(got.max_odf.to_bits(), expected.max_odf.to_bits());
    prop_assert_eq!(got.avg_odf.to_bits(), expected.avg_odf.to_bits());
    prop_assert_eq!(got.flake_odf.to_bits(), expected.flake_odf.to_bits());
    Ok(())
}

proptest! {
    #[test]
    fn sharded_stats_are_bit_identical_at_every_count(
        (edges, picks, directed) in graph_and_set(),
    ) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let median = Scorer::new(&g).median_degree();
        let expected = SetStats::compute(&g, &set, median);
        for count in SHARD_COUNTS {
            let got = sharded_set_stats(&g, &set, median, count);
            assert_bit_identical(&got, &expected)?;
            // And therefore every scoring function agrees bit-for-bit.
            for f in ScoringFunction::ALL {
                prop_assert_eq!(
                    f.score(&got).to_bits(),
                    f.score(&expected).to_bits(),
                    "{} diverges at shard count {}", f, count
                );
            }
        }
    }

    #[test]
    fn reduction_is_order_independent(
        (edges, picks, directed) in graph_and_set(),
        rotate in 0usize..8,
    ) {
        // Partials arriving in any gather order reduce to the same bits.
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let median = Scorer::new(&g).median_degree();
        let expected = SetStats::compute(&g, &set, median);
        let count = 5u32;
        let mut partials: Vec<_> = (0..count)
            .map(|i| {
                let m = manifest_for(&g, median, 0, count, i);
                compute_partial(&shard_graph(&g, count, i), &m, &set)
            })
            .collect();
        partials.rotate_left(rotate % count as usize);
        partials.reverse();
        let manifest = manifest_for(&g, median, 0, count, 0);
        let got = reduce_partials(&manifest, directed, set.len(), &partials)
            .expect("complete cover");
        assert_bit_identical(&got, &expected)?;
    }

    #[test]
    fn owned_ego_networks_are_exact(
        (edges, _, directed) in graph_and_set(),
        which in 0usize..SHARD_COUNTS.len(),
    ) {
        // The routing guarantee behind suggest_circles: an owned
        // vertex's full adjacency (and its neighbours' mutual edges)
        // survive in the halo sub-graph.
        let count = SHARD_COUNTS[which];
        let g = build(edges, directed);
        for index in 0..count {
            let sub = shard_graph(&g, count, index);
            prop_assert_eq!(sub.node_count(), g.node_count());
            for v in 0..g.node_count() as u32 {
                if circlekit_shard::shard_of(v, count) != index {
                    continue;
                }
                prop_assert_eq!(sub.out_neighbors(v), g.out_neighbors(v));
                if directed {
                    prop_assert_eq!(sub.in_neighbors(v), g.in_neighbors(v));
                }
                // Edges among v's neighbours (the rest of the ego
                // network) are kept too.
                for &a in g.out_neighbors(v) {
                    for &b in g.out_neighbors(a) {
                        if g.out_neighbors(v).contains(&b) {
                            prop_assert!(sub.out_neighbors(a).contains(&b));
                        }
                    }
                }
            }
        }
    }
}
