//! Vertex-partitioned snapshot shards with *exact* scatter-gather
//! scoring.
//!
//! A snapshot too large (or too hot) for one process is split into `N`
//! sub-snapshots by a deterministic hash of the original vertex id
//! ([`shard_of`]). Each shard keeps the parent's **full node-id space**
//! and stores the *halo* sub-graph of its owned vertices: every owned
//! vertex, every neighbour of an owned vertex, and every edge whose two
//! endpoints are both present. Three properties follow by construction:
//!
//! * An owned vertex's adjacency rows are **complete** — its internal /
//!   external tallies against any vertex set are the same integers the
//!   single-node computation produces.
//! * An owned vertex's ego network is complete, so ego-scoped operations
//!   (circle discovery) routed to the owner are exact, not approximate.
//! * Any triangle through an owned member of a set survives in the
//!   shard's induced subgraph (all three corners are present and all
//!   three edges kept), and no spurious triangle can appear (shard edges
//!   are a subset of parent edges) — per-owned-member TPR membership is
//!   exact.
//!
//! [`compute_partial`] evaluates one vertex set on one shard, touching
//! only the members the shard owns; [`reduce_partials`] recombines the
//! `N` partials into the exact global
//! [`SetStats`](circlekit_scoring::SetStats) — **bit-identical** to the
//! single-node value, including the three IEEE-754 fields. Integer
//! tallies are order-free sums; `max_odf` is a fold of `f64::max` over
//! finite non-negatives (associative, exact); and the one
//! order-sensitive term, the Avg-ODF sum, is replayed in the global
//! sorted member order by merging the shards' sorted per-member ODF
//! arrays (ownership partitions the members, so the merge *is* the
//! original iteration order). Graph-global inputs a sub-graph cannot
//! recompute — `m`, the FOMD median degree, and the parent's identity —
//! travel in the snapshot's [`ShardManifest`].
//!
//! `tests/bit_identity.rs` pins the guarantee with property tests over
//! random directed and undirected graphs at shard counts 1, 2, 3, 5
//! and 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circlekit_graph::{Graph, GraphBuilder, NodeId, VertexSet};
use circlekit_metrics::triangles_per_node;
use circlekit_scoring::SetStats;
use circlekit_store::ShardManifest;
use std::fmt;

/// SplitMix64 finalizer (Steele–Lea–Flood): a full 64-bit avalanche, so
/// consecutive vertex ids land on uncorrelated shards.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard that owns vertex `v` in an `shard_count`-way partition: a
/// deterministic function of the *original* vertex id, so every pack of
/// the same parent produces the same placement and a coordinator can
/// route by recomputing it.
///
/// # Panics
///
/// Panics if `shard_count == 0`.
pub fn shard_of(v: NodeId, shard_count: u32) -> u32 {
    assert!(shard_count > 0, "shard_count must be at least 1");
    (splitmix64(v as u64) % shard_count as u64) as u32
}

/// Parses a `--shards` command-line value: every front end (`pack`,
/// `serve --coordinator`, `loadgen`) accepts the same grammar and
/// produces the same diagnostics, mirroring
/// [`parse_thread_count`](circlekit_scoring::parse_thread_count).
///
/// # Errors
///
/// A user-facing message for non-numeric input and for `0` (a snapshot
/// cannot be split into zero shards).
pub fn parse_shard_count(value: &str) -> Result<usize, String> {
    let n: usize = value
        .trim()
        .parse()
        .map_err(|_| format!("--shards expects a positive integer, got {value:?}"))?;
    if n == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    Ok(n)
}

/// Builds shard `shard_index`'s manifest for `parent`: the caller
/// supplies the two inputs that are not derivable from the graph alone
/// (the parent's median total degree and the CRC-32 of the parent
/// snapshot file, `0` when there is no file).
pub fn manifest_for(
    parent: &Graph,
    median_degree: f64,
    parent_crc32: u32,
    shard_count: u32,
    shard_index: u32,
) -> ShardManifest {
    ShardManifest {
        shard_count,
        shard_index,
        parent_node_count: parent.node_count() as u64,
        parent_edge_count: parent.edge_count() as u64,
        parent_median_degree: median_degree,
        parent_crc32,
    }
}

/// Extracts shard `shard_index`'s halo sub-graph from `parent`.
///
/// The result keeps the parent's full node-id space (`node_count` is
/// unchanged; vertices outside the halo are simply isolated) and
/// contains exactly the edges whose two endpoints are both *present*,
/// where present = owned ∪ neighbours(owned). Owned vertices therefore
/// keep their complete adjacency rows.
///
/// # Panics
///
/// Panics if `shard_index >= shard_count` or `shard_count == 0`.
pub fn shard_graph(parent: &Graph, shard_count: u32, shard_index: u32) -> Graph {
    assert!(
        shard_index < shard_count,
        "shard_index {shard_index} outside 0..{shard_count}"
    );
    let n = parent.node_count();
    let mut present = vec![false; n];
    for v in 0..n as NodeId {
        if shard_of(v, shard_count) != shard_index {
            continue;
        }
        present[v as usize] = true;
    }
    // Mark the halo in a second pass so the owned mask is complete first
    // (cheaper than re-testing shard_of per neighbour).
    let owned: Vec<NodeId> = (0..n as NodeId).filter(|&v| present[v as usize]).collect();
    for &v in &owned {
        for &w in parent.out_neighbors(v) {
            present[w as usize] = true;
        }
        if parent.is_directed() {
            for &w in parent.in_neighbors(v) {
                present[w as usize] = true;
            }
        }
    }

    let mut b = if parent.is_directed() {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    // Preserve the parent CSR verbatim: if the parent kept self-loops,
    // the shard keeps them too (an undirected edge is added from both
    // endpoints' rows; the builder dedups the double add).
    b.keep_self_loops(true);
    b.reserve_nodes(n);
    for u in 0..n as NodeId {
        if !present[u as usize] {
            continue;
        }
        for &w in parent.out_neighbors(u) {
            if present[w as usize] {
                b.add_edge(u, w);
            }
        }
    }
    b.build()
}

/// The partial [`SetStats`] terms shard `shard_index` contributes for
/// one vertex set: exact tallies over the members the shard *owns*.
///
/// All integer fields are order-free sums; `max_odf` is an exact fold;
/// and `odf_members` / `odf_values` carry the per-member Avg-ODF terms
/// (owned members with non-zero degree, ascending by id) so the
/// reduction can replay the single-node summation order.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardPartial {
    /// Which shard produced this partial.
    pub shard_index: u32,
    /// Internal adjacency entries seen at owned members (each global
    /// internal arc is seen twice *across* shards, as in the single-node
    /// loop).
    pub internal_arcs: u64,
    /// Boundary arcs seen at owned members.
    pub boundary: u64,
    /// Sum of out-degrees over owned members.
    pub out_degree_sum: u64,
    /// Sum of in-degrees over owned members.
    pub in_degree_sum: u64,
    /// Owned members whose internal degree exceeds the parent median.
    pub above_median_internal: u64,
    /// Owned members with more external than internal edges.
    pub flake_count: u64,
    /// Owned members inside at least one internal triangle.
    pub in_internal_triangle: u64,
    /// Maximum ODF over owned members (0.0 when none qualify).
    pub max_odf: f64,
    /// Owned members with non-zero degree, ascending.
    pub odf_members: Vec<NodeId>,
    /// ODF of the corresponding `odf_members` entry.
    pub odf_values: Vec<f64>,
}

/// Computes shard `manifest.shard_index`'s partial statistics for `set`
/// over the shard's halo sub-graph.
///
/// `set` is the **global** vertex set (the coordinator broadcasts it
/// whole); only the members this shard owns contribute. The FOMD
/// threshold and the TPR size guard come from the manifest and the
/// global set size respectively, exactly as on a single node.
///
/// # Panics
///
/// Panics if `set` contains a node id `>= graph.node_count()`.
pub fn compute_partial(graph: &Graph, manifest: &ShardManifest, set: &VertexSet) -> ShardPartial {
    let directed = graph.is_directed();
    let median_degree = manifest.parent_median_degree;
    let mut partial = ShardPartial {
        shard_index: manifest.shard_index,
        internal_arcs: 0,
        boundary: 0,
        out_degree_sum: 0,
        in_degree_sum: 0,
        above_median_internal: 0,
        flake_count: 0,
        in_internal_triangle: 0,
        max_odf: 0.0,
        odf_members: Vec::new(),
        odf_values: Vec::new(),
    };

    for v in set.iter() {
        if shard_of(v, manifest.shard_count) != manifest.shard_index {
            continue;
        }
        let mut internal_v = 0u64;
        let mut external_v = 0u64;
        for &w in graph.out_neighbors(v) {
            if set.contains(w) {
                internal_v += 1;
            } else {
                external_v += 1;
            }
        }
        let out_deg = graph.out_neighbors(v).len() as u64;
        let in_deg = if directed {
            for &w in graph.in_neighbors(v) {
                if set.contains(w) {
                    internal_v += 1;
                } else {
                    external_v += 1;
                }
            }
            graph.in_neighbors(v).len() as u64
        } else {
            out_deg
        };
        partial.out_degree_sum += out_deg;
        partial.in_degree_sum += in_deg;

        let d = internal_v + external_v;
        if d > 0 {
            let odf = external_v as f64 / d as f64;
            partial.max_odf = partial.max_odf.max(odf);
            partial.odf_members.push(v);
            partial.odf_values.push(odf);
        }
        if external_v > internal_v {
            partial.flake_count += 1;
        }
        if internal_v as f64 > median_degree {
            partial.above_median_internal += 1;
        }
        partial.internal_arcs += internal_v;
        partial.boundary += external_v;
    }

    // TPR over owned members: triangles inside the induced subgraph of
    // the *global* set (size guard included), counting only owners.
    if set.len() >= 3 {
        let sub = induced_subgraph(graph, set);
        let triangles = triangles_per_node(&sub);
        for (local, &v) in set.as_slice().iter().enumerate() {
            if shard_of(v, manifest.shard_count) == manifest.shard_index && triangles[local] > 0 {
                partial.in_internal_triangle += 1;
            }
        }
    }
    partial
}

/// The subgraph induced by `set`, relabelled to dense local ids by rank
/// — the construction `SetStats::compute` uses, replicated so the
/// per-member triangle terms are the same integers.
fn induced_subgraph(graph: &Graph, set: &VertexSet) -> Graph {
    let nodes = set.as_slice();
    let mut b = if graph.is_directed() {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b.reserve_nodes(nodes.len());
    for (local_u, &u) in nodes.iter().enumerate() {
        for w in graph.out_neighbors(u) {
            if let Ok(local_w) = nodes.binary_search(w) {
                b.add_edge(local_u as NodeId, local_w as NodeId);
            }
        }
    }
    b.build()
}

/// Why a set of shard partials cannot be reduced to a global result.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShardError {
    /// The number of partials does not match the manifest's shard count.
    WrongCount {
        /// Shards the manifest declares.
        expected: u32,
        /// Partials supplied.
        got: usize,
    },
    /// Two partials claim the same shard index.
    DuplicateShard {
        /// The repeated index.
        index: u32,
    },
    /// A shard index is outside `0..shard_count`.
    IndexOutOfRange {
        /// The offending index.
        index: u32,
        /// The manifest's shard count.
        count: u32,
    },
    /// A partial's ODF member/value arrays differ in length.
    UnalignedOdf {
        /// The offending shard.
        index: u32,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::WrongCount { expected, got } => {
                write!(f, "need exactly {expected} shard partials, got {got}")
            }
            ShardError::DuplicateShard { index } => {
                write!(f, "shard {index} supplied more than one partial")
            }
            ShardError::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} outside 0..{count}")
            }
            ShardError::UnalignedOdf { index } => {
                write!(f, "shard {index} returned misaligned ODF member/value arrays")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Reduces one partial per shard into the exact global [`SetStats`] —
/// bit-identical to `SetStats::compute` on the unpartitioned parent.
///
/// `set_len` is the global set size `n_C` (the denominator of Avg-ODF /
/// Flake-ODF); `directed` is the parent's orientation. Partials may
/// arrive in any order; exactly one per shard index is required.
///
/// # Errors
///
/// A [`ShardError`] when the partials do not form a complete,
/// duplicate-free cover of `0..manifest.shard_count` — an incomplete
/// gather must be a refusal, never a silently partial score.
pub fn reduce_partials(
    manifest: &ShardManifest,
    directed: bool,
    set_len: usize,
    partials: &[ShardPartial],
) -> Result<SetStats, ShardError> {
    let count = manifest.shard_count;
    if partials.len() != count as usize {
        return Err(ShardError::WrongCount { expected: count, got: partials.len() });
    }
    let mut seen = vec![false; count as usize];
    for p in partials {
        if p.shard_index >= count {
            return Err(ShardError::IndexOutOfRange { index: p.shard_index, count });
        }
        if seen[p.shard_index as usize] {
            return Err(ShardError::DuplicateShard { index: p.shard_index });
        }
        seen[p.shard_index as usize] = true;
        if p.odf_members.len() != p.odf_values.len() {
            return Err(ShardError::UnalignedOdf { index: p.shard_index });
        }
    }

    let mut internal_arcs = 0u64;
    let mut boundary = 0u64;
    let mut out_degree_sum = 0u64;
    let mut in_degree_sum = 0u64;
    let mut above_median_internal = 0u64;
    let mut flake_count = 0u64;
    let mut in_internal_triangle = 0u64;
    let mut max_odf: f64 = 0.0;
    for p in partials {
        internal_arcs += p.internal_arcs;
        boundary += p.boundary;
        out_degree_sum += p.out_degree_sum;
        in_degree_sum += p.in_degree_sum;
        above_median_internal += p.above_median_internal;
        flake_count += p.flake_count;
        in_internal_triangle += p.in_internal_triangle;
        max_odf = max_odf.max(p.max_odf);
    }

    // The ODF sum is the one order-sensitive term: replay the global
    // ascending-member iteration by merging the shards' sorted arrays
    // (ownership partitions the members, so ascending id order across
    // shards *is* the single-node summation order).
    let mut heads: Vec<(usize, usize)> = (0..partials.len()).map(|i| (i, 0)).collect();
    let mut odf_sum = 0.0;
    loop {
        let mut best: Option<(usize, NodeId)> = None;
        for &(p, at) in &heads {
            if let Some(&v) = partials[p].odf_members.get(at) {
                if best.is_none_or(|(_, b)| v < b) {
                    best = Some((p, v));
                }
            }
        }
        let Some((p, _)) = best else { break };
        odf_sum += partials[p].odf_values[heads[p].1];
        heads[p].1 += 1;
    }

    debug_assert_eq!(internal_arcs % 2, 0);
    let n_c = set_len;
    Ok(SetStats {
        n: manifest.parent_node_count as usize,
        m: manifest.parent_edge_count as usize,
        directed,
        n_c,
        m_c: (internal_arcs / 2) as usize,
        c_c: boundary as usize,
        out_degree_sum: out_degree_sum as usize,
        in_degree_sum: in_degree_sum as usize,
        above_median_internal: above_median_internal as usize,
        in_internal_triangle: in_internal_triangle as usize,
        max_odf,
        avg_odf: if n_c == 0 { 0.0 } else { odf_sum / n_c as f64 },
        flake_odf: if n_c == 0 { 0.0 } else { flake_count as f64 / n_c as f64 },
    })
}

/// Convenience: scores `set` through the full shard pipeline — extract
/// every halo sub-graph, compute one partial per shard, reduce. The
/// in-process reference the property tests (and the distributed serve
/// path's integration tests) compare against `SetStats::compute`.
pub fn sharded_set_stats(
    parent: &Graph,
    set: &VertexSet,
    median_degree: f64,
    shard_count: u32,
) -> SetStats {
    let partials: Vec<ShardPartial> = (0..shard_count)
        .map(|i| {
            let manifest = manifest_for(parent, median_degree, 0, shard_count, i);
            let sub = shard_graph(parent, shard_count, i);
            compute_partial(&sub, &manifest, set)
        })
        .collect();
    let manifest = manifest_for(parent, median_degree, 0, shard_count, 0);
    reduce_partials(&manifest, parent.is_directed(), set.len(), &partials)
        .expect("one partial per shard by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_with_tail() -> (Graph, VertexSet) {
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        );
        (g, (0u32..4).collect())
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for count in [1u32, 2, 3, 5, 8] {
            for v in 0..1000u32 {
                let s = shard_of(v, count);
                assert!(s < count);
                assert_eq!(s, shard_of(v, count));
            }
        }
        // Single shard owns everything.
        assert!((0..1000u32).all(|v| shard_of(v, 1) == 0));
    }

    #[test]
    fn shard_of_spreads_vertices() {
        // Not a statistical test — just that no shard is empty on a
        // modest id range, which a weak hash (e.g. v % N on strided ids)
        // would fail.
        for count in [2u32, 3, 5, 8] {
            let mut hit = vec![false; count as usize];
            for v in 0..64u32 {
                hit[shard_of(v, count) as usize] = true;
            }
            assert!(hit.iter().all(|&h| h), "empty shard at count {count}");
        }
    }

    #[test]
    fn parse_shard_count_matches_thread_grammar() {
        assert_eq!(parse_shard_count("3"), Ok(3));
        assert_eq!(parse_shard_count(" 8 "), Ok(8));
        assert_eq!(
            parse_shard_count("zero"),
            Err("--shards expects a positive integer, got \"zero\"".to_string())
        );
        assert_eq!(parse_shard_count("0"), Err("--shards must be at least 1".to_string()));
    }

    #[test]
    fn halo_preserves_owned_rows() {
        let (g, _) = clique_with_tail();
        for count in [1u32, 2, 3] {
            for index in 0..count {
                let sub = shard_graph(&g, count, index);
                assert_eq!(sub.node_count(), g.node_count());
                for v in 0..g.node_count() as NodeId {
                    if shard_of(v, count) == index {
                        assert_eq!(
                            sub.out_neighbors(v),
                            g.out_neighbors(v),
                            "owned row truncated: count {count} shard {index} vertex {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_reduction_matches_direct_compute() {
        let (g, set) = clique_with_tail();
        let scorer = circlekit_scoring::Scorer::new(&g);
        let expected = SetStats::compute(&g, &set, scorer.median_degree());
        let got = sharded_set_stats(&g, &set, scorer.median_degree(), 1);
        assert_eq!(got, expected);
        assert_eq!(got.max_odf.to_bits(), expected.max_odf.to_bits());
        assert_eq!(got.avg_odf.to_bits(), expected.avg_odf.to_bits());
        assert_eq!(got.flake_odf.to_bits(), expected.flake_odf.to_bits());
    }

    #[test]
    fn incomplete_gather_is_a_typed_refusal() {
        let (g, set) = clique_with_tail();
        let median = circlekit_scoring::Scorer::new(&g).median_degree();
        let manifest = manifest_for(&g, median, 0, 3, 0);
        let mut partials: Vec<ShardPartial> = (0..3)
            .map(|i| {
                let m = manifest_for(&g, median, 0, 3, i);
                compute_partial(&shard_graph(&g, 3, i), &m, &set)
            })
            .collect();

        let short = &partials[..2];
        assert_eq!(
            reduce_partials(&manifest, false, set.len(), short),
            Err(ShardError::WrongCount { expected: 3, got: 2 })
        );

        let mut dup = partials.clone();
        dup[2].shard_index = 0;
        assert!(matches!(
            reduce_partials(&manifest, false, set.len(), &dup),
            Err(ShardError::DuplicateShard { index: 0 })
        ));

        partials[2].shard_index = 9;
        assert!(matches!(
            reduce_partials(&manifest, false, set.len(), &partials),
            Err(ShardError::IndexOutOfRange { index: 9, count: 3 })
        ));
    }

    #[test]
    fn empty_set_reduces_to_zeroes() {
        let (g, _) = clique_with_tail();
        let median = circlekit_scoring::Scorer::new(&g).median_degree();
        let expected = SetStats::compute(&g, &VertexSet::new(), median);
        assert_eq!(sharded_set_stats(&g, &VertexSet::new(), median, 3), expected);
    }
}
