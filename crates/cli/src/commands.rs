//! Subcommand implementations, factored for testability: every command
//! returns its output as a `String`.

use circlekit::detect::{detect_circles, girvan_newman, louvain};
use circlekit::discover::{
    best_match_f1, discover as discover_ego, render_suggestion, Candidate, DiscoverConfig,
    EgoView, EvalScores, Suggestion,
};
use circlekit::experiments::characterize;
use circlekit::graph::{
    parse_edge_list_with_policy, parse_groups_with_policy, write_edge_list, write_groups, Graph,
    IngestPolicy, VertexSet,
};
use circlekit::live::{wal_path_for, CrashPoint, LiveSnapshot, Mutation};
use circlekit::metrics::{DegreeKind, DegreeStats};
use circlekit::render::render_score_table;
use circlekit::scoring::{parse_thread_count, Scorer, ScoringFunction};
use circlekit::shard::{manifest_for, parse_shard_count, shard_graph};
use circlekit::statfit::analyze_tail;
use circlekit::store::{
    crc32, file_is_snapshot, file_snapshot_format, save_cks2_snapshot, save_shard_snapshot,
    save_snapshot, section_infos, stream_pack_cks2, write_snapshot, Cks2PackOptions,
    MappedSnapshot, SnapshotFormat, StreamPackOptions,
};
use circlekit::synth::{presets, GroupKind, SynthDataset};
use circlekit_serve::{Client, CoordinatorConfig, ServeConfig, Server, SnapshotRegistry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::fs;

/// Parses and runs a command line (without the program name).
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "generate" => generate(rest),
        "score" => score(rest),
        "characterize" => characterize_cmd(rest),
        "fit-degrees" => fit_degrees(rest),
        "detect" => detect(rest),
        "discover" => discover_cmd(rest),
        "synth" => synth_cmd(rest),
        "pack" => pack(rest),
        "inspect" => inspect(rest),
        "live" => live_cmd(rest),
        "serve" => serve(rest),
        "query" => query(rest),
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     circlekit generate <google+|twitter|livejournal|orkut|magno> [--scale F] [--seed N] --edges FILE [--groups FILE]\n  \
     circlekit score        --edges FILE [--groups FILE] [--undirected] [--all] [--threads N]\n  \
     circlekit characterize --edges FILE [--undirected] [--sources N]\n  \
     circlekit fit-degrees  --edges FILE [--undirected] [--kind in|out|total]\n  \
     circlekit detect       --edges FILE --ego NODE [--min-size N] [--undirected]\n  \
     circlekit discover     --edges FILE --ego NODE [--seed S] [--threads N] [--min-size N] [--top N]\n  \
     circlekit discover     --eval --edges FILE --groups FILE --owners FILE [--seed S] [--threads N]\n                         \
     [--min-size N] [--top N] [--min-f1 X]\n  \
     circlekit synth ego-circles <google+|twitter> [--scale F] [--seed N] --edges FILE\n                         \
     [--groups FILE] [--owners FILE]\n  \
     circlekit pack         --edges FILE [--groups FILE] [--undirected] --out FILE.cks [--force]\n                         \
     [--format cks1|cks2] [--stream] [--memory-budget-mb N]\n                         \
     [--shards N [--shard-index I]]\n  \
     circlekit inspect      --snapshot FILE.cks [--json]\n  \
     circlekit live apply   --snapshot FILE.cks --script FILE\n  \
     circlekit live scores  --snapshot FILE.cks\n  \
     circlekit live compact --snapshot FILE.cks [--crash-point tmp-written|renamed]\n  \
     circlekit serve        --snapshot FILE.cks [--snapshot FILE2.cks ...] [--listen ADDR]\n                         \
     [--threads N] [--workers N] [--queue N] [--batch N] [--cache N]\n                         \
     [--event-loop on|off] [--dispatchers N]\n                         \
     [--replica-of HOST:PORT] [--repl-crash-point POINT]\n  \
     circlekit serve        --coordinator --shards HOST:PORT,HOST:PORT,... [--listen ADDR]\n                         \
     [--shard-count N] [--shard-deadline-ms MS]\n  \
     circlekit query        --addr HOST:PORT [--timeout-ms N] [--binary]\n                         \
     <health|stats|list-snapshots|repl-status|shutdown>\n  \
     circlekit query        --addr HOST:PORT <list-groups|score-table> --snapshot ID [--all]\n  \
     circlekit query        --addr HOST:PORT score-group --snapshot ID --group N [--all] [--deadline-ms N]\n  \
     circlekit query        --addr HOST:PORT score-set   --snapshot ID --members 0,1,2 [--all]\n  \
     circlekit query        --addr HOST:PORT baseline    --snapshot ID --group N [--samples N] [--seed N]\n  \
     circlekit query        --addr HOST:PORT apply-mutations --snapshot ID --script FILE\n  \
     circlekit query        --addr HOST:PORT watch-scores    --snapshot ID --group N\n  \
     circlekit query        --addr HOST:PORT compact         --snapshot ID\n  \
     circlekit query        --addr HOST:PORT suggest-circles --snapshot ID --ego NODE [--seed S]\n                         \
     [--min-size N] [--top N]\n\
     \n\
     every --edges argument may be a text edge list or a CKS1/CKS2 binary\n  \
     snapshot (detected by magic); snapshots carry their own directedness\n  \
     and, when packed with --groups, their group collections, so score\n  \
     can run from a single .cks file; pack --format cks2 writes the\n  \
     compressed format and --stream packs straight from the edge file\n  \
     in bounded memory; pack --shards N splits a CKS1 snapshot into N\n  \
     halo sub-snapshots (FILE.shardI.cks) served by shard processes\n  \
     behind serve --coordinator\n\
     \n\
     every command that reads text files accepts --on-error fail|skip|report:\n  \
     fail (default) aborts on the first malformed line, skip drops bad\n  \
     lines silently, report drops them and prints an ingest summary\n"
        .to_string()
}

/// How file-reading commands treat malformed input, from `--on-error`.
struct Ingest {
    policy: IngestPolicy,
    /// `--on-error report`: print the [`circlekit::graph::IngestReport`].
    verbose: bool,
}

impl Ingest {
    fn from_flags(flags: &Flags<'_>) -> Result<Ingest, String> {
        let value = flags.get("on-error").unwrap_or("fail");
        let policy = IngestPolicy::from_cli(value)
            .ok_or_else(|| format!("bad --on-error {value:?} (fail|skip|report)"))?;
        Ok(Ingest { policy, verbose: value == "report" })
    }
}

/// Tiny flag parser: returns positional args and looks up `--key value` /
/// `--switch` entries.
struct Flags<'a> {
    positional: Vec<&'a str>,
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String], switches: &[&str]) -> Result<Flags<'a>, String> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if switches.contains(&name) {
                    pairs.push((name, None));
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    pairs.push((name, Some(value.as_str())));
                }
            } else {
                positional.push(arg.as_str());
            }
        }
        Ok(Flags { positional, pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| *k == name)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| *k == name)
    }

    /// Every value given for a repeatable flag, in order.
    fn all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| *k == name)
            .filter_map(|(_, v)| *v)
            .collect()
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn parse_value<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{name}: {v:?}")),
        }
    }
}

/// A dataset loaded from `--edges`: the graph, plus the group
/// collections embedded in it when the input was a CKS1 snapshot packed
/// with groups (text edge lists never carry groups).
struct Loaded {
    graph: Graph,
    embedded_groups: Vec<VertexSet>,
}

/// Loads `--edges` — a text edge list or a CKS1 snapshot, auto-detected
/// by magic — under the `--on-error` policy (text only; snapshots are
/// checksummed, so there is no lenient mode to apply). In report mode
/// the text ingest summary is appended to `notes` (which callers prepend
/// to their own output).
fn load_graph(flags: &Flags<'_>, ingest: &Ingest, notes: &mut String) -> Result<Loaded, String> {
    let path = flags.required("edges")?;
    if file_is_snapshot(path).map_err(|e| format!("reading {path}: {e}"))? {
        let mapped = MappedSnapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
        let snap = mapped.load().map_err(|e| format!("{path}: {e}"))?;
        if flags.has("undirected") && snap.graph.is_directed() {
            return Err(format!(
                "{path} is a snapshot of a directed graph; drop --undirected \
                 (snapshots carry their own directedness)"
            ));
        }
        return Ok(Loaded { graph: snap.graph, embedded_groups: snap.groups });
    }
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (edges, report) =
        parse_edge_list_with_policy(&text, ingest.policy).map_err(|e| format!("{path}: {e}"))?;
    if ingest.verbose {
        let _ = write!(notes, "{path}: {report}");
    }
    Ok(Loaded {
        graph: Graph::from_edges(!flags.has("undirected"), edges),
        embedded_groups: Vec::new(),
    })
}

/// Loads the groups to score: the `--groups` file when given (text,
/// validated against the graph under the `--on-error` policy), otherwise
/// the groups embedded in a snapshot `--edges` input.
fn load_groups(
    flags: &Flags<'_>,
    ingest: &Ingest,
    loaded: Loaded,
    notes: &mut String,
) -> Result<(Graph, Vec<VertexSet>), String> {
    let Some(groups_path) = flags.get("groups") else {
        if loaded.embedded_groups.is_empty() {
            return Err("missing --groups (and --edges is not a snapshot with embedded groups)"
                .to_string());
        }
        return Ok((loaded.graph, loaded.embedded_groups));
    };
    let text =
        fs::read_to_string(groups_path).map_err(|e| format!("reading {groups_path}: {e}"))?;
    let (groups, report) =
        parse_groups_with_policy(&text, Some(loaded.graph.node_count()), ingest.policy)
            .map_err(|e| format!("{groups_path}: {e}"))?;
    if ingest.verbose {
        let _ = write!(notes, "{groups_path}: {report}");
    }
    Ok((loaded.graph, groups))
}

fn generate(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &[])?;
    let preset = flags
        .positional
        .first()
        .ok_or("generate needs a preset name")?;
    let scale: f64 = flags.parse_value("scale", 0.01)?;
    let seed: u64 = flags.parse_value("seed", 2014)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let dataset: SynthDataset = match *preset {
        "google+" | "gplus" => presets::google_plus().scaled(scale).generate(&mut rng),
        "twitter" => presets::twitter().scaled(scale).generate(&mut rng),
        "livejournal" => presets::livejournal().scaled(scale).generate(&mut rng),
        "orkut" => presets::orkut().scaled(scale).generate(&mut rng),
        "magno" => presets::magno().scaled(scale).generate(&mut rng),
        other => return Err(format!("unknown preset {other:?}")),
    };

    let edges_path = flags.required("edges")?;
    let mut buf = Vec::new();
    write_edge_list(&dataset.graph, &mut buf).map_err(|e| e.to_string())?;
    fs::write(edges_path, buf).map_err(|e| format!("writing {edges_path}: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(out, "{}", dataset.summary());
    let _ = writeln!(out, "wrote edges to {edges_path}");
    if let Some(groups_path) = flags.get("groups") {
        let mut buf = Vec::new();
        write_groups(&dataset.groups, &mut buf).map_err(|e| e.to_string())?;
        fs::write(groups_path, buf).map_err(|e| format!("writing {groups_path}: {e}"))?;
        let _ = writeln!(out, "wrote {} groups to {groups_path}", dataset.groups.len());
    } else if dataset.kind == GroupKind::Circles {
        let _ = writeln!(out, "hint: pass --groups FILE to export the circles too");
    }
    Ok(out)
}

fn score(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["undirected", "all"])?;
    let ingest = Ingest::from_flags(&flags)?;
    let mut notes = String::new();
    let loaded = load_graph(&flags, &ingest, &mut notes)?;
    let (graph, groups) = load_groups(&flags, &ingest, loaded, &mut notes)?;

    let functions: &[ScoringFunction] = if flags.has("all") {
        &ScoringFunction::ALL
    } else {
        &ScoringFunction::PAPER
    };
    let threads = threads_flag(&flags)?;
    let scorer = Scorer::new(&graph);
    let table = scorer.score_table_parallel(functions, &groups, threads);

    let sizes: Vec<usize> = groups.iter().map(VertexSet::len).collect();
    let rows: Vec<Vec<f64>> = (0..groups.len()).map(|i| table.row(i).to_vec()).collect();
    let mut out = notes;
    out.push_str(&render_score_table(functions, &sizes, &rows));
    Ok(out)
}

/// The shared `--threads` handling: absent means [`default_threads`],
/// anything else goes through [`parse_thread_count`] so every subcommand
/// accepts the same grammar and emits the same diagnostics.
///
/// [`default_threads`]: circlekit::scoring::default_threads
fn threads_flag(flags: &Flags<'_>) -> Result<usize, String> {
    match flags.get("threads") {
        None => Ok(circlekit::scoring::default_threads()),
        Some(value) => parse_thread_count(value),
    }
}

fn characterize_cmd(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["undirected"])?;
    let ingest = Ingest::from_flags(&flags)?;
    let mut notes = String::new();
    let graph = load_graph(&flags, &ingest, &mut notes)?.graph;
    let sources: usize = flags.parse_value("sources", 32)?;
    let seed: u64 = flags.parse_value("seed", 2014)?;
    let dataset = SynthDataset {
        name: flags.required("edges")?.to_string(),
        graph,
        groups: Vec::new(),
        egos: Vec::new(),
        ego_owners: Vec::new(),
        kind: GroupKind::Communities,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let row = characterize(&dataset, sources, &mut rng);
    notes.push_str(&circlekit::render::render_table2(&[row]));
    Ok(notes)
}

fn fit_degrees(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["undirected"])?;
    let ingest = Ingest::from_flags(&flags)?;
    let mut notes = String::new();
    let graph = load_graph(&flags, &ingest, &mut notes)?.graph;
    let kind = match flags.get("kind").unwrap_or("in") {
        "in" => DegreeKind::In,
        "out" => DegreeKind::Out,
        "total" => DegreeKind::Total,
        other => return Err(format!("bad --kind {other:?} (in|out|total)")),
    };
    let stats = DegreeStats::new(&graph, kind);
    let report = analyze_tail(&stats.positive_as_f64()).map_err(|e| e.to_string())?;
    let mut out = notes;
    let _ = writeln!(out, "degrees analysed: {} (mean {:.2})", report.tail_len, stats.average());
    let _ = writeln!(
        out,
        "best family: {}   ks: pl={:.4} ln={:.4} exp={:.4}",
        report.best, report.ks[0], report.ks[1], report.ks[2]
    );
    let _ = writeln!(
        out,
        "tail power law: alpha={:.3} x_min={} (ks {:.4}, n={})",
        report.scanned.alpha, report.scanned.x_min, report.scanned.ks, report.scanned.tail_len
    );
    let _ = writeln!(
        out,
        "log-normal: mu={:.3} sigma={:.3}   exponential: lambda={:.4}",
        report.log_normal.mu, report.log_normal.sigma, report.exponential.lambda
    );
    Ok(out)
}

fn detect(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["undirected"])?;
    let ingest = Ingest::from_flags(&flags)?;
    let mut notes = String::new();
    let graph = load_graph(&flags, &ingest, &mut notes)?.graph;
    let ego: u32 = flags
        .required("ego")?
        .parse()
        .map_err(|_| "bad --ego value".to_string())?;
    if ego as usize >= graph.node_count() {
        return Err(format!(
            "ego {ego} exceeds graph node count {}",
            graph.node_count()
        ));
    }
    let min_size: usize = flags.parse_value("min-size", 3)?;
    let seed: u64 = flags.parse_value("seed", 2014)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let circles = detect_circles(&graph, ego, min_size, &mut rng);
    let mut buf = Vec::new();
    write_groups(&circles, &mut buf).map_err(|e| e.to_string())?;
    let mut out = notes;
    let _ = writeln!(
        out,
        "detected {} circles (>= {min_size} members) in the ego network of {ego}",
        circles.len()
    );
    out.push_str(std::str::from_utf8(&buf).expect("ascii output"));
    Ok(out)
}

/// The shared `--seed/--threads/--min-size/--top` handling for the
/// `discover` command and its eval mode, mirroring [`DiscoverConfig`]
/// defaults so `circlekit discover` and `query suggest-circles` agree.
fn discover_flags(flags: &Flags<'_>) -> Result<DiscoverConfig, String> {
    Ok(DiscoverConfig {
        seed: flags.parse_value("seed", circlekit::discover::DEFAULT_SEED)?,
        threads: threads_flag(flags)?,
        min_size: flags.parse_value("min-size", circlekit::discover::DEFAULT_MIN_SIZE)?,
        max_size: 0,
        top: flags.parse_value("top", circlekit::discover::DEFAULT_TOP)?,
    })
}

fn discover_cmd(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["undirected", "eval"])?;
    if flags.has("eval") {
        return discover_eval(&flags);
    }
    let ingest = Ingest::from_flags(&flags)?;
    let mut notes = String::new();
    let graph = load_graph(&flags, &ingest, &mut notes)?.graph;
    let ego: u32 = flags
        .required("ego")?
        .parse()
        .map_err(|_| "bad --ego value".to_string())?;
    if ego as usize >= graph.node_count() {
        return Err(format!(
            "ego {ego} exceeds graph node count {}",
            graph.node_count()
        ));
    }
    let config = discover_flags(&flags)?;
    let suggestion = discover_ego(&EgoView::from_graph(&graph, ego), &config);
    let mut out = notes;
    out.push_str(&render_suggestion(&suggestion));
    Ok(out)
}

/// `discover --eval`: scores discovery against planted ground-truth
/// circles (from `synth ego-circles`), with the `detect` crate's louvain
/// and girvan-newman as baselines, each restricted to the same ego
/// subgraph. `--min-f1 X` turns the table into a gate for CI.
fn discover_eval(flags: &Flags<'_>) -> Result<String, String> {
    let ingest = Ingest::from_flags(flags)?;
    let mut notes = String::new();
    let loaded = load_graph(flags, &ingest, &mut notes)?;
    let (graph, circles) = load_groups(flags, &ingest, loaded, &mut notes)?;
    let owners_path = flags.required("owners")?;
    let owners_text =
        fs::read_to_string(owners_path).map_err(|e| format!("reading {owners_path}: {e}"))?;
    let owners: Vec<u32> = owners_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.trim().parse().map_err(|_| format!("{owners_path}: bad owner line {l:?}")))
        .collect::<Result<_, String>>()?;
    if owners.len() != circles.len() {
        return Err(format!(
            "{owners_path} has {} owners but --groups has {} circles",
            owners.len(),
            circles.len()
        ));
    }
    let mut by_ego: std::collections::BTreeMap<u32, Vec<VertexSet>> =
        std::collections::BTreeMap::new();
    for (owner, circle) in owners.iter().zip(circles) {
        if *owner as usize >= graph.node_count() {
            return Err(format!("owner {owner} exceeds graph node count"));
        }
        by_ego.entry(*owner).or_default().push(circle);
    }
    if by_ego.is_empty() {
        return Err("no planted circles to evaluate".to_string());
    }
    let config = discover_flags(flags)?;
    let restrict = |view: &EgoView, sets: Vec<VertexSet>| -> Vec<VertexSet> {
        sets.iter()
            .filter(|s| s.len() >= config.min_size)
            .map(|s| view.to_parent(s.as_slice()))
            .collect()
    };
    let mut per_method: [Vec<EvalScores>; 3] = Default::default();
    for (&ego, planted) in &by_ego {
        let view = EgoView::from_graph(&graph, ego);
        let suggestion = discover_ego(&view, &config);
        let discovered: Vec<VertexSet> =
            suggestion.candidates.into_iter().map(|c| c.members).collect();
        let mut rng = SmallRng::seed_from_u64(config.seed ^ u64::from(ego));
        let lv = restrict(&view, louvain(&view.local, &mut rng));
        let gn = restrict(&view, girvan_newman(&view.local, planted.len().max(1)));
        per_method[0].push(best_match_f1(&discovered, planted));
        per_method[1].push(best_match_f1(&lv, planted));
        per_method[2].push(best_match_f1(&gn, planted));
    }
    let mut out = notes;
    let _ = writeln!(
        out,
        "eval over {} egos, {} planted circles (min-size {})",
        by_ego.len(),
        owners.len(),
        config.min_size
    );
    let _ = writeln!(out, "{:<14} {:>9} {:>9} {:>9}", "method", "precision", "recall", "f1");
    let mut discover_f1 = 0.0;
    for (name, scores) in ["discover", "louvain", "girvan-newman"].iter().zip(&per_method) {
        let mean = EvalScores::mean(scores);
        let _ = writeln!(
            out,
            "{name:<14} {:>9.4} {:>9.4} {:>9.4}",
            mean.precision, mean.recall, mean.f1
        );
        if *name == "discover" {
            discover_f1 = mean.f1;
        }
    }
    if let Some(threshold) = flags.get("min-f1") {
        let threshold: f64 =
            threshold.parse().map_err(|_| format!("bad --min-f1 {threshold:?}"))?;
        if discover_f1 < threshold {
            return Err(format!(
                "discover f1 {discover_f1:.4} is below --min-f1 {threshold}\n{out}"
            ));
        }
        let _ = writeln!(out, "f1 gate passed ({discover_f1:.4} >= {threshold})");
    }
    Ok(out)
}

fn synth_cmd(args: &[String]) -> Result<String, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("synth needs a subcommand (ego-circles)".to_string());
    };
    match sub.as_str() {
        "ego-circles" => synth_ego_circles(rest),
        other => Err(format!("unknown synth subcommand {other:?}")),
    }
}

/// Generates an ego-circle dataset (edges + planted circles + a per-circle
/// owners file) so `pack`, `discover --eval`, and the serve pipeline can
/// all consume the same ground truth.
fn synth_ego_circles(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &[])?;
    let preset = flags
        .positional
        .first()
        .ok_or("synth ego-circles needs a preset name (google+|twitter)")?;
    let scale: f64 = flags.parse_value("scale", 0.01)?;
    let seed: u64 = flags.parse_value("seed", 2014)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let dataset: SynthDataset = match *preset {
        "google+" | "gplus" => presets::google_plus().scaled(scale).generate(&mut rng),
        "twitter" => presets::twitter().scaled(scale).generate(&mut rng),
        other => return Err(format!("unknown ego-circle preset {other:?} (google+|twitter)")),
    };
    debug_assert_eq!(dataset.kind, GroupKind::Circles);

    let edges_path = flags.required("edges")?;
    let mut buf = Vec::new();
    write_edge_list(&dataset.graph, &mut buf).map_err(|e| e.to_string())?;
    fs::write(edges_path, buf).map_err(|e| format!("writing {edges_path}: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(out, "{}", dataset.summary());
    let _ = writeln!(out, "wrote edges to {edges_path}");
    if let Some(groups_path) = flags.get("groups") {
        let mut buf = Vec::new();
        write_groups(&dataset.groups, &mut buf).map_err(|e| e.to_string())?;
        fs::write(groups_path, buf).map_err(|e| format!("writing {groups_path}: {e}"))?;
        let _ = writeln!(out, "wrote {} circles to {groups_path}", dataset.groups.len());
    }
    if let Some(owners_path) = flags.get("owners") {
        // Circles hold alters only (never the owner), so each circle is a
        // subset of exactly the alter windows it was carved from; the
        // first containing ego recovers the owner deterministically.
        let mut owners = String::new();
        for circle in &dataset.groups {
            let owner = dataset
                .egos
                .iter()
                .position(|alters| circle.as_slice().iter().all(|&m| alters.contains(m)))
                .map(|i| dataset.ego_owners[i])
                .ok_or_else(|| "internal: circle outside every ego's alter set".to_string())?;
            let _ = writeln!(owners, "{owner}");
        }
        fs::write(owners_path, owners).map_err(|e| format!("writing {owners_path}: {e}"))?;
        let _ = writeln!(out, "wrote {} circle owners to {owners_path}", dataset.groups.len());
    }
    Ok(out)
}

fn pack(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["undirected", "force", "stream"])?;
    let ingest = Ingest::from_flags(&flags)?;
    let mut notes = String::new();
    let edges_path = flags.required("edges")?;
    if let Some(found) =
        file_snapshot_format(edges_path).map_err(|e| format!("reading {edges_path}: {e}"))?
    {
        return Err(format!("{edges_path} is already a {} snapshot", found.name()));
    }
    let format = match flags.get("format").unwrap_or("cks1") {
        "cks1" => SnapshotFormat::Cks1,
        "cks2" => SnapshotFormat::Cks2,
        other => return Err(format!("bad --format {other:?} (cks1|cks2)")),
    };
    if flags.has("stream") && format != SnapshotFormat::Cks2 {
        return Err("--stream requires --format cks2".to_string());
    }
    let shard_count = flags.get("shards").map(parse_shard_count).transpose()?;
    if shard_count.is_some() {
        if format != SnapshotFormat::Cks1 {
            return Err(
                "--shards requires --format cks1 (the shard manifest is a CKS1 section)"
                    .to_string(),
            );
        }
        if flags.has("stream") {
            return Err("--shards cannot stream; drop --stream".to_string());
        }
    } else if flags.get("shard-index").is_some() {
        return Err("--shard-index needs --shards N".to_string());
    }
    let out_path = flags.required("out")?;
    // In shard mode `--out` only names the family; the per-shard paths
    // derived from it carry their own overwrite checks.
    if shard_count.is_none() && !flags.has("force") && fs::metadata(out_path).is_ok() {
        return Err(format!(
            "{out_path} already exists; pass --force to overwrite it"
        ));
    }

    if flags.has("stream") {
        // Streamed packing never materialises the edge list: groups are
        // parsed without a node-count bound (the packer validates them
        // against the graph it discovers) and the edge file goes through
        // the external sort.
        let groups = match flags.get("groups") {
            None => Vec::new(),
            Some(groups_path) => {
                let text = fs::read_to_string(groups_path)
                    .map_err(|e| format!("reading {groups_path}: {e}"))?;
                let (groups, report) = parse_groups_with_policy(&text, None, ingest.policy)
                    .map_err(|e| format!("{groups_path}: {e}"))?;
                if ingest.verbose {
                    let _ = write!(notes, "{groups_path}: {report}");
                }
                groups
            }
        };
        let budget_mb: usize = flags.parse_value("memory-budget-mb", 256)?;
        let options = StreamPackOptions {
            directed: !flags.has("undirected"),
            memory_budget_bytes: budget_mb.max(1) << 20,
            ..StreamPackOptions::default()
        };
        let report = stream_pack_cks2(edges_path, &groups, out_path, &options)
            .map_err(|e| format!("packing {edges_path}: {e}"))?;
        let mut out = notes;
        let _ = writeln!(
            out,
            "packed {} nodes, {} edges, {} groups into {out_path} ({} bytes, cks2 streamed)",
            report.nodes,
            report.edge_count,
            groups.len(),
            report.bytes_written,
        );
        let _ = writeln!(
            out,
            "dropped {} self-loops, {} duplicate arcs; {} sorted runs spilled",
            report.self_loops_dropped, report.duplicates_dropped, report.runs_spilled
        );
        return Ok(out);
    }

    let loaded = load_graph(&flags, &ingest, &mut notes)?;
    let groups = match flags.get("groups") {
        None => Vec::new(),
        Some(groups_path) => {
            let text = fs::read_to_string(groups_path)
                .map_err(|e| format!("reading {groups_path}: {e}"))?;
            let (groups, report) =
                parse_groups_with_policy(&text, Some(loaded.graph.node_count()), ingest.policy)
                    .map_err(|e| format!("{groups_path}: {e}"))?;
            if ingest.verbose {
                let _ = write!(notes, "{groups_path}: {report}");
            }
            groups
        }
    };
    if let Some(count) = shard_count {
        return pack_shards(&flags, notes, &loaded.graph, &groups, count, out_path);
    }
    let bytes = match format {
        SnapshotFormat::Cks1 => save_snapshot(out_path, &loaded.graph, &groups),
        SnapshotFormat::Cks2 => save_cks2_snapshot(
            out_path,
            &loaded.graph,
            &groups,
            &Cks2PackOptions::default(),
        ),
    }
    .map_err(|e| format!("writing {out_path}: {e}"))?;
    let mut out = notes;
    let _ = writeln!(
        out,
        "packed {} nodes, {} edges, {} groups into {out_path} ({bytes} bytes, {})",
        loaded.graph.node_count(),
        loaded.graph.edge_count(),
        groups.len(),
        format.name(),
    );
    Ok(out)
}

/// `pack --shards N [--shard-index I]`: emits halo sub-snapshots
/// `<out>.shardI.cks`, every group collection included, each carrying a
/// shard manifest that binds it to the parent (count, index, parent
/// dimensions and median degree, and the CRC-32 of the parent's own
/// CKS1 image) so a coordinator refuses mismatched shard sets.
fn pack_shards(
    flags: &Flags<'_>,
    notes: String,
    graph: &Graph,
    groups: &[VertexSet],
    count: usize,
    out_path: &str,
) -> Result<String, String> {
    let count = u32::try_from(count).map_err(|_| format!("--shards {count} is too large"))?;
    let indices: Vec<u32> = match flags.get("shard-index") {
        None => (0..count).collect(),
        Some(value) => {
            let index: u32 = value
                .parse()
                .map_err(|_| format!("bad --shard-index {value:?}"))?;
            if index >= count {
                return Err(format!(
                    "--shard-index {index} is out of range for --shards {count}"
                ));
            }
            vec![index]
        }
    };
    // The parent CRC is taken over the parent's canonical CKS1 image,
    // so it equals `crc32` of the file a plain `pack` of the same input
    // would write — shards stay comparable to the parent snapshot.
    let mut parent_image = Vec::new();
    write_snapshot(graph, groups, &mut parent_image)
        .map_err(|e| format!("packing the parent image: {e}"))?;
    let parent_crc = crc32(&parent_image);
    let median = Scorer::new(graph).median_degree();
    let mut out = notes;
    let _ = writeln!(
        out,
        "sharding {} nodes, {} edges, {} groups {count} ways (parent crc32 {parent_crc:#010x})",
        graph.node_count(),
        graph.edge_count(),
        groups.len(),
    );
    for index in indices {
        let path = shard_out_path(out_path, index);
        if !flags.has("force") && fs::metadata(&path).is_ok() {
            return Err(format!("{path} already exists; pass --force to overwrite it"));
        }
        let manifest = manifest_for(graph, median, parent_crc, count, index);
        let sub = shard_graph(graph, count, index);
        let bytes = save_shard_snapshot(&path, &sub, groups, &manifest)
            .map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(
            out,
            "shard {index}/{count}: {} halo edges into {path} ({bytes} bytes)",
            sub.edge_count(),
        );
    }
    Ok(out)
}

/// `web.cks` → `web.shard3.cks`; extensionless paths get the suffix
/// appended so the shard id is never lost.
fn shard_out_path(out_path: &str, index: u32) -> String {
    match out_path.strip_suffix(".cks") {
        Some(base) => format!("{base}.shard{index}.cks"),
        None => format!("{out_path}.shard{index}"),
    }
}

fn inspect(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["json"])?;
    let path = flags.required("snapshot")?;
    let mapped = MappedSnapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
    let (header, sections) =
        section_infos(mapped.bytes()).map_err(|e| format!("{path}: {e}"))?;
    let format = mapped
        .format()
        .ok_or_else(|| format!("{path}: not a snapshot"))?;

    // Per-format statistics beyond the shared header/section table.
    struct Stats {
        nodes: usize,
        edges: usize,
        arcs: u64,
        groups: usize,
        memberships: Option<u64>,
        wide: Option<bool>,
        compressed_adjacency_bytes: Option<u64>,
    }
    // Only CKS1 snapshots can carry a shard manifest.
    let shard = match format {
        SnapshotFormat::Cks1 => mapped.shard_manifest().map_err(|e| format!("{path}: {e}"))?,
        SnapshotFormat::Cks2 => None,
    };
    let stats = match format {
        SnapshotFormat::Cks1 => {
            let view = mapped.view().map_err(|e| format!("{path}: {e}"))?;
            Stats {
                nodes: view.node_count(),
                edges: view.edge_count(),
                arcs: view.arc_count() as u64,
                groups: view.group_count(),
                memberships: Some(view.member_count() as u64),
                wide: None,
                compressed_adjacency_bytes: None,
            }
        }
        SnapshotFormat::Cks2 => {
            let view = mapped.view2().map_err(|e| format!("{path}: {e}"))?;
            let arcs = if view.is_directed() {
                view.edge_count() as u64
            } else {
                2 * view.edge_count() as u64
            };
            Stats {
                nodes: view.node_count(),
                edges: view.edge_count(),
                arcs,
                groups: view.group_count(),
                memberships: None,
                wide: Some(view.is_wide()),
                compressed_adjacency_bytes: Some(view.compressed_adjacency_bytes()),
            }
        }
    };

    if flags.has("json") {
        use serde_json::Value;
        let field = |k: &str, v: Value| (k.to_string(), v);
        let mut fields = vec![
            field("path", Value::Str(path.to_string())),
            field("format", Value::Str(format.name().to_uppercase())),
            field("version", Value::UInt(circlekit::store::VERSION as u64)),
            field("bytes", Value::UInt(mapped.bytes().len() as u64)),
            field("flags", Value::UInt(header.flags as u64)),
            field("directed", Value::Bool(header.directed())),
            field("nodes", Value::UInt(stats.nodes as u64)),
            field("edges", Value::UInt(stats.edges as u64)),
            field("arcs", Value::UInt(stats.arcs)),
            field("groups", Value::UInt(stats.groups as u64)),
        ];
        if let Some(memberships) = stats.memberships {
            fields.push(field("memberships", Value::UInt(memberships)));
        }
        if let Some(wide) = stats.wide {
            fields.push(field("wide", Value::Bool(wide)));
        }
        if let Some(compressed) = stats.compressed_adjacency_bytes {
            fields.push(field("compressed_adjacency_bytes", Value::UInt(compressed)));
        }
        if let Some(m) = shard {
            fields.push(field(
                "shard",
                Value::Map(vec![
                    field("count", Value::UInt(u64::from(m.shard_count))),
                    field("index", Value::UInt(u64::from(m.shard_index))),
                    field("parent_nodes", Value::UInt(m.parent_node_count)),
                    field("parent_edges", Value::UInt(m.parent_edge_count)),
                    field("parent_median_degree", Value::Float(m.parent_median_degree)),
                    field("parent_crc32", Value::UInt(u64::from(m.parent_crc32))),
                ]),
            ));
        }
        fields.push(field("wal", Value::Bool(wal_path_for(path.as_ref()).exists())));
        fields.push(field(
            "sections",
            Value::Seq(
                sections
                    .iter()
                    .map(|s| {
                        Value::Map(vec![
                            field("name", Value::Str(s.name.to_string())),
                            field("bytes", Value::UInt(s.bytes)),
                            field("crc32", Value::UInt(s.checksum as u64)),
                        ])
                    })
                    .collect(),
            ),
        ));
        return Ok(format!("{}\n", Value::Map(fields)));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} snapshot, {} bytes",
        format.name().to_uppercase(),
        mapped.bytes().len()
    );
    let _ = writeln!(
        out,
        "version {}   {}   flags {:#06x}",
        circlekit::store::VERSION,
        if header.directed() { "directed" } else { "undirected" },
        header.flags
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "{:<16} {:>12} {:>12}", "section", "bytes", "crc32");
    for s in &sections {
        let _ = writeln!(out, "{:<16} {:>12} {:>#12x}", s.name, s.bytes, s.checksum);
    }
    let _ = writeln!(out);
    let n = stats.nodes;
    let _ = writeln!(out, "vertices          {n}");
    let _ = writeln!(
        out,
        "{:<17} {}",
        if header.directed() { "edges (arcs)" } else { "edges" },
        stats.edges
    );
    let _ = writeln!(
        out,
        "avg out-degree    {:.3}",
        if n == 0 { 0.0 } else { stats.arcs as f64 / n as f64 }
    );
    let _ = writeln!(out, "groups            {}", stats.groups);
    if let Some(memberships) = stats.memberships {
        if stats.groups > 0 {
            let _ = writeln!(
                out,
                "memberships       {} (mean group size {:.2})",
                memberships,
                memberships as f64 / stats.groups as f64
            );
        }
    }
    if let Some(wide) = stats.wide {
        let _ = writeln!(out, "offset width      {}", if wide { "u64" } else { "u32" });
    }
    if let Some(compressed) = stats.compressed_adjacency_bytes {
        let _ = writeln!(
            out,
            "adjacency bytes   {} ({:.3} bytes/arc)",
            compressed,
            if stats.arcs == 0 { 0.0 } else { compressed as f64 / stats.arcs as f64 }
        );
    }
    if let Some(m) = shard {
        let _ = writeln!(out, "shard             {} of {}", m.shard_index, m.shard_count);
        let _ = writeln!(
            out,
            "parent            {} nodes, {} edges, median degree {}, crc32 {:#010x}",
            m.parent_node_count, m.parent_edge_count, m.parent_median_degree, m.parent_crc32
        );
    }
    Ok(out)
}

/// Reads a mutation script: one mutation per line in the text form of
/// [`Mutation::parse_line`]; `#` comments and blank lines are skipped.
fn read_mutation_script(path: &str) -> Result<Vec<Mutation>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut mutations = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(m) =
            Mutation::parse_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?
        {
            mutations.push(m);
        }
    }
    if mutations.is_empty() {
        return Err(format!("{path}: no mutations in script"));
    }
    Ok(mutations)
}

/// `live` — offline mutation of a CKS1 snapshot through its CKW1 WAL:
/// `apply` commits a script durably, `scores` renders the paper's four
/// scores from the incrementally maintained aggregates (byte-identical
/// to `score` on the compacted snapshot), `compact` folds the WAL back
/// into the snapshot file.
fn live_cmd(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &[])?;
    let op = *flags
        .positional
        .first()
        .ok_or("live needs an op (apply|scores|compact)")?;
    let path = flags.required("snapshot")?;
    match op {
        "apply" => {
            let mutations = read_mutation_script(flags.required("script")?)?;
            let mut live = LiveSnapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
            let replayed = live.replayed_records();
            let outcome = live.apply(&mutations).map_err(|e| format!("{path}: {e}"))?;
            if let Some((index, error)) = outcome.rejected {
                // The applied prefix is already durable in the WAL;
                // report it so a re-run can resume past it.
                return Err(format!(
                    "applied {} of {} mutations, then rejected {:?}: {error}",
                    outcome.applied,
                    mutations.len(),
                    mutations[index].to_line(),
                ));
            }
            Ok(format!(
                "applied {} mutations ({} replayed on open); WAL now holds {} records\n",
                outcome.applied,
                replayed,
                live.wal_records(),
            ))
        }
        "scores" => {
            let live = LiveSnapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
            let sizes: Vec<usize> = live.groups().iter().map(VertexSet::len).collect();
            let rows: Vec<Vec<f64>> = (0..live.groups().len())
                .map(|g| {
                    let scores = live.paper_scores(g).expect("group index in range");
                    scores.iter().map(|&(_, s)| s).collect()
                })
                .collect();
            Ok(render_score_table(&ScoringFunction::PAPER, &sizes, &rows))
        }
        "compact" => {
            let crash_point = flags
                .get("crash-point")
                .map(|name| {
                    CrashPoint::from_name(name)
                        .ok_or_else(|| format!("bad --crash-point {name:?} (tmp-written|renamed)"))
                })
                .transpose()?;
            let mut live = LiveSnapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
            let folded = live.wal_records();
            live.compact_with_crash_point(crash_point)
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(format!("folded {folded} WAL records into {path}\n"))
        }
        other => Err(format!("unknown live op {other:?} (apply|scores|compact)")),
    }
}

/// Starts the scoring daemon and blocks until it drains (SIGINT,
/// SIGTERM, or a `shutdown` request). With `--replica-of ADDR` the
/// daemon serves reads only and tails the primary's WAL. With
/// `--coordinator --shards a,b,c` it serves no local snapshots at all:
/// it scatter-gathers partial statistics from the listed shard daemons
/// and answers scoring ops with the exact global reduction. The
/// listening address is printed to stdout immediately so scripts can
/// connect; the returned string summarises the run after shutdown.
fn serve(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["debug-ops", "coordinator"])?;
    let snapshots = flags.all("snapshot");
    let coordinator = if flags.has("coordinator") {
        if !snapshots.is_empty() {
            return Err(
                "a coordinator serves no local snapshots; drop --snapshot".to_string()
            );
        }
        let entries: Vec<String> = flags
            .required("shards")?
            .split(',')
            .map(|s| s.trim().to_string())
            .collect();
        if entries.iter().any(String::is_empty) {
            return Err("--shards has a blank endpoint entry".to_string());
        }
        // `--shard-count` declares the intended topology size so a
        // truncated endpoint list is refused before connecting at all.
        if let Some(value) = flags.get("shard-count") {
            let want = parse_shard_count(value)?;
            if want != entries.len() {
                return Err(format!(
                    "--shard-count {want} but --shards lists {} endpoints",
                    entries.len()
                ));
            }
        }
        let mut config = CoordinatorConfig::new(entries);
        config.shard_deadline_ms =
            flags.parse_value("shard-deadline-ms", config.shard_deadline_ms)?;
        Some(config)
    } else {
        if snapshots.is_empty() {
            return Err("serve needs at least one --snapshot FILE.cks".to_string());
        }
        if flags.get("shards").is_some() || flags.get("shard-count").is_some() {
            return Err("--shards needs --coordinator".to_string());
        }
        None
    };
    let mut registry = SnapshotRegistry::new();
    for path in snapshots {
        registry.load(path, None)?;
    }
    let repl_crash_point = flags
        .get("repl-crash-point")
        .map(|name| {
            circlekit_serve::ReplCrashPoint::from_name(name).ok_or_else(|| {
                format!(
                    "bad --repl-crash-point {name:?} \
                     (frame-send|frame-receive|pre-ack|post-ack)"
                )
            })
        })
        .transpose()?;
    let event_loop = match flags.get("event-loop").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("bad --event-loop {other:?} (on|off)")),
    };
    let config = ServeConfig {
        threads: threads_flag(&flags)?,
        workers: flags.parse_value("workers", 1)?,
        queue_capacity: flags.parse_value("queue", 1024)?,
        batch_max: flags.parse_value("batch", 64)?,
        cache_capacity: flags.parse_value("cache", 4096)?,
        debug_ops: flags.has("debug-ops"),
        watch_signals: true,
        replica_of: flags.get("replica-of").map(str::to_string),
        repl_crash_point,
        fault: circlekit_serve::FaultPlan::default(),
        coordinator,
        event_loop,
        dispatchers: flags.parse_value("dispatchers", 0)?,
    };
    circlekit_serve::signal::install_termination_handlers();
    let listen = flags.get("listen").unwrap_or("127.0.0.1:7450");
    let server =
        Server::start(registry, config, listen).map_err(|e| format!("binding {listen}: {e}"))?;
    println!("circlekit-serve listening on {}", server.local_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let stats = server.join();
    Ok(format!(
        "served {} requests ({} ok, {} errors; {} batches, cache {} hits / {} misses)\n",
        stats.requests,
        stats.ok_responses,
        stats.error_responses,
        stats.batches,
        stats.cache.hits,
        stats.cache.misses,
    ))
}

/// One-shot client for a running `serve` daemon.
fn query(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args, &["all", "binary"])?;
    let op = *flags.positional.first().ok_or("query needs an op")?;
    let addr = flags.required("addr")?;
    let mut client = Client::connect_with_patience(addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    client.set_binary(flags.has("binary"));
    if let Some(ms) = flags
        .get("timeout-ms")
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --timeout-ms {v:?}")))
        .transpose()?
    {
        client
            .set_timeout(Some(std::time::Duration::from_millis(ms)))
            .map_err(|e| e.to_string())?;
    }
    let functions = flags.has("all").then_some("all");
    let response = match op {
        "health" => client.health(),
        "stats" => client.stats(),
        "shutdown" => client.shutdown(),
        "repl-status" => client.repl_status(),
        "list-snapshots" => client.list_snapshots(),
        "list-groups" => client.list_groups(flags.required("snapshot")?),
        "score-group" => {
            let group: usize = flags
                .required("group")?
                .parse()
                .map_err(|_| "bad --group value".to_string())?;
            let deadline = flags
                .get("deadline-ms")
                .map(|v| v.parse::<u64>().map_err(|_| format!("bad --deadline-ms {v:?}")))
                .transpose()?;
            client.score_group(flags.required("snapshot")?, group, functions, deadline)
        }
        "score-set" => {
            let members: Vec<u32> = flags
                .required("members")?
                .split(',')
                .map(|m| m.trim().parse().map_err(|_| format!("bad member {m:?}")))
                .collect::<Result<_, String>>()?;
            client.score_set(flags.required("snapshot")?, &members, functions, None)
        }
        "baseline" => client.baseline(
            flags.required("snapshot")?,
            flags.parse_value("group", 0)?,
            flags.parse_value("samples", circlekit_serve::DEFAULT_BASELINE_SAMPLES)?,
            flags.parse_value("seed", 2014)?,
        ),
        "apply-mutations" => {
            let mutations = read_mutation_script(flags.required("script")?)?;
            client.apply_mutations(flags.required("snapshot")?, &mutations)
        }
        "watch-scores" => {
            let group: usize = flags
                .required("group")?
                .parse()
                .map_err(|_| "bad --group value".to_string())?;
            client.watch_scores(flags.required("snapshot")?, group)
        }
        "compact" => client.compact(flags.required("snapshot")?),
        "score-table" => return query_score_table(&mut client, &flags, functions),
        "suggest-circles" => return query_suggest_circles(&mut client, &flags),
        other => return Err(format!("unknown query op {other:?}")),
    };
    let response = response.map_err(|e| e.to_string())?;
    Ok(format!("{response}\n"))
}

/// Scores every group of a snapshot over the wire and renders the result
/// with the same [`render_score_table`] the offline `score` command uses
/// — scores cross the wire losslessly, so the output is byte-identical.
fn query_score_table(
    client: &mut Client,
    flags: &Flags<'_>,
    functions: Option<&str>,
) -> Result<String, String> {
    let snapshot = flags.required("snapshot")?;
    let listing = client.list_groups(snapshot).map_err(|e| e.to_string())?;
    let group_count = match circlekit_serve::protocol::wire::get(&listing, "groups") {
        Some(serde_json::Value::UInt(n)) => *n as usize,
        _ => return Err("list_groups response lacks a group count".to_string()),
    };
    let function_list: &[ScoringFunction] = if functions.is_some() {
        &ScoringFunction::ALL
    } else {
        &ScoringFunction::PAPER
    };
    let mut sizes = Vec::with_capacity(group_count);
    let mut rows = Vec::with_capacity(group_count);
    for g in 0..group_count {
        let response = client
            .score_group(snapshot, g, functions, None)
            .map_err(|e| e.to_string())?;
        let size = circlekit_serve::protocol::wire::get_u64(&response, "size")
            .map_err(|(_, m)| m)? as usize;
        sizes.push(size);
        rows.push(Client::scores_of(&response).map_err(|e| e.to_string())?);
    }
    Ok(render_score_table(function_list, &sizes, &rows))
}

/// Requests a suggestion over the wire and renders it with the same
/// [`render_suggestion`] the offline `discover` command uses — members
/// and scores cross the wire losslessly, so for the same snapshot and
/// seed the output is byte-identical to `circlekit discover`.
fn query_suggest_circles(client: &mut Client, flags: &Flags<'_>) -> Result<String, String> {
    use circlekit_serve::protocol::wire;
    let snapshot = flags.required("snapshot")?;
    let ego: u32 = flags
        .required("ego")?
        .parse()
        .map_err(|_| "bad --ego value".to_string())?;
    let config = discover_flags(flags)?;
    let response = client
        .suggest_circles(snapshot, ego, config.seed, config.min_size, config.top)
        .map_err(|e| e.to_string())?;
    let alters = wire::get_u64(&response, "alters").map_err(|(_, m)| m)? as usize;
    let score_of = |item: &serde_json::Value, key: &str| -> f64 {
        wire::get(item, key).and_then(wire::as_f64).unwrap_or(f64::NAN)
    };
    let Some(serde_json::Value::Seq(items)) = wire::get(&response, "candidates") else {
        return Err("suggest_circles response lacks candidates".to_string());
    };
    let candidates = items
        .iter()
        .map(|item| {
            let Some(serde_json::Value::Seq(ms)) = wire::get(item, "members") else {
                return Err("candidate lacks members".to_string());
            };
            let members: Vec<u32> = ms
                .iter()
                .map(|m| match m {
                    serde_json::Value::UInt(u) => Ok(*u as u32),
                    other => Err(format!("bad member {other:?}")),
                })
                .collect::<Result<_, String>>()?;
            Ok(Candidate {
                members: VertexSet::from_vec(members),
                conductance: score_of(item, "conductance"),
                average_degree: score_of(item, "average_degree"),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let suggestion = Suggestion { ego, seed: config.seed, alters, candidates };
    Ok(render_suggestion(&suggestion))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("circlekit-cli-tests");
        fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join(name);
        // The directory persists across runs; a stale file from a
        // previous run would trip pack's overwrite protection.
        let _ = fs::remove_file(&path);
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn dispatch_rejects_unknown_and_empty() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&args(&["frobnicate"])).is_err());
        assert!(dispatch(&args(&["help"])).unwrap().contains("usage"));
    }

    #[test]
    fn generate_then_score_roundtrip() {
        let edges = tmp("gp.edges");
        let groups = tmp("gp.circles");
        let out = dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "7",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        assert!(out.contains("wrote edges"));
        assert!(out.contains("groups"));

        let out = dispatch(&args(&["score", "--edges", &edges, "--groups", &groups]))
            .expect("score succeeds");
        assert!(out.contains("average-degree"));
        assert!(out.contains("conductance"));
        // One row per group plus headers/summaries.
        assert!(out.lines().count() > 5);
    }

    #[test]
    fn score_threads_flag_changes_nothing_but_accepts_values() {
        let edges = tmp("thr.edges");
        let groups = tmp("thr.circles");
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "7",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        let base = dispatch(&args(&["score", "--edges", &edges, "--groups", &groups]))
            .expect("score succeeds");
        for t in ["1", "2", "7"] {
            let out = dispatch(&args(&[
                "score", "--edges", &edges, "--groups", &groups, "--threads", t,
            ]))
            .expect("score succeeds");
            assert_eq!(base, out, "--threads {t}");
        }
        let err = dispatch(&args(&[
            "score", "--edges", &edges, "--groups", &groups, "--threads", "0",
        ]))
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn score_all_uses_thirteen_functions() {
        let edges = tmp("tw.edges");
        let groups = tmp("tw.circles");
        dispatch(&args(&[
            "generate", "twitter", "--scale", "0.005", "--seed", "8",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        let out = dispatch(&args(&[
            "score", "--edges", &edges, "--groups", &groups, "--all",
        ]))
        .expect("score succeeds");
        assert!(out.contains("flake-odf"));
        assert!(out.contains("tpr"));
    }

    #[test]
    fn characterize_file() {
        let edges = tmp("ch.edges");
        fs::write(&edges, "0 1\n1 2\n2 0\n2 3\n").unwrap();
        let out = dispatch(&args(&["characterize", "--edges", &edges, "--undirected"]))
            .expect("characterize succeeds");
        assert!(out.contains("diameter"));
        assert!(out.contains('4')); // 4 vertices
    }

    #[test]
    fn fit_degrees_runs_on_generated_graph() {
        let edges = tmp("fit.edges");
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "9", "--edges", &edges,
        ]))
        .expect("generate succeeds");
        let out = dispatch(&args(&["fit-degrees", "--edges", &edges, "--kind", "in"]))
            .expect("fit succeeds");
        assert!(out.contains("best family"));
        assert!(out.contains("alpha="));
    }

    #[test]
    fn detect_finds_planted_cliques() {
        let edges = tmp("det.edges");
        // Owner 0 -> two 4-cliques of alters.
        let mut text = String::new();
        for v in 1..=8 {
            text.push_str(&format!("0 {v}\n"));
        }
        for base in [1, 5] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    text.push_str(&format!("{} {}\n", base + i, base + j));
                }
            }
        }
        fs::write(&edges, text).unwrap();
        let out = dispatch(&args(&["detect", "--edges", &edges, "--ego", "0"]))
            .expect("detect succeeds");
        assert!(out.contains("detected 2 circles"), "{out}");
    }

    #[test]
    fn score_rejects_out_of_range_groups() {
        let edges = tmp("oor.edges");
        let groups = tmp("oor.circles");
        fs::write(&edges, "0 1\n").unwrap();
        fs::write(&groups, "0 99\n").unwrap();
        let err = dispatch(&args(&["score", "--edges", &edges, "--groups", &groups]))
            .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // The default fail-fast policy names the offending line.
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn score_on_error_skip_drops_bad_lines() {
        let edges = tmp("skip.edges");
        let groups = tmp("skip.circles");
        fs::write(&edges, "0 1\n1 2\nmangled line here extra\n2 0\n").unwrap();
        fs::write(&groups, "c0\t0 1 99\nc1\t1 2\n").unwrap();
        // Fail-fast rejects the edge file outright...
        let err = dispatch(&args(&["score", "--edges", &edges, "--groups", &groups]))
            .unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        // ...lenient ingestion scores what survives.
        let out = dispatch(&args(&[
            "score", "--edges", &edges, "--groups", &groups, "--on-error", "skip",
        ]))
        .expect("lenient score succeeds");
        assert!(!out.contains("ingest:"), "skip mode stays quiet:\n{out}");
        assert!(out.contains("conductance"), "{out}");
    }

    #[test]
    fn score_on_error_report_prints_ingest_summaries() {
        let edges = tmp("rep.edges");
        let groups = tmp("rep.circles");
        fs::write(&edges, "0 1\n1 2\n0 1\nbogus\n").unwrap();
        fs::write(&groups, "c0\t0 1 99\n").unwrap();
        let out = dispatch(&args(&[
            "score", "--edges", &edges, "--groups", &groups, "--on-error", "report",
        ]))
        .expect("report score succeeds");
        assert!(out.contains("1 duplicate edges"), "{out}");
        assert!(out.contains("1 members dropped"), "{out}");
        assert!(out.contains("skipped line 4"), "{out}");
    }

    #[test]
    fn bad_on_error_value_is_rejected() {
        let edges = tmp("bad.edges");
        fs::write(&edges, "0 1\n").unwrap();
        let err = dispatch(&args(&[
            "characterize", "--edges", &edges, "--on-error", "explode",
        ]))
        .unwrap_err();
        assert!(err.contains("--on-error"), "{err}");
    }

    #[test]
    fn missing_flags_are_reported() {
        assert!(dispatch(&args(&["score", "--edges", "nope"])).is_err());
        assert!(dispatch(&args(&["generate", "google+"])).is_err());
        assert!(dispatch(&args(&["detect", "--edges", "nope"])).is_err());
        assert!(dispatch(&args(&["pack", "--edges", "nope"])).is_err());
        assert!(dispatch(&args(&["inspect"])).is_err());
    }

    #[test]
    fn pack_then_score_matches_text_ingestion_byte_for_byte() {
        let edges = tmp("pk.edges");
        let groups = tmp("pk.circles");
        let snap = tmp("pk.cks");
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "11",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        let out = dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");
        assert!(out.contains("packed"), "{out}");

        let from_text = dispatch(&args(&["score", "--edges", &edges, "--groups", &groups]))
            .expect("text score succeeds");
        // Embedded groups: a single .cks input replaces both files.
        let from_snap = dispatch(&args(&["score", "--edges", &snap]))
            .expect("snapshot score succeeds");
        assert_eq!(from_text, from_snap);
        // Explicit --groups still works alongside a snapshot graph.
        let mixed = dispatch(&args(&["score", "--edges", &snap, "--groups", &groups]))
            .expect("mixed score succeeds");
        assert_eq!(from_text, mixed);
    }

    #[test]
    fn pack_without_groups_and_score_requires_groups() {
        let edges = tmp("pg.edges");
        let snap = tmp("pg.cks");
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap])).expect("pack succeeds");
        let err = dispatch(&args(&["score", "--edges", &snap])).unwrap_err();
        assert!(err.contains("--groups"), "{err}");
    }

    #[test]
    fn inspect_reports_sections_and_stats() {
        let edges = tmp("in.edges");
        let groups = tmp("in.circles");
        let snap = tmp("in.cks");
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        fs::write(&groups, "c0\t0 1\nc1\t1 2\n").unwrap();
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");
        let out = dispatch(&args(&["inspect", "--snapshot", &snap])).expect("inspect succeeds");
        assert!(out.contains("CKS1 snapshot"), "{out}");
        assert!(out.contains("out-offsets"), "{out}");
        assert!(out.contains("group-members"), "{out}");
        assert!(out.contains("vertices          3"), "{out}");
        assert!(out.contains("groups            2"), "{out}");
    }

    #[test]
    fn inspect_json_reports_header_sections_and_crcs() {
        let edges = tmp("ij.edges");
        let groups = tmp("ij.circles");
        let snap = tmp("ij.cks");
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        fs::write(&groups, "c0\t0 1\nc1\t1 2\n").unwrap();
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");
        let out = dispatch(&args(&["inspect", "--snapshot", &snap, "--json"]))
            .expect("inspect --json succeeds");
        let value: serde_json::Value = serde_json::from_str(out.trim()).expect("valid JSON");
        let get = |k| circlekit_serve::protocol::wire::get(&value, k);
        assert_eq!(get("format"), Some(&serde_json::Value::Str("CKS1".to_string())));
        assert_eq!(get("version"), Some(&serde_json::Value::UInt(1)));
        assert_eq!(get("directed"), Some(&serde_json::Value::Bool(true)));
        assert_eq!(get("nodes"), Some(&serde_json::Value::UInt(3)));
        assert_eq!(get("groups"), Some(&serde_json::Value::UInt(2)));
        assert_eq!(get("wal"), Some(&serde_json::Value::Bool(false)));
        let Some(serde_json::Value::Seq(sections)) = get("sections") else {
            panic!("sections missing: {out}");
        };
        assert!(!sections.is_empty(), "{out}");
        for section in sections {
            for key in ["name", "bytes", "crc32"] {
                assert!(
                    circlekit_serve::protocol::wire::get(section, key).is_some(),
                    "section lacks {key}: {out}"
                );
            }
        }
    }

    #[test]
    fn live_apply_scores_compact_roundtrip_matches_offline_score() {
        let edges = tmp("lv.edges");
        let groups = tmp("lv.circles");
        let snap = tmp("lv.cks");
        let script = tmp("lv.script");
        let _ = fs::remove_file(format!("{snap}.ckw"));
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        fs::write(&groups, "c0\t0 1 2\nc1\t0 1\n").unwrap();
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");
        fs::write(&script, "# grow the graph\nadd-vertex\n\nadd-edge 3 0\nadd-member 1 3\n")
            .unwrap();

        let out = dispatch(&args(&["live", "apply", "--snapshot", &snap, "--script", &script]))
            .expect("apply succeeds");
        assert!(out.contains("applied 3 mutations"), "{out}");
        let live_table = dispatch(&args(&["live", "scores", "--snapshot", &snap]))
            .expect("live scores succeeds");
        let inspected = dispatch(&args(&["inspect", "--snapshot", &snap, "--json"]))
            .expect("inspect succeeds");
        assert!(inspected.contains("\"wal\":true"), "{inspected}");

        let out = dispatch(&args(&["live", "compact", "--snapshot", &snap]))
            .expect("compact succeeds");
        assert!(out.contains("folded 3 WAL records"), "{out}");
        let inspected = dispatch(&args(&["inspect", "--snapshot", &snap, "--json"]))
            .expect("inspect succeeds");
        assert!(inspected.contains("\"wal\":false"), "{inspected}");
        assert!(inspected.contains("\"nodes\":4"), "{inspected}");

        // The aggregate-backed table is byte-identical to the offline
        // scorer over the compacted snapshot — and stable across the
        // compaction itself.
        let offline = dispatch(&args(&["score", "--edges", &snap])).expect("score succeeds");
        assert_eq!(live_table, offline);
        let recompacted = dispatch(&args(&["live", "scores", "--snapshot", &snap]))
            .expect("live scores succeeds");
        assert_eq!(live_table, recompacted);
    }

    #[test]
    fn live_apply_reports_rejections_after_the_durable_prefix() {
        let edges = tmp("lr.edges");
        let snap = tmp("lr.cks");
        let script = tmp("lr.script");
        let _ = fs::remove_file(format!("{snap}.ckw"));
        fs::write(&edges, "0 1\n1 2\n").unwrap();
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap])).expect("pack succeeds");
        fs::write(&script, "add-vertex\nadd-edge 0 1\n").unwrap();
        let err = dispatch(&args(&["live", "apply", "--snapshot", &snap, "--script", &script]))
            .unwrap_err();
        assert!(err.contains("applied 1 of 2"), "{err}");
        assert!(err.contains("already exists"), "{err}");
        // Malformed scripts and bad crash points are named precisely.
        fs::write(&script, "add-edge 1\n").unwrap();
        let err = dispatch(&args(&["live", "apply", "--snapshot", &snap, "--script", &script]))
            .unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        let err = dispatch(&args(&[
            "live", "compact", "--snapshot", &snap, "--crash-point", "never",
        ]))
        .unwrap_err();
        assert!(err.contains("--crash-point"), "{err}");
    }

    #[test]
    fn query_live_mutation_ops_roundtrip() {
        let edges = tmp("qm.edges");
        let groups = tmp("qm.circles");
        let snap = tmp("qm.cks");
        let script = tmp("qm.script");
        let _ = fs::remove_file(format!("{snap}.ckw"));
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        fs::write(&groups, "c0\t0 1 2\n").unwrap();
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");
        fs::write(&script, "add-vertex\nadd-edge 3 0\n").unwrap();

        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server = {
            let snap = snap.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                dispatch(&args(&["serve", "--snapshot", &snap, "--listen", &addr]))
            })
        };

        let applied = dispatch(&args(&[
            "query", "--addr", &addr, "apply-mutations", "--snapshot", "qm",
            "--script", &script,
        ]))
        .expect("apply-mutations succeeds");
        assert!(applied.contains("\"applied\":2"), "{applied}");
        let watched = dispatch(&args(&[
            "query", "--addr", &addr, "watch-scores", "--snapshot", "qm", "--group", "0",
        ]))
        .expect("watch-scores succeeds");
        assert!(watched.contains("\"scores\":["), "{watched}");
        assert!(watched.contains("\"version\":1"), "{watched}");
        let compacted = dispatch(&args(&[
            "query", "--addr", &addr, "compact", "--snapshot", "qm",
        ]))
        .expect("compact succeeds");
        assert!(compacted.contains("\"folded_records\":2"), "{compacted}");
        assert!(!std::path::Path::new(&format!("{snap}.ckw")).exists());

        dispatch(&args(&["query", "--addr", &addr, "shutdown"])).expect("shutdown succeeds");
        server.join().unwrap().expect("serve exits cleanly");
    }

    #[test]
    fn pack_refuses_to_overwrite_without_force() {
        let edges = tmp("fo.edges");
        let snap = tmp("fo.cks");
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap])).expect("pack succeeds");
        let before = fs::read(&snap).unwrap();
        let err = dispatch(&args(&["pack", "--edges", &edges, "--out", &snap])).unwrap_err();
        assert!(err.contains("--force"), "{err}");
        assert_eq!(fs::read(&snap).unwrap(), before, "refused pack must not touch the file");
        // --force replaces the snapshot; any plain file is protected too.
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap, "--force"]))
            .expect("forced pack succeeds");
        let plain = tmp("fo.txt");
        fs::write(&plain, "precious").unwrap();
        let err = dispatch(&args(&["pack", "--edges", &edges, "--out", &plain])).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert_eq!(fs::read_to_string(&plain).unwrap(), "precious");
    }

    /// The equivalence oracle: the full 13-function score table printed
    /// from a degree-relabelled CKS2 snapshot is byte-identical to the
    /// CKS1 and text-ingest paths — end-to-end through the CLI.
    #[test]
    fn cks2_score_stdout_is_bit_identical_to_cks1_and_text() {
        let edges = tmp("eq.edges");
        let groups = tmp("eq.circles");
        let snap1 = tmp("eq.cks1");
        let snap2 = tmp("eq.cks2");
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "13",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap1,
        ]))
        .expect("cks1 pack succeeds");
        let out = dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap2,
            "--format", "cks2",
        ]))
        .expect("cks2 pack succeeds");
        assert!(out.contains("cks2"), "{out}");

        let from_text = dispatch(&args(&["score", "--edges", &edges, "--groups", &groups, "--all"]))
            .expect("text score succeeds");
        let from_cks1 = dispatch(&args(&["score", "--edges", &snap1, "--all"]))
            .expect("cks1 score succeeds");
        let from_cks2 = dispatch(&args(&["score", "--edges", &snap2, "--all"]))
            .expect("cks2 score succeeds");
        assert_eq!(from_text, from_cks1);
        assert_eq!(from_text, from_cks2);
        // And the compressed file actually is compressed.
        let s1 = fs::metadata(&snap1).unwrap().len();
        let s2 = fs::metadata(&snap2).unwrap().len();
        assert!(s2 < s1, "cks2 ({s2}) should be smaller than cks1 ({s1})");
    }

    #[test]
    fn cks2_streamed_pack_emits_byte_identical_file_via_cli() {
        let edges = tmp("st.edges");
        let groups = tmp("st.circles");
        let in_memory = tmp("st-mem.cks2");
        let streamed = tmp("st-stream.cks2");
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.005", "--seed", "17",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &in_memory,
            "--format", "cks2",
        ]))
        .expect("in-memory pack succeeds");
        // A 1 MiB budget on a graph this size forces external-sort runs.
        let out = dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &streamed,
            "--format", "cks2", "--stream", "--memory-budget-mb", "1",
        ]))
        .expect("streamed pack succeeds");
        assert!(out.contains("streamed"), "{out}");
        assert_eq!(
            fs::read(&in_memory).unwrap(),
            fs::read(&streamed).unwrap(),
            "streamed and in-memory CKS2 packs must be byte-identical"
        );
    }

    #[test]
    fn pack_force_semantics_carry_to_cks2() {
        let edges = tmp("f2.edges");
        let snap = tmp("f2.cks2");
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap, "--format", "cks2"]))
            .expect("pack succeeds");
        let before = fs::read(&snap).unwrap();
        for extra in [&["--format", "cks2"][..], &["--format", "cks2", "--stream"][..]] {
            let mut cmd = args(&["pack", "--edges", &edges, "--out", &snap]);
            cmd.extend(extra.iter().map(|s| s.to_string()));
            let err = dispatch(&cmd).unwrap_err();
            assert!(err.contains("--force"), "{err}");
            assert_eq!(fs::read(&snap).unwrap(), before, "refused pack must not touch the file");
        }
        dispatch(&args(&[
            "pack", "--edges", &edges, "--out", &snap, "--format", "cks2", "--force",
        ]))
        .expect("forced cks2 pack succeeds");
        dispatch(&args(&[
            "pack", "--edges", &edges, "--out", &snap, "--format", "cks2", "--stream", "--force",
        ]))
        .expect("forced streamed pack succeeds");
        assert_eq!(fs::read(&snap).unwrap(), before, "same input repacks identically");
    }

    #[test]
    fn pack_rejects_stream_without_cks2_and_snapshot_inputs() {
        let edges = tmp("sv.edges");
        let snap = tmp("sv.cks2");
        fs::write(&edges, "0 1\n1 2\n").unwrap();
        let err = dispatch(&args(&["pack", "--edges", &edges, "--out", &snap, "--stream"]))
            .unwrap_err();
        assert!(err.contains("--format cks2"), "{err}");
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap, "--format", "cks2"]))
            .expect("pack succeeds");
        // A snapshot (of either format) is refused as --edges input to pack.
        let err = dispatch(&args(&[
            "pack", "--edges", &snap, "--out", &tmp("sv2.cks"),
        ]))
        .unwrap_err();
        assert!(err.contains("already a cks2 snapshot"), "{err}");
    }

    #[test]
    fn inspect_reports_cks2_sections_and_stats() {
        let edges = tmp("i2.edges");
        let groups = tmp("i2.circles");
        let snap = tmp("i2.cks2");
        fs::write(&edges, "0 1\n1 2\n2 0\n0 2\n3 1\n").unwrap();
        fs::write(&groups, "c0\t0 1 2\nc1\t1 3\n").unwrap();
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
            "--format", "cks2",
        ]))
        .expect("pack succeeds");

        let out = dispatch(&args(&["inspect", "--snapshot", &snap])).expect("inspect succeeds");
        assert!(out.contains("CKS2 snapshot"), "{out}");
        for section in ["permutation", "out-adjacency", "out-offsets", "group-members"] {
            assert!(out.contains(section), "missing {section}:\n{out}");
        }
        assert!(out.contains("offset width      u32"), "{out}");
        assert!(out.contains("adjacency bytes"), "{out}");

        let json = dispatch(&args(&["inspect", "--snapshot", &snap, "--json"]))
            .expect("inspect --json succeeds");
        assert!(json.contains("\"format\":\"CKS2\""), "{json}");
        assert!(json.contains("\"wide\":false"), "{json}");
        assert!(json.contains("\"compressed_adjacency_bytes\":"), "{json}");
        assert!(json.contains("\"nodes\":4"), "{json}");
        assert!(json.contains("\"groups\":2"), "{json}");
    }

    #[test]
    fn thread_validation_is_uniform_across_commands() {
        let edges = tmp("tv.edges");
        let groups = tmp("tv.circles");
        let snap = tmp("tv.cks");
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        fs::write(&groups, "c0\t0 1 2\n").unwrap();
        dispatch(&args(&["pack", "--edges", &edges, "--groups", &groups, "--out", &snap]))
            .expect("pack succeeds");
        // Both thread-taking commands reject 0 and garbage with the
        // shared parser's messages.
        let score_zero = dispatch(&args(&[
            "score", "--edges", &edges, "--groups", &groups, "--threads", "0",
        ]))
        .unwrap_err();
        let serve_zero =
            dispatch(&args(&["serve", "--snapshot", &snap, "--threads", "0"])).unwrap_err();
        assert!(score_zero.contains("at least 1"), "{score_zero}");
        assert_eq!(score_zero, serve_zero);
        let score_garbage = dispatch(&args(&[
            "score", "--edges", &edges, "--groups", &groups, "--threads", "many",
        ]))
        .unwrap_err();
        let serve_garbage =
            dispatch(&args(&["serve", "--snapshot", &snap, "--threads", "many"])).unwrap_err();
        assert!(score_garbage.contains("positive integer"), "{score_garbage}");
        assert_eq!(score_garbage, serve_garbage);
    }

    #[test]
    fn snapshot_rejects_conflicting_undirected_flag_and_double_pack() {
        let edges = tmp("cf.edges");
        let snap = tmp("cf.cks");
        fs::write(&edges, "0 1\n1 2\n").unwrap();
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap])).expect("pack succeeds");
        let err = dispatch(&args(&["characterize", "--edges", &snap, "--undirected"]))
            .unwrap_err();
        assert!(err.contains("directed"), "{err}");
        let err = dispatch(&args(&["pack", "--edges", &snap, "--out", &snap])).unwrap_err();
        assert!(err.contains("already"), "{err}");
    }

    #[test]
    fn undirected_snapshot_roundtrips_through_characterize() {
        let edges = tmp("ud.edges");
        let snap = tmp("ud.cks");
        fs::write(&edges, "0 1\n1 2\n2 0\n2 3\n").unwrap();
        dispatch(&args(&[
            "pack", "--edges", &edges, "--undirected", "--out", &snap,
        ]))
        .expect("pack succeeds");
        // The snapshot carries its directedness; no --undirected needed.
        let from_text = dispatch(&args(&["characterize", "--edges", &edges, "--undirected"]))
            .expect("text characterize succeeds")
            .replace(&edges, "DATA");
        let from_snap = dispatch(&args(&["characterize", "--edges", &snap]))
            .expect("snapshot characterize succeeds")
            .replace(&snap, "DATA");
        assert_eq!(from_text, from_snap);
    }

    #[test]
    fn served_score_table_is_byte_identical_to_offline_score() {
        let edges = tmp("qs.edges");
        let groups = tmp("qs.circles");
        let snap = tmp("qs.cks");
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "21",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");
        let offline = dispatch(&args(&["score", "--edges", &snap, "--all"]))
            .expect("offline score succeeds");

        // Reserve an ephemeral port, then serve on it from a thread.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server = {
            let snap = snap.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                dispatch(&args(&["serve", "--snapshot", &snap, "--listen", &addr]))
            })
        };

        let served = dispatch(&args(&[
            "query", "--addr", &addr, "score-table", "--snapshot", "qs", "--all",
        ]))
        .expect("query succeeds");
        assert_eq!(offline, served, "served table must match the offline command byte-for-byte");

        let health = dispatch(&args(&["query", "--addr", &addr, "health"]))
            .expect("health succeeds");
        assert!(health.contains("\"serving\""), "{health}");
        let listing = dispatch(&args(&["query", "--addr", &addr, "list-snapshots"]))
            .expect("listing succeeds");
        assert!(listing.contains("\"qs\""), "{listing}");

        dispatch(&args(&["query", "--addr", &addr, "shutdown"])).expect("shutdown succeeds");
        let summary = server.join().unwrap().expect("serve exits cleanly");
        assert!(summary.contains("served"), "{summary}");
    }

    #[test]
    fn pack_shards_emits_inspectable_sub_snapshots() {
        let edges = tmp("sh.edges");
        let groups = tmp("sh.circles");
        let snap = tmp("sh.cks");
        for i in 0..2u32 {
            let _ = fs::remove_file(tmp(&format!("sh.shard{i}.cks")));
        }
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "11",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        let out = dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap, "--shards", "2",
        ]))
        .expect("pack --shards succeeds");
        assert!(out.contains("sharding"), "{out}");
        assert!(out.contains("shard 0/2"), "{out}");
        assert!(out.contains("shard 1/2"), "{out}");

        // The parent CRC in the manifest is the CRC of the parent's own
        // CKS1 image, so packing the parent reproduces it.
        dispatch(&args(&["pack", "--edges", &edges, "--groups", &groups, "--out", &snap]))
            .expect("parent pack succeeds");
        let parent_crc =
            circlekit::store::file_crc32(snap.as_ref()).expect("parent snapshot readable");

        let shard0 = snap.replace(".cks", ".shard0.cks");
        let text = dispatch(&args(&["inspect", "--snapshot", &shard0]))
            .expect("inspect succeeds");
        assert!(text.contains("shard             0 of 2"), "{text}");
        assert!(text.contains(&format!("crc32 {parent_crc:#010x}")), "{text}");

        let json = dispatch(&args(&["inspect", "--snapshot", &shard0, "--json"]))
            .expect("inspect --json succeeds");
        let value: serde_json::Value = serde_json::from_str(json.trim()).expect("valid JSON");
        let Some(shard) = circlekit_serve::protocol::wire::get(&value, "shard") else {
            panic!("shard manifest missing from {json}");
        };
        let get = |k| circlekit_serve::protocol::wire::get(shard, k);
        assert_eq!(get("count"), Some(&serde_json::Value::UInt(2)));
        assert_eq!(get("index"), Some(&serde_json::Value::UInt(0)));
        assert_eq!(
            get("parent_crc32"),
            Some(&serde_json::Value::UInt(u64::from(parent_crc)))
        );
        assert!(get("parent_nodes").is_some(), "{json}");
        assert!(get("parent_edges").is_some(), "{json}");
        assert!(get("parent_median_degree").is_some(), "{json}");
        // A plain snapshot reports no shard field at all.
        let json = dispatch(&args(&["inspect", "--snapshot", &snap, "--json"]))
            .expect("inspect succeeds");
        assert!(!json.contains("\"shard\""), "{json}");

        // Shard packing is CKS1-only and the index must be in range.
        let err = dispatch(&args(&[
            "pack", "--edges", &edges, "--out", &snap, "--shards", "2", "--format", "cks2",
        ]))
        .unwrap_err();
        assert!(err.contains("cks1"), "{err}");
        let err = dispatch(&args(&[
            "pack", "--edges", &edges, "--out", &snap, "--shards", "2", "--shard-index", "2",
        ]))
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn shard_count_validation_is_uniform_across_commands() {
        let edges = tmp("sv.edges");
        fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();
        let out = tmp("sv.cks");
        // Both front ends reject 0 and garbage with the shared parser's
        // messages (loadgen shares the same parser by construction).
        let pack_zero = dispatch(&args(&[
            "pack", "--edges", &edges, "--out", &out, "--shards", "0",
        ]))
        .unwrap_err();
        let serve_zero = dispatch(&args(&[
            "serve", "--coordinator", "--shards", "127.0.0.1:1", "--shard-count", "0",
        ]))
        .unwrap_err();
        assert!(pack_zero.contains("at least 1"), "{pack_zero}");
        assert_eq!(pack_zero, serve_zero);
        let pack_garbage = dispatch(&args(&[
            "pack", "--edges", &edges, "--out", &out, "--shards", "many",
        ]))
        .unwrap_err();
        let serve_garbage = dispatch(&args(&[
            "serve", "--coordinator", "--shards", "127.0.0.1:1", "--shard-count", "many",
        ]))
        .unwrap_err();
        assert!(pack_garbage.contains("positive integer"), "{pack_garbage}");
        assert_eq!(pack_garbage, serve_garbage);
        // And the count must match the endpoint list before connecting.
        let err = dispatch(&args(&[
            "serve", "--coordinator", "--shards", "127.0.0.1:1", "--shard-count", "3",
        ]))
        .unwrap_err();
        assert!(err.contains("--shard-count 3 but --shards lists 1"), "{err}");
    }

    #[test]
    fn coordinator_score_table_matches_offline_and_reports_shard_rows() {
        let edges = tmp("co.edges");
        let groups = tmp("co.circles");
        let snap = tmp("co.cks");
        for i in 0..2u32 {
            let _ = fs::remove_file(tmp(&format!("co.shard{i}.cks")));
        }
        dispatch(&args(&[
            "generate", "google+", "--scale", "0.003", "--seed", "23",
            "--edges", &edges, "--groups", &groups,
        ]))
        .expect("generate succeeds");
        dispatch(&args(&["pack", "--edges", &edges, "--groups", &groups, "--out", &snap]))
            .expect("pack succeeds");
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap, "--shards", "2",
        ]))
        .expect("pack --shards succeeds");
        let offline = dispatch(&args(&["score", "--edges", &snap, "--all"]))
            .expect("offline score succeeds");

        // Reserve three ephemeral ports: two shard daemons + coordinator.
        let port = |_: usize| {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let shard_addrs: Vec<String> =
            (0..2).map(|i| format!("127.0.0.1:{}", port(i))).collect();
        let coord_addr = format!("127.0.0.1:{}", port(2));
        let shard_servers: Vec<_> = (0..2)
            .map(|i| {
                let path = snap.replace(".cks", &format!(".shard{i}.cks"));
                let addr = shard_addrs[i].clone();
                std::thread::spawn(move || {
                    dispatch(&args(&["serve", "--snapshot", &path, "--listen", &addr]))
                })
            })
            .collect();
        for addr in &shard_addrs {
            dispatch(&args(&["query", "--addr", addr, "health"])).expect("shard healthy");
        }
        let coordinator = {
            let shards = shard_addrs.join(",");
            let addr = coord_addr.clone();
            std::thread::spawn(move || {
                dispatch(&args(&[
                    "serve", "--coordinator", "--shards", &shards, "--shard-count", "2",
                    "--listen", &addr,
                ]))
            })
        };
        dispatch(&args(&["query", "--addr", &coord_addr, "health"]))
            .expect("coordinator healthy");

        let served = dispatch(&args(&[
            "query", "--addr", &coord_addr, "score-table", "--snapshot", "co", "--all",
        ]))
        .expect("query succeeds");
        assert_eq!(
            offline, served,
            "coordinator table must match the offline command byte-for-byte"
        );

        // `query stats` against a coordinator carries per-shard rows.
        let stats = dispatch(&args(&["query", "--addr", &coord_addr, "stats"]))
            .expect("stats succeeds");
        assert!(stats.contains("\"shards\":[{\"shard\":0,"), "{stats}");
        assert!(stats.contains("\"last_error\":null"), "{stats}");
        let status = dispatch(&args(&["query", "--addr", &coord_addr, "repl-status"]))
            .expect("repl-status succeeds");
        assert!(status.contains("\"role\":\"coordinator\""), "{status}");

        dispatch(&args(&["query", "--addr", &coord_addr, "shutdown"]))
            .expect("coordinator shutdown");
        coordinator.join().unwrap().expect("coordinator exits cleanly");
        for (i, server) in shard_servers.into_iter().enumerate() {
            dispatch(&args(&["query", "--addr", &shard_addrs[i], "shutdown"]))
                .expect("shard shutdown");
            server.join().unwrap().expect("shard exits cleanly");
        }
    }

    #[test]
    fn discover_renders_planted_triangles_deterministically() {
        let edges = tmp("dv.edges");
        // Ego 0 watches 1..=6; alters form two triangles bridged by 3-4.
        fs::write(
            &edges,
            "0 1\n0 2\n0 3\n0 4\n0 5\n0 6\n1 2\n2 3\n1 3\n4 5\n5 6\n4 6\n3 4\n",
        )
        .unwrap();
        let out = dispatch(&args(&[
            "discover", "--edges", &edges, "--ego", "0", "--undirected",
        ]))
        .expect("discover succeeds");
        assert!(out.starts_with("ego 0  seed 2014  alters 6"), "{out}");
        assert!(out.contains("members 1 2 3"), "{out}");
        assert!(out.contains("members 4 5 6"), "{out}");
        // Same seed is byte-stable across thread counts.
        for t in ["1", "2", "5"] {
            let again = dispatch(&args(&[
                "discover", "--edges", &edges, "--ego", "0", "--undirected", "--threads", t,
            ]))
            .expect("discover succeeds");
            assert_eq!(out, again, "--threads {t}");
        }
        let err =
            dispatch(&args(&["discover", "--edges", &edges, "--ego", "99", "--undirected"]))
                .unwrap_err();
        assert!(err.contains("exceeds graph node count"), "{err}");
    }

    #[test]
    fn synth_ego_circles_feeds_eval_and_pack() {
        let edges = tmp("sy.edges");
        let groups = tmp("sy.circles");
        let owners = tmp("sy.owners");
        let snap = tmp("sy.cks");
        let out = dispatch(&args(&[
            "synth", "ego-circles", "google+", "--scale", "0.004", "--seed", "11",
            "--edges", &edges, "--groups", &groups, "--owners", &owners,
        ]))
        .expect("synth ego-circles succeeds");
        assert!(out.contains("wrote edges"), "{out}");
        assert!(out.contains("circle owners"), "{out}");
        let owner_lines = fs::read_to_string(&owners).unwrap().lines().count();
        let circle_lines = fs::read_to_string(&groups).unwrap().lines().count();
        assert_eq!(owner_lines, circle_lines, "one owner per circle");
        assert!(owner_lines > 0);

        // The emitted files pack into a snapshot unchanged.
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");

        // And drive the eval harness: a table with all three methods,
        // plus a threshold gate in both directions.
        let table = dispatch(&args(&[
            "discover", "--eval", "--edges", &edges, "--groups", &groups,
            "--owners", &owners,
        ]))
        .expect("eval succeeds");
        for method in ["discover", "louvain", "girvan-newman"] {
            assert!(table.contains(method), "{table}");
        }
        let gated = dispatch(&args(&[
            "discover", "--eval", "--edges", &edges, "--groups", &groups,
            "--owners", &owners, "--min-f1", "0.0",
        ]))
        .expect("trivial gate passes");
        assert!(gated.contains("f1 gate passed"), "{gated}");
        let err = dispatch(&args(&[
            "discover", "--eval", "--edges", &edges, "--groups", &groups,
            "--owners", &owners, "--min-f1", "1.1",
        ]))
        .unwrap_err();
        assert!(err.contains("below --min-f1"), "{err}");
    }

    #[test]
    fn query_suggest_circles_matches_offline_discover_bytes() {
        let edges = tmp("qd.edges");
        let groups = tmp("qd.circles");
        let owners = tmp("qd.owners");
        let snap = tmp("qd.cks");
        let _ = fs::remove_file(format!("{snap}.ckw"));
        dispatch(&args(&[
            "synth", "ego-circles", "google+", "--scale", "0.004", "--seed", "11",
            "--edges", &edges, "--groups", &groups, "--owners", &owners,
        ]))
        .expect("synth succeeds");
        dispatch(&args(&[
            "pack", "--edges", &edges, "--groups", &groups, "--out", &snap,
        ]))
        .expect("pack succeeds");
        let ego = fs::read_to_string(&owners)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .trim()
            .to_string();
        let offline =
            dispatch(&args(&["discover", "--edges", &snap, "--ego", &ego]))
                .expect("offline discover succeeds");

        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server = {
            let snap = snap.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                dispatch(&args(&["serve", "--snapshot", &snap, "--listen", &addr]))
            })
        };
        let snapshot_id = std::path::Path::new(&snap)
            .file_stem()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        let served = dispatch(&args(&[
            "query", "--addr", &addr, "suggest-circles", "--snapshot", &snapshot_id,
            "--ego", &ego,
        ]))
        .expect("query suggest-circles succeeds");
        assert_eq!(offline, served, "CLI and serve must render identical bytes");

        dispatch(&args(&["query", "--addr", &addr, "shutdown"])).expect("shutdown succeeds");
        server.join().unwrap().expect("serve exits cleanly");
    }

    #[test]
    fn corrupted_snapshot_is_a_structured_cli_error() {
        let edges = tmp("cr.edges");
        let snap = tmp("cr.cks");
        fs::write(&edges, "0 1\n1 2\n").unwrap();
        dispatch(&args(&["pack", "--edges", &edges, "--out", &snap])).expect("pack succeeds");
        let mut bytes = fs::read(&snap).unwrap();
        // First payload byte of the first section (fixed header 32 +
        // section header 16): a guaranteed checksum failure.
        bytes[48] ^= 0xff;
        fs::write(&snap, &bytes).unwrap();
        let err = dispatch(&args(&["score", "--edges", &snap])).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }
}
