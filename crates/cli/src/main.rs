//! `circlekit` — command-line front end for the reproduction library.
//!
//! ```text
//! circlekit generate <google+|twitter|livejournal|orkut|magno>
//!                    [--scale F] [--seed N] --edges FILE [--groups FILE]
//! circlekit score        --edges FILE [--groups FILE] [--undirected] [--all]
//! circlekit characterize --edges FILE [--undirected] [--sources N]
//! circlekit fit-degrees  --edges FILE [--undirected] [--kind in|out|total]
//! circlekit detect       --edges FILE --ego NODE [--min-size N] [--undirected]
//! circlekit pack         --edges FILE [--groups FILE] [--undirected] --out FILE.cks
//! circlekit inspect      --snapshot FILE.cks
//! ```
//!
//! Edge files are SNAP-style whitespace edge lists; group files are
//! SNAP-style circle/community lines (`label<TAB>id id …`). Any `--edges`
//! argument may instead be a CKS1 binary snapshot produced by `pack`
//! (auto-detected by magic); a snapshot carries its own directedness and,
//! when packed with `--groups`, its group collections.
//!
//! Every file-reading command accepts `--on-error fail|skip|report`:
//! `fail` (the default) aborts on the first malformed line, `skip` drops
//! malformed lines and out-of-range group members silently, and `report`
//! does the same but prints an ingest summary first.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
