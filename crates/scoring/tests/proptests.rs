//! Property tests for scoring invariants.

use circlekit_graph::{Graph, GraphBuilder, VertexSet};
use circlekit_scoring::{ParallelScorer, Scorer, ScoringFunction};
use proptest::prelude::*;

const MAX_NODE: u32 = 30;

fn graph_and_set() -> impl Strategy<Value = (Vec<(u32, u32)>, Vec<u32>, bool)> {
    (
        prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 1..150),
        prop::collection::vec(0..MAX_NODE, 0..20),
        any::<bool>(),
    )
}

fn build(edges: Vec<(u32, u32)>, directed: bool) -> Graph {
    let mut b = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
    b.build()
}

proptest! {
    #[test]
    fn bounded_scores_stay_in_unit_interval((edges, picks, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        for f in [
            ScoringFunction::InternalDensity,
            ScoringFunction::Fomd,
            ScoringFunction::Tpr,
            ScoringFunction::Conductance,
            ScoringFunction::MaxOdf,
            ScoringFunction::AvgOdf,
            ScoringFunction::FlakeOdf,
        ] {
            let v = f.score(&stats);
            prop_assert!((0.0..=1.0).contains(&v), "{f} = {v} outside [0,1]");
        }
    }

    #[test]
    fn nonnegative_scores((edges, picks, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        for f in [
            ScoringFunction::EdgesInside,
            ScoringFunction::AverageDegree,
            ScoringFunction::Expansion,
            ScoringFunction::RatioCut,
            ScoringFunction::NormalizedCut,
        ] {
            prop_assert!(f.score(&stats) >= 0.0);
        }
    }

    #[test]
    fn all_scores_finite((edges, picks, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        for f in ScoringFunction::ALL {
            prop_assert!(f.score(&stats).is_finite(), "{f} not finite");
        }
    }

    #[test]
    fn mc_matches_induced_subgraph((edges, picks, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        let sub = g.subgraph(&set).unwrap();
        prop_assert_eq!(stats.m_c, sub.graph().edge_count());
    }

    #[test]
    fn degree_accounting_consistent((edges, picks, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        // Sum of member degrees = 2 m_C + c_C, for both edge conventions.
        let degree_sum: usize = set.iter().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, stats.total_degree());
        prop_assert_eq!(stats.out_degree_sum + stats.in_degree_sum,
            if directed { degree_sum } else { 2 * degree_sum });
    }

    #[test]
    fn boundary_vanishes_on_full_graph((edges, _, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let full: VertexSet = (0..g.node_count() as u32).collect();
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&full);
        prop_assert_eq!(stats.c_c, 0);
        prop_assert_eq!(stats.m_c, g.edge_count());
        prop_assert_eq!(ScoringFunction::Conductance.score(&stats), 0.0);
    }

    #[test]
    fn conductance_complement_symmetry((edges, picks, _) in graph_and_set()) {
        // For undirected graphs, C and V\C share the same boundary.
        let g = build(edges, false);
        let set = VertexSet::from_vec(picks);
        let complement: VertexSet = (0..g.node_count() as u32)
            .filter(|&v| !set.contains(v))
            .collect();
        let mut scorer = Scorer::new(&g);
        let a = scorer.stats(&set);
        let b = scorer.stats(&complement);
        prop_assert_eq!(a.c_c, b.c_c);
        prop_assert_eq!(a.m_c + b.m_c + a.c_c, g.edge_count());
    }

    #[test]
    fn modularity_of_full_graph_matches_null_deficit((edges, _, directed) in graph_and_set()) {
        let g = build(edges, directed);
        prop_assume!(g.edge_count() > 0);
        let full: VertexSet = (0..g.node_count() as u32).collect();
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&full);
        // For the full vertex set the closed-form expectation equals m
        // exactly (undirected: (2m)^2/4m = m; directed: m·m/m = m), so
        // modularity is 0.
        let v = ScoringFunction::Modularity.score(&stats);
        prop_assert!(v.abs() < 1e-9, "modularity of full graph = {v}");
    }

    #[test]
    fn edge_partition_counts_each_edge_once((edges, picks, directed) in graph_and_set()) {
        // Every edge is internal to C, internal to V\C, or crosses the
        // boundary — and c_C counts each crossing edge exactly once, for
        // both edge conventions.
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let complement: VertexSet = (0..g.node_count() as u32)
            .filter(|&v| !set.contains(v))
            .collect();
        let mut scorer = Scorer::new(&g);
        let a = scorer.stats(&set);
        let b = scorer.stats(&complement);
        prop_assert_eq!(a.c_c, b.c_c);
        prop_assert_eq!(a.m_c + b.m_c + a.c_c, g.edge_count());
    }

    #[test]
    fn internal_edges_bounded_by_graph_edges((edges, picks, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        prop_assert!(stats.m_c <= stats.m);
        prop_assert!(stats.m_c <= stats.possible_internal_edges().max(stats.m_c));
        prop_assert_eq!(stats.m, g.edge_count());
    }

    #[test]
    fn odf_ordering_and_bounds((edges, picks, directed) in graph_and_set()) {
        // Each member's out-degree fraction lies in [0, 1], so the mean
        // cannot exceed the max.
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        prop_assert!(stats.avg_odf >= 0.0);
        prop_assert!(stats.avg_odf <= stats.max_odf + 1e-12,
            "avg_odf {} > max_odf {}", stats.avg_odf, stats.max_odf);
        prop_assert!(stats.max_odf <= 1.0);
        prop_assert!((0.0..=1.0).contains(&stats.flake_odf));
    }

    #[test]
    fn fomd_and_tpr_numerators_bounded_by_members((edges, picks, directed) in graph_and_set()) {
        let g = build(edges, directed);
        let set = VertexSet::from_vec(picks);
        let mut scorer = Scorer::new(&g);
        let stats = scorer.stats(&set);
        prop_assert!(stats.above_median_internal <= stats.n_c);
        prop_assert!(stats.in_internal_triangle <= stats.n_c);
        prop_assert_eq!(stats.n_c, set.len());
    }

    #[test]
    fn parallel_scorer_equals_serial(
        (edges, _, directed) in graph_and_set(),
        sets in prop::collection::vec(prop::collection::vec(0..MAX_NODE, 0..10), 0..12),
        threads in 1usize..6,
    ) {
        let g = build(edges, directed);
        let sets: Vec<VertexSet> = sets.into_iter().map(VertexSet::from_vec).collect();
        let mut serial = Scorer::new(&g);
        let expected = serial.score_table(&ScoringFunction::ALL, &sets);
        let parallel = ParallelScorer::with_threads(&g, threads);
        prop_assert_eq!(expected, parallel.score_table(&ScoringFunction::ALL, &sets));
    }

    #[test]
    fn directed_vs_bidirected_scores_agree_on_symmetric_graphs((edges, picks, _) in graph_and_set()) {
        // An undirected graph and its bidirected expansion must produce
        // identical values for the paper's four functions: every count
        // doubles consistently.
        let g = build(edges, false);
        let d = g.to_bidirected();
        let set = VertexSet::from_vec(picks);
        let mut su = Scorer::new(&g);
        let mut sd = Scorer::new(&d);
        let a = su.stats(&set);
        let b = sd.stats(&set);
        prop_assert_eq!(2 * a.m_c, b.m_c);
        prop_assert_eq!(2 * a.c_c, b.c_c);
        let cu = ScoringFunction::Conductance.score(&a);
        let cd = ScoringFunction::Conductance.score(&b);
        prop_assert!((cu - cd).abs() < 1e-12);
        let ru = ScoringFunction::RatioCut.score(&a);
        let rd = ScoringFunction::RatioCut.score(&b);
        prop_assert!((rd - 2.0 * ru).abs() < 1e-12);
    }
}
