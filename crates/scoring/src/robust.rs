//! Panic-isolated, cancellable batch scoring.
//!
//! The plain [`ParallelScorer`] methods poison the whole batch if one
//! worker panics and run to completion no matter how long that takes.
//! The `*_robust` variants here wrap each chunk in
//! [`std::panic::catch_unwind`], retry a panicking chunk once serially
//! (set by set, so a single poisoned set cannot sink its chunk-mates),
//! observe a [`RunControl`] at every per-set checkpoint, and give back a
//! structured [`BatchReport`] naming exactly which sets failed and why.
//!
//! On a clean, uninterrupted run the robust path visits sets in the same
//! order with the same arithmetic as the plain path, so its output is
//! bit-identical to the sequential [`crate::Scorer`] — the determinism
//! contract `tests/fault_injection.rs` leans on.

use crate::{ParallelScorer, ScoreTable, ScoringFunction, SetStats};
use circlekit_graph::{GraphError, Interrupted, RunControl, VertexSet};
use parking_lot::Mutex;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Record of one chunk whose worker panicked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkError {
    /// Index of the chunk within the batch partition.
    pub chunk: usize,
    /// Batch index of the chunk's first set.
    pub first_set: usize,
    /// Number of sets the chunk covered.
    pub set_count: usize,
    /// Panic payload message of the original failure.
    pub message: String,
    /// Whether the serial retry scored every set of the chunk.
    pub recovered: bool,
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk {} (sets {}..{}) panicked: {}{}",
            self.chunk,
            self.first_set,
            self.first_set + self.set_count,
            self.message,
            if self.recovered { " (recovered on serial retry)" } else { "" }
        )
    }
}

/// A set that could not be scored even on the serial retry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetFailure {
    /// Batch index of the failed set.
    pub set: usize,
    /// Why it failed: a validation error or a panic payload.
    pub message: String,
}

impl fmt::Display for SetFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set {}: {}", self.set, self.message)
    }
}

/// Structured outcome of one robust batch run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchReport {
    /// Sets in the input batch.
    pub total_sets: usize,
    /// Sets that produced a score row.
    pub scored_sets: usize,
    /// Chunks whose worker panicked (recovered or not).
    pub chunk_errors: Vec<ChunkError>,
    /// Sets with no score row for a reason other than interruption.
    pub failures: Vec<SetFailure>,
    /// Why the run stopped early, if it did.
    pub interrupted: Option<Interrupted>,
}

impl BatchReport {
    /// Whether every set was scored and the run was not interrupted.
    pub fn is_complete(&self) -> bool {
        self.scored_sets == self.total_sets && self.interrupted.is_none()
    }

    /// Whether the run completed without any panic, failure, or
    /// interruption — the case where the output is bit-identical to the
    /// plain sequential scorer.
    pub fn is_clean(&self) -> bool {
        self.is_complete() && self.chunk_errors.is_empty() && self.failures.is_empty()
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let recovered = self.chunk_errors.iter().filter(|c| c.recovered).count();
        write!(
            f,
            "batch: {}/{} sets scored, {} chunk panics ({} recovered), {} set failures",
            self.scored_sets,
            self.total_sets,
            self.chunk_errors.len(),
            recovered,
            self.failures.len()
        )?;
        if let Some(why) = self.interrupted {
            write!(f, ", stopped early: {why}")?;
        }
        for c in &self.chunk_errors {
            write!(f, "\n  {c}")?;
        }
        for s in &self.failures {
            write!(f, "\n  failed {s}")?;
        }
        Ok(())
    }
}

/// Partial score table of a robust run: one row per input set, `None`
/// where the set was not scored (failed or interrupted).
#[derive(Clone, Debug, PartialEq)]
pub struct RobustBatch {
    /// Per-set score rows, in input order.
    pub rows: Vec<Option<Vec<f64>>>,
    /// What happened during the run.
    pub report: BatchReport,
}

impl RobustBatch {
    /// Assembles a complete [`ScoreTable`] — `None` if any set is missing
    /// its row, in which case the partial `rows` remain available.
    pub fn into_table(self, functions: &[ScoringFunction]) -> Option<ScoreTable> {
        let rows: Option<Vec<Vec<f64>>> = self.rows.into_iter().collect();
        Some(ScoreTable::from_parts(functions.to_vec(), rows?))
    }
}

/// What one worker produced for its chunk.
enum ChunkOutcome<T> {
    /// Every set visited; per-set validation failures inline.
    Done(Vec<Result<T, String>>),
    /// Interrupted after scoring a prefix of the chunk.
    Stopped(Vec<Result<T, String>>, Interrupted),
    /// The worker panicked; the payload message.
    Panicked(String),
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

impl<'g> ParallelScorer<'g> {
    /// Scores one set after validating its members against the graph.
    ///
    /// `index` is the set's batch index, which the fault-injection hook
    /// keys on.
    fn eval_checked<T, F>(&self, index: usize, set: &VertexSet, eval: &F) -> Result<T, String>
    where
        F: Fn(&SetStats) -> T,
    {
        let node_count = self.graph().node_count();
        if set.as_slice().last().is_some_and(|&max| (max as usize) >= node_count) {
            let node = set
                .iter()
                .find(|&v| (v as usize) >= node_count)
                .expect("max member is out of range");
            return Err(GraphError::NodeOutOfRange { node, node_count }.to_string());
        }
        #[cfg(feature = "fault-inject")]
        crate::fault::maybe_panic(index);
        #[cfg(not(feature = "fault-inject"))]
        let _ = index;
        Ok(eval(&SetStats::compute(self.graph(), set, self.median_degree())))
    }

    /// Robust analogue of the internal parallel map: panic-isolating,
    /// cancellable, and per-set validating.
    fn map_stats_robust<T, F>(
        &self,
        sets: &[VertexSet],
        eval: F,
        control: &RunControl,
        stage: &str,
    ) -> (Vec<Option<T>>, BatchReport)
    where
        T: Send,
        F: Fn(&SetStats) -> T + Sync,
    {
        let mut report = BatchReport { total_sets: sets.len(), ..Default::default() };
        if sets.is_empty() {
            return (Vec::new(), report);
        }
        let chunk_size = sets.len().div_ceil(self.threads()).max(1);
        let chunk_count = sets.len().div_ceil(chunk_size);
        let slots: Mutex<Vec<Option<ChunkOutcome<T>>>> =
            Mutex::new((0..chunk_count).map(|_| None).collect());
        let done = std::sync::atomic::AtomicUsize::new(0);
        let (slots_ref, done_ref, eval_ref) = (&slots, &done, &eval);
        crossbeam::scope(|scope| {
            for (chunk_index, chunk) in sets.chunks(chunk_size).enumerate() {
                let first_set = chunk_index * chunk_size;
                scope.spawn(move |_| {
                    let outcome = match catch_unwind(AssertUnwindSafe(|| {
                        let mut out = Vec::with_capacity(chunk.len());
                        for (offset, set) in chunk.iter().enumerate() {
                            if let Err(why) = control.check() {
                                return ChunkOutcome::Stopped(out, why);
                            }
                            out.push(self.eval_checked(first_set + offset, set, eval_ref));
                        }
                        ChunkOutcome::Done(out)
                    })) {
                        Ok(outcome) => outcome,
                        Err(payload) => ChunkOutcome::Panicked(panic_message(payload.as_ref())),
                    };
                    slots_ref.lock()[chunk_index] = Some(outcome);
                    let finished = done_ref.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                    control.report(stage, finished, chunk_count);
                });
            }
        })
        .expect("robust scoring workers never propagate panics");

        let mut rows: Vec<Option<T>> = (0..sets.len()).map(|_| None).collect();
        for (chunk_index, slot) in slots.into_inner().into_iter().enumerate() {
            let first_set = chunk_index * chunk_size;
            let chunk = &sets[first_set..(first_set + chunk_size).min(sets.len())];
            let place = |rows: &mut Vec<Option<T>>,
                         report: &mut BatchReport,
                         results: Vec<Result<T, String>>| {
                for (offset, result) in results.into_iter().enumerate() {
                    match result {
                        Ok(v) => rows[first_set + offset] = Some(v),
                        Err(message) => {
                            report.failures.push(SetFailure { set: first_set + offset, message })
                        }
                    }
                }
            };
            match slot.expect("every chunk produced an outcome") {
                ChunkOutcome::Done(results) => place(&mut rows, &mut report, results),
                ChunkOutcome::Stopped(results, why) => {
                    place(&mut rows, &mut report, results);
                    report.interrupted.get_or_insert(why);
                }
                ChunkOutcome::Panicked(message) => {
                    // Serial per-set retry: a single poisoned set must not
                    // sink its chunk-mates.
                    let mut recovered = true;
                    for (offset, set) in chunk.iter().enumerate() {
                        let index = first_set + offset;
                        if let Err(why) = control.check() {
                            report.interrupted.get_or_insert(why);
                            recovered = false;
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| {
                            self.eval_checked(index, set, eval_ref)
                        })) {
                            Ok(Ok(v)) => rows[index] = Some(v),
                            Ok(Err(message)) => {
                                report.failures.push(SetFailure { set: index, message });
                                recovered = false;
                            }
                            Err(payload) => {
                                report.failures.push(SetFailure {
                                    set: index,
                                    message: panic_message(payload.as_ref()),
                                });
                                recovered = false;
                            }
                        }
                    }
                    report.chunk_errors.push(ChunkError {
                        chunk: chunk_index,
                        first_set,
                        set_count: chunk.len(),
                        message,
                        recovered,
                    });
                }
            }
        }
        report.scored_sets = rows.iter().filter(|r| r.is_some()).count();
        report.chunk_errors.sort_by_key(|c| c.chunk);
        report.failures.sort_by_key(|f| f.set);
        (rows, report)
    }

    /// Robust analogue of [`ParallelScorer::score_sets`]: panic-isolated,
    /// cancellable via `control`, with out-of-range members rejected
    /// per set instead of panicking the batch.
    pub fn score_sets_robust(
        &self,
        function: ScoringFunction,
        sets: &[VertexSet],
        control: &RunControl,
    ) -> (Vec<Option<f64>>, BatchReport) {
        self.map_stats_robust(sets, |stats| function.score(stats), control, "score_sets")
    }

    /// Robust analogue of [`ParallelScorer::score_table`]. On a clean run
    /// ([`BatchReport::is_clean`]), `RobustBatch::into_table` yields a
    /// table bit-identical to the plain sequential scorer's.
    pub fn score_table_robust(
        &self,
        functions: &[ScoringFunction],
        sets: &[VertexSet],
        control: &RunControl,
    ) -> RobustBatch {
        let (rows, report) = self.map_stats_robust(
            sets,
            |stats| functions.iter().map(|f| f.score(stats)).collect::<Vec<f64>>(),
            control,
            "score_table",
        );
        RobustBatch { rows, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scorer;
    use circlekit_graph::Graph;

    fn fixture() -> Graph {
        Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (1, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        )
    }

    fn batch() -> Vec<VertexSet> {
        vec![
            (0u32..3).collect(),
            (3u32..6).collect(),
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::from_vec(vec![0, 5]),
            VertexSet::new(),
            (0u32..6).collect(),
        ]
    }

    #[test]
    fn clean_run_matches_plain_scorer_bit_for_bit() {
        let g = fixture();
        let sets = batch();
        let mut serial = Scorer::new(&g);
        let expected = serial.score_table(&ScoringFunction::ALL, &sets);
        for threads in [1usize, 2, 5] {
            let scorer = ParallelScorer::with_threads(&g, threads);
            let robust =
                scorer.score_table_robust(&ScoringFunction::ALL, &sets, &RunControl::new());
            assert!(robust.report.is_clean(), "{}", robust.report);
            let table = robust.into_table(&ScoringFunction::ALL).unwrap();
            assert_eq!(expected, table, "threads={threads}");
        }
    }

    #[test]
    fn out_of_range_set_fails_alone_not_the_batch() {
        let g = fixture(); // 6 nodes
        let sets = vec![
            (0u32..3).collect::<VertexSet>(),
            VertexSet::from_vec(vec![2, 99]),
            (3u32..6).collect::<VertexSet>(),
        ];
        let scorer = ParallelScorer::with_threads(&g, 2);
        let (rows, report) =
            scorer.score_sets_robust(ScoringFunction::EdgesInside, &sets, &RunControl::new());
        assert_eq!(rows[0], Some(3.0));
        assert_eq!(rows[1], None);
        assert_eq!(rows[2], Some(3.0));
        assert_eq!(report.scored_sets, 2);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].set, 1);
        assert!(report.failures[0].message.contains("node 99 out of range"));
        assert!(report.chunk_errors.is_empty()); // validation, not a panic
        assert!(!report.is_complete());
        assert!(report.interrupted.is_none());
    }

    #[test]
    fn cancelled_run_returns_partial_rows_and_says_why() {
        let g = fixture();
        let sets = batch();
        let scorer = ParallelScorer::with_threads(&g, 2);
        let control = RunControl::new();
        control.cancel_flag().cancel(); // cancelled before the run starts
        let robust = scorer.score_table_robust(&ScoringFunction::PAPER, &sets, &control);
        assert_eq!(robust.report.interrupted, Some(Interrupted::Cancelled));
        assert_eq!(robust.report.scored_sets, 0);
        assert!(robust.rows.iter().all(|r| r.is_none()));
        assert!(robust.into_table(&ScoringFunction::PAPER).is_none());
    }

    #[test]
    fn elapsed_deadline_stops_the_batch() {
        let g = fixture();
        let sets = batch();
        let scorer = ParallelScorer::with_threads(&g, 3);
        let control = RunControl::new().with_deadline(std::time::Duration::ZERO);
        let (rows, report) =
            scorer.score_sets_robust(ScoringFunction::Conductance, &sets, &control);
        assert_eq!(report.interrupted, Some(Interrupted::DeadlineExceeded));
        assert!(rows.iter().all(|r| r.is_none()));
        assert!(!report.is_complete());
    }

    #[test]
    fn progress_reports_cover_every_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let g = fixture();
        let sets = batch();
        let seen = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&seen);
        let control =
            RunControl::new().with_progress(move |_| { sink.fetch_add(1, Ordering::SeqCst); });
        let scorer = ParallelScorer::with_threads(&g, 3);
        let robust = scorer.score_table_robust(&ScoringFunction::PAPER, &sets, &control);
        assert!(robust.report.is_clean());
        assert_eq!(seen.load(Ordering::SeqCst), 3); // one report per chunk
    }

    #[test]
    fn empty_batch_is_clean_and_empty() {
        let g = fixture();
        let scorer = ParallelScorer::with_threads(&g, 4);
        let robust = scorer.score_table_robust(&ScoringFunction::ALL, &[], &RunControl::new());
        assert!(robust.rows.is_empty());
        assert!(robust.report.is_clean());
        assert_eq!(robust.into_table(&ScoringFunction::ALL).unwrap().set_count(), 0);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_panic_is_caught_retried_and_bit_identical() {
        let g = fixture();
        let sets = batch();
        let mut serial = Scorer::new(&g);
        let expected = serial.score_table(&ScoringFunction::ALL, &sets);
        let scorer = ParallelScorer::with_threads(&g, 2);

        // One-shot fault: the chunk panics, the serial retry succeeds, and
        // the final table is bit-identical to the clean run.
        crate::fault::arm_set_panic(1, false);
        let robust = scorer.score_table_robust(&ScoringFunction::ALL, &sets, &RunControl::new());
        crate::fault::disarm();
        assert_eq!(robust.report.chunk_errors.len(), 1, "{}", robust.report);
        assert!(robust.report.chunk_errors[0].recovered);
        assert!(robust.report.failures.is_empty());
        assert_eq!(robust.into_table(&ScoringFunction::ALL).unwrap(), expected);

        // Sticky fault: the set is surfaced as a failure, its chunk-mates
        // still score, the process never aborts.
        crate::fault::arm_set_panic(1, true);
        let robust = scorer.score_table_robust(&ScoringFunction::ALL, &sets, &RunControl::new());
        crate::fault::disarm();
        assert_eq!(robust.report.failures.len(), 1);
        assert_eq!(robust.report.failures[0].set, 1);
        assert!(robust.rows[1].is_none());
        assert_eq!(robust.report.scored_sets, sets.len() - 1);
        assert_eq!(robust.rows[0].as_deref(), Some(expected.row(0)));
    }

    #[test]
    fn report_display_names_failures() {
        let report = BatchReport {
            total_sets: 4,
            scored_sets: 3,
            chunk_errors: vec![ChunkError {
                chunk: 1,
                first_set: 2,
                set_count: 2,
                message: "boom".into(),
                recovered: true,
            }],
            failures: vec![SetFailure { set: 3, message: "bad id".into() }],
            interrupted: Some(Interrupted::Cancelled),
        };
        let text = report.to_string();
        assert!(text.contains("3/4 sets scored"), "{text}");
        assert!(text.contains("1 chunk panics (1 recovered)"), "{text}");
        assert!(text.contains("chunk 1 (sets 2..4) panicked: boom"), "{text}");
        assert!(text.contains("failed set 3: bad id"), "{text}");
        assert!(text.contains("stopped early: run cancelled"), "{text}");
    }
}
