//! The scoring-function catalogue.

use crate::SetStats;
use std::fmt;

/// The Yang–Leskovec taxonomy of community scoring functions, which the
/// paper uses to pick one representative function per group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Category {
    /// Functions of the internal edge structure only.
    Internal,
    /// Functions of the boundary only.
    External,
    /// Functions combining internal and external connectivity.
    Combined,
    /// Functions comparing against a network null model.
    ModelBased,
}

/// A community scoring function `f(C)`.
///
/// [`ScoringFunction::PAPER`] lists the four functions evaluated in the
/// paper (equations 1–4); [`ScoringFunction::ALL`] is the complete
/// 13-function Yang–Leskovec suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum ScoringFunction {
    /// `m_C / possible`: fraction of realised internal edges.
    InternalDensity,
    /// `m_C`: raw internal edge count.
    EdgesInside,
    /// Eq. (1): `2 m_C / n_C` — the paper's internal-connectivity choice.
    AverageDegree,
    /// Fraction Over Median Degree: members whose internal degree exceeds
    /// the graph's median degree.
    Fomd,
    /// Triangle Participation Ratio: members in an internal triangle.
    Tpr,
    /// `c_C / n_C`: boundary edges per member.
    Expansion,
    /// Eq. (2): `c_C / (n_C (n - n_C))` — the paper's "Ratio Cut".
    RatioCut,
    /// Eq. (3): `c_C / (2 m_C + c_C)` — the paper's combined choice.
    Conductance,
    /// `c_C/(2 m_C + c_C) + c_C/(2 (m - m_C) + c_C)`.
    NormalizedCut,
    /// Maximum over members of the out-fraction of their edges.
    MaxOdf,
    /// Mean over members of the out-fraction of their edges.
    AvgOdf,
    /// Fraction of members with more external than internal edges.
    FlakeOdf,
    /// Eq. (4): `(m_C - E(m_C)) / (2m)` with a degree-preserving null
    /// model (closed-form expectation; see
    /// [`ScoringFunction::modularity_with_expectation`] for the sampled
    /// variant).
    Modularity,
}

impl ScoringFunction {
    /// All thirteen scoring functions, in taxonomy order.
    pub const ALL: [ScoringFunction; 13] = [
        ScoringFunction::InternalDensity,
        ScoringFunction::EdgesInside,
        ScoringFunction::AverageDegree,
        ScoringFunction::Fomd,
        ScoringFunction::Tpr,
        ScoringFunction::Expansion,
        ScoringFunction::RatioCut,
        ScoringFunction::Conductance,
        ScoringFunction::NormalizedCut,
        ScoringFunction::MaxOdf,
        ScoringFunction::AvgOdf,
        ScoringFunction::FlakeOdf,
        ScoringFunction::Modularity,
    ];

    /// The four functions the paper evaluates (equations 1–4), one per
    /// [`Category`].
    pub const PAPER: [ScoringFunction; 4] = [
        ScoringFunction::AverageDegree,
        ScoringFunction::RatioCut,
        ScoringFunction::Conductance,
        ScoringFunction::Modularity,
    ];

    /// The taxonomy group of this function.
    pub fn category(self) -> Category {
        use ScoringFunction::*;
        match self {
            InternalDensity | EdgesInside | AverageDegree | Fomd | Tpr => Category::Internal,
            Expansion | RatioCut => Category::External,
            Conductance | NormalizedCut | MaxOdf | AvgOdf | FlakeOdf => Category::Combined,
            Modularity => Category::ModelBased,
        }
    }

    /// A stable human-readable name (used in table/figure output).
    pub fn name(self) -> &'static str {
        use ScoringFunction::*;
        match self {
            InternalDensity => "internal-density",
            EdgesInside => "edges-inside",
            AverageDegree => "average-degree",
            Fomd => "fomd",
            Tpr => "tpr",
            Expansion => "expansion",
            RatioCut => "ratio-cut",
            Conductance => "conductance",
            NormalizedCut => "normalized-cut",
            MaxOdf => "max-odf",
            AvgOdf => "avg-odf",
            FlakeOdf => "flake-odf",
            Modularity => "modularity",
        }
    }

    /// Resolves the stable kebab-case name back to the function — the
    /// inverse of [`ScoringFunction::name`], used by wire protocols and
    /// CLI arguments.
    pub fn from_name(name: &str) -> Option<ScoringFunction> {
        ScoringFunction::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Whether *low* values indicate a well-pronounced community (true for
    /// every external/combined function except the raw internal ones).
    pub fn lower_is_better(self) -> bool {
        use ScoringFunction::*;
        matches!(
            self,
            Expansion | RatioCut | Conductance | NormalizedCut | MaxOdf | AvgOdf | FlakeOdf
        )
    }

    /// Evaluates the function on precomputed [`SetStats`].
    ///
    /// Degenerate sets score `0.0` where the definition would divide by
    /// zero (e.g. an empty set, or conductance of a set with no edges at
    /// all).
    pub fn score(self, s: &SetStats) -> f64 {
        use ScoringFunction::*;
        let n_c = s.n_c as f64;
        let m_c = s.m_c as f64;
        let c_c = s.c_c as f64;
        match self {
            InternalDensity => {
                let possible = s.possible_internal_edges();
                ratio(m_c, possible as f64)
            }
            EdgesInside => m_c,
            AverageDegree => ratio(2.0 * m_c, n_c),
            Fomd => ratio(s.above_median_internal as f64, n_c),
            Tpr => ratio(s.in_internal_triangle as f64, n_c),
            Expansion => ratio(c_c, n_c),
            RatioCut => ratio(c_c, n_c * (s.n as f64 - n_c)),
            Conductance => ratio(c_c, 2.0 * m_c + c_c),
            NormalizedCut => {
                let rest = 2.0 * (s.m as f64 - m_c) + c_c;
                ratio(c_c, 2.0 * m_c + c_c) + ratio(c_c, rest)
            }
            MaxOdf => s.max_odf,
            AvgOdf => s.avg_odf,
            FlakeOdf => s.flake_odf,
            Modularity => {
                Self::modularity_with_expectation(s, s.expected_internal_edges())
            }
        }
    }

    /// Modularity (eq. 4) with an explicit null-model expectation
    /// `E(m_C)`, e.g. one measured on sampled Viger–Latapy random graphs
    /// (see `circlekit-nullmodel`). Returns `0.0` for an edgeless graph.
    pub fn modularity_with_expectation(s: &SetStats, expected_mc: f64) -> f64 {
        if s.m == 0 {
            return 0.0;
        }
        (s.m_c as f64 - expected_mc) / (2.0 * s.m as f64)
    }
}

/// `a / b`, defined as `0.0` when `b == 0`.
fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

impl fmt::Display for ScoringFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Internal => "internal",
            Category::External => "external",
            Category::Combined => "combined",
            Category::ModelBased => "model-based",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scorer;
    use circlekit_graph::{Graph, VertexSet};

    /// 4-clique {0..3} + tail 3-4, 4-5: n=6, m=8.
    fn fixture() -> (Graph, VertexSet) {
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        );
        (g, (0u32..4).collect())
    }

    fn stats() -> SetStats {
        let (g, set) = fixture();
        let mut scorer = Scorer::new(&g);
        scorer.stats(&set)
    }

    #[test]
    fn paper_equation_1_average_degree() {
        assert_eq!(ScoringFunction::AverageDegree.score(&stats()), 3.0);
    }

    #[test]
    fn paper_equation_2_ratio_cut() {
        // c_C=1, n_C=4, n=6: 1 / (4*2) = 0.125
        assert!((ScoringFunction::RatioCut.score(&stats()) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn paper_equation_3_conductance() {
        // 1 / (12 + 1)
        assert!((ScoringFunction::Conductance.score(&stats()) - 1.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn paper_equation_4_modularity_closed_form() {
        // (m_C - E) / 2m with E = 169/32, m_C = 6, m = 8.
        let expected = (6.0 - 169.0 / 32.0) / 16.0;
        assert!((ScoringFunction::Modularity.score(&stats()) - expected).abs() < 1e-12);
    }

    #[test]
    fn modularity_with_sampled_expectation() {
        let s = stats();
        let v = ScoringFunction::modularity_with_expectation(&s, 6.0);
        assert_eq!(v, 0.0); // observed equals expectation
        assert!(ScoringFunction::modularity_with_expectation(&s, 2.0) > 0.0);
    }

    #[test]
    fn internal_density_of_clique_is_one() {
        assert_eq!(ScoringFunction::InternalDensity.score(&stats()), 1.0);
    }

    #[test]
    fn edges_inside_counts_mc() {
        assert_eq!(ScoringFunction::EdgesInside.score(&stats()), 6.0);
    }

    #[test]
    fn tpr_of_clique_is_one() {
        assert_eq!(ScoringFunction::Tpr.score(&stats()), 1.0);
    }

    #[test]
    fn expansion_counts_boundary_per_member() {
        assert_eq!(ScoringFunction::Expansion.score(&stats()), 0.25);
    }

    #[test]
    fn normalized_cut_adds_complement_term() {
        // c=1, 2m_C+c=13, 2(m-m_C)+c = 5: 1/13 + 1/5.
        let v = ScoringFunction::NormalizedCut.score(&stats());
        assert!((v - (1.0 / 13.0 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn odf_functions_delegate_to_stats() {
        let s = stats();
        assert_eq!(ScoringFunction::MaxOdf.score(&s), s.max_odf);
        assert_eq!(ScoringFunction::AvgOdf.score(&s), s.avg_odf);
        assert_eq!(ScoringFunction::FlakeOdf.score(&s), s.flake_odf);
    }

    #[test]
    fn categories_partition_all_functions() {
        let mut counts = std::collections::HashMap::new();
        for f in ScoringFunction::ALL {
            *counts.entry(f.category()).or_insert(0) += 1;
        }
        assert_eq!(counts[&Category::Internal], 5);
        assert_eq!(counts[&Category::External], 2);
        assert_eq!(counts[&Category::Combined], 5);
        assert_eq!(counts[&Category::ModelBased], 1);
    }

    #[test]
    fn paper_selection_covers_each_category_once() {
        let cats: Vec<Category> = ScoringFunction::PAPER.iter().map(|f| f.category()).collect();
        assert_eq!(
            cats,
            vec![
                Category::Internal,
                Category::External,
                Category::Combined,
                Category::ModelBased
            ]
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ScoringFunction::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn degenerate_sets_score_zero_not_nan() {
        let (g, _) = fixture();
        let mut scorer = Scorer::new(&g);
        let empty = scorer.stats(&VertexSet::new());
        for f in ScoringFunction::ALL {
            let v = f.score(&empty);
            assert!(v.is_finite(), "{f} produced a non-finite score on empty set");
        }
        // Full-graph set: Ratio Cut denominator n_C(n - n_C) is zero.
        let full: VertexSet = (0u32..6).collect();
        let s = scorer.stats(&full);
        assert_eq!(ScoringFunction::RatioCut.score(&s), 0.0);
    }
}
