//! Parallel batch scoring: [`ParallelScorer`] fans vertex-set batches out
//! over scoped worker threads.
//!
//! [`SetStats`] computation is independent per set and the graph is only
//! read, so a batch can be partitioned into contiguous chunks and each
//! chunk evaluated on its own thread. Results are written into a
//! per-chunk slot and stitched back together in input order, making the
//! output *bit-identical* to the sequential [`Scorer`] path for any
//! thread count — the property `tests/parallel_equivalence.rs` pins down.
//!
//! ```
//! use circlekit_graph::{Graph, VertexSet};
//! use circlekit_scoring::{ParallelScorer, Scorer, ScoringFunction};
//!
//! let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
//! let sets: Vec<VertexSet> = vec![(0u32..3).collect(), (2u32..4).collect()];
//! let parallel = ParallelScorer::with_threads(&g, 2);
//! let serial = Scorer::new(&g).score_sets(ScoringFunction::Conductance, &sets);
//! assert_eq!(parallel.score_sets(ScoringFunction::Conductance, &sets), serial);
//! ```

use crate::set_stats::median_degree;
use crate::{ScoreTable, ScoringFunction, SetStats};
use circlekit_graph::{Graph, VertexSet};
use parking_lot::Mutex;

/// Number of worker threads to use when none is requested: the machine's
/// available parallelism (1 if that cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `--threads` command-line value: every front end (`score`,
/// `reproduce`, `serve`, …) accepts the same grammar and produces the
/// same diagnostics.
///
/// # Errors
///
/// A user-facing message for non-numeric input and for `0` (a scorer
/// cannot run with zero workers).
pub fn parse_thread_count(value: &str) -> Result<usize, String> {
    let n: usize = value
        .trim()
        .parse()
        .map_err(|_| format!("--threads expects a positive integer, got {value:?}"))?;
    if n == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    Ok(n)
}

/// Scores vertex-set batches against a fixed graph on a pool of scoped
/// worker threads.
///
/// The batch is split into `threads` contiguous chunks (the last possibly
/// shorter); chunk boundaries depend only on the batch length and the
/// thread count, so the partition — and therefore the output — is
/// deterministic. Scores are pure functions of per-set statistics, so the
/// result equals the sequential [`Scorer`] output exactly, not just
/// approximately.
#[derive(Debug)]
pub struct ParallelScorer<'g> {
    graph: &'g Graph,
    median_degree: f64,
    threads: usize,
}

impl<'g> ParallelScorer<'g> {
    /// Creates a parallel scorer using [`default_threads`] workers.
    pub fn new(graph: &'g Graph) -> ParallelScorer<'g> {
        ParallelScorer::with_threads(graph, default_threads())
    }

    /// Creates a parallel scorer with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(graph: &'g Graph, threads: usize) -> ParallelScorer<'g> {
        assert!(threads > 0, "need at least one thread");
        ParallelScorer {
            graph,
            median_degree: median_degree(graph),
            threads,
        }
    }

    /// Reuses an already-computed graph median instead of recomputing it.
    ///
    /// The median must be the value [`Scorer::median_degree`] /
    /// [`ParallelScorer::median_degree`] would report for `graph`;
    /// long-lived services precompute it once at snapshot-load time so
    /// every request scores with exactly the offline scorer's inputs.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    ///
    /// [`Scorer::median_degree`]: crate::Scorer::median_degree
    pub fn with_graph_median(
        graph: &'g Graph,
        median_degree: f64,
        threads: usize,
    ) -> ParallelScorer<'g> {
        assert!(threads > 0, "need at least one thread");
        ParallelScorer {
            graph,
            median_degree,
            threads,
        }
    }

    /// The graph this scorer evaluates against.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The graph-wide median total degree (FOMD's threshold).
    pub fn median_degree(&self) -> f64 {
        self.median_degree
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps every set through `SetStats::compute` + `eval`, fanning chunks
    /// out over the workers and reassembling results in input order.
    fn map_stats<T, F>(&self, sets: &[VertexSet], eval: F) -> Vec<T>
    where
        T: Send,
        F: Fn(SetStats) -> T + Sync,
    {
        if sets.is_empty() {
            return Vec::new();
        }
        let chunk_size = sets.len().div_ceil(self.threads).max(1);
        let chunk_count = sets.len().div_ceil(chunk_size);
        // One slot per chunk: workers finish in arbitrary order, the slot
        // index restores input order.
        let slots: Mutex<Vec<Option<Vec<T>>>> =
            Mutex::new((0..chunk_count).map(|_| None).collect());
        let graph = self.graph;
        let median = self.median_degree;
        let eval = &eval;
        let slots_ref = &slots;
        crossbeam::scope(|scope| {
            for (index, chunk) in sets.chunks(chunk_size).enumerate() {
                scope.spawn(move |_| {
                    let out: Vec<T> = chunk
                        .iter()
                        .map(|set| eval(SetStats::compute(graph, set, median)))
                        .collect();
                    slots_ref.lock()[index] = Some(out);
                });
            }
        })
        .expect("scoring worker panicked");
        slots
            .into_inner()
            .into_iter()
            .flat_map(|slot| slot.expect("every chunk was evaluated"))
            .collect()
    }

    /// Computes the full [`SetStats`] of every set, in input order.
    ///
    /// # Panics
    ///
    /// Panics if a set contains an id `>= graph.node_count()`.
    pub fn stats_batch(&self, sets: &[VertexSet]) -> Vec<SetStats> {
        self.map_stats(sets, |stats| stats)
    }

    /// Evaluates one function over many sets, returning scores in input
    /// order — one column of the paper's Figures 5–6.
    pub fn score_sets(&self, function: ScoringFunction, sets: &[VertexSet]) -> Vec<f64> {
        self.map_stats(sets, |stats| function.score(&stats))
    }

    /// Evaluates many functions over many sets in one pass per set.
    pub fn score_table(&self, functions: &[ScoringFunction], sets: &[VertexSet]) -> ScoreTable {
        let rows = self.map_stats(sets, |stats| {
            functions.iter().map(|f| f.score(&stats)).collect::<Vec<f64>>()
        });
        ScoreTable::from_parts(functions.to_vec(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scorer;

    fn fixture() -> Graph {
        Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (1, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        )
    }

    fn batch() -> Vec<VertexSet> {
        vec![
            (0u32..3).collect(),
            (3u32..6).collect(),
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::from_vec(vec![0, 5]),
            VertexSet::new(),
            (0u32..6).collect(),
        ]
    }

    #[test]
    fn matches_serial_for_every_function_and_thread_count() {
        let g = fixture();
        let sets = batch();
        let mut serial = Scorer::new(&g);
        for threads in [1usize, 2, 3, 5, 16] {
            let parallel = ParallelScorer::with_threads(&g, threads);
            for f in ScoringFunction::ALL {
                let expected = serial.score_sets(f, &sets);
                let got = parallel.score_sets(f, &sets);
                // Bit-identical, so exact comparison is intended.
                assert_eq!(expected, got, "{f} at {threads} threads");
            }
        }
    }

    #[test]
    fn table_matches_serial() {
        let g = fixture();
        let sets = batch();
        let mut serial = Scorer::new(&g);
        let expected = serial.score_table(&ScoringFunction::ALL, &sets);
        let parallel = ParallelScorer::with_threads(&g, 4);
        assert_eq!(expected, parallel.score_table(&ScoringFunction::ALL, &sets));
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let g = fixture();
        let parallel = ParallelScorer::with_threads(&g, 3);
        assert!(parallel.score_sets(ScoringFunction::Conductance, &[]).is_empty());
        assert_eq!(parallel.score_table(&ScoringFunction::PAPER, &[]).set_count(), 0);
        assert!(parallel.stats_batch(&[]).is_empty());
    }

    #[test]
    fn more_threads_than_sets_is_fine() {
        let g = fixture();
        let sets = vec![(0u32..3).collect::<VertexSet>()];
        let parallel = ParallelScorer::with_threads(&g, 64);
        assert_eq!(parallel.score_sets(ScoringFunction::EdgesInside, &sets), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let g = fixture();
        ParallelScorer::with_threads(&g, 0);
    }

    #[test]
    fn default_constructor_uses_available_parallelism() {
        let g = fixture();
        let parallel = ParallelScorer::new(&g);
        assert!(parallel.threads() >= 1);
        assert_eq!(parallel.threads(), default_threads());
        assert!(parallel.median_degree() > 0.0);
        assert_eq!(parallel.graph().node_count(), 6);
    }
}
