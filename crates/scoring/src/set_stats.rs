//! [`SetStats`]: the sufficient statistics of a vertex set within a graph.

use circlekit_graph::{AdjacencyAccess, Graph, GraphBuilder, NodeId, VertexSet};
use circlekit_metrics::triangles_per_node;

/// The quantities of the paper's Table I (and the extra ones needed by the
/// full Yang–Leskovec suite), computed for one vertex set `C` in a graph
/// `G(V, E)`.
///
/// Edge-count conventions follow the host graph: for directed graphs
/// `m`, `m_c` and `c_c` count *arcs* (a reciprocated pair counts twice);
/// for undirected graphs they count undirected edges. The paper's §IV-B
/// robustness check quantifies the impact of this convention (≈ 2.38 %).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SetStats {
    /// `n`: vertices in the graph.
    pub n: usize,
    /// `m`: edges in the graph.
    pub m: usize,
    /// Whether the host graph is directed.
    pub directed: bool,
    /// `n_C`: vertices in the set.
    pub n_c: usize,
    /// `m_C`: edges with both endpoints in the set.
    pub m_c: usize,
    /// `c_C`: edges crossing the set boundary (either orientation).
    pub c_c: usize,
    /// Sum of out-degrees `d_out(v)` over members (equals the total-degree
    /// sum for undirected graphs).
    pub out_degree_sum: usize,
    /// Sum of in-degrees `d_in(v)` over members (equals the total-degree
    /// sum for undirected graphs).
    pub in_degree_sum: usize,
    /// Members whose *internal* degree exceeds the graph-wide median total
    /// degree (numerator of FOMD).
    pub above_median_internal: usize,
    /// Members participating in at least one triangle inside the set
    /// (numerator of TPR).
    pub in_internal_triangle: usize,
    /// Maximum over members of the fraction of a member's edges leaving the
    /// set (Max-ODF).
    pub max_odf: f64,
    /// Mean over members of the fraction of edges leaving the set
    /// (Avg-ODF).
    pub avg_odf: f64,
    /// Fraction of members with more edges leaving the set than staying
    /// inside (Flake-ODF).
    pub flake_odf: f64,
}

impl SetStats {
    /// Computes the statistics of `set` within `graph`.
    ///
    /// `median_degree` must be the median of `graph.degree(v)` over all
    /// nodes — precompute it once per graph (or use
    /// [`Scorer`](crate::Scorer), which does so for you).
    ///
    /// # Panics
    ///
    /// Panics if `set` contains a node id `>= graph.node_count()`.
    pub fn compute(graph: &Graph, set: &VertexSet, median_degree: f64) -> SetStats {
        match SetStats::compute_access(graph, set, median_degree) {
            Ok(stats) => stats,
            Err(e) => match e {},
        }
    }

    /// Computes the statistics of `set` over any [`AdjacencyAccess`]
    /// backing — an in-memory [`Graph`], or a compressed mmap snapshot
    /// view that decodes adjacency on demand.
    ///
    /// [`SetStats::compute`] delegates here with the [`Graph`] impl, so
    /// every backing runs the *same* tallying loop over the *same*
    /// integer sequences: results are bit-identical across backings by
    /// construction, not by parallel maintenance of two code paths.
    ///
    /// # Errors
    ///
    /// Whatever the backing's neighbour access reports (nothing for
    /// [`Graph`]; a decode error for corrupt on-disk data).
    ///
    /// # Panics
    ///
    /// May panic if `set` contains a node id `>= node_count()` (the
    /// [`Graph`] impl indexes its CSR directly).
    pub fn compute_access<A: AdjacencyAccess>(
        access: &A,
        set: &VertexSet,
        median_degree: f64,
    ) -> Result<SetStats, A::Error> {
        let n = access.node_count();
        let m = access.edge_count();
        let directed = access.is_directed();
        let n_c = set.len();

        // Single pass over member adjacency: internal/external edge tallies
        // and per-member ODF statistics.
        let mut internal_arcs = 0usize; // internal adjacency entries seen
        let mut boundary = 0usize;
        let mut out_degree_sum = 0usize;
        let mut in_degree_sum = 0usize;
        let mut above_median_internal = 0usize;
        let mut max_odf: f64 = 0.0;
        let mut odf_sum = 0.0;
        let mut flake_count = 0usize;

        for v in set.iter() {
            let mut internal_v = 0usize; // internal adjacency entries at v
            let mut external_v = 0usize;
            let out_deg = access.with_out_neighbors(v, |list| {
                for &w in list {
                    if set.contains(w) {
                        internal_v += 1;
                    } else {
                        external_v += 1;
                    }
                }
                list.len()
            })?;
            let in_deg = if directed {
                access.with_in_neighbors(v, |list| {
                    for &w in list {
                        if set.contains(w) {
                            internal_v += 1;
                        } else {
                            external_v += 1;
                        }
                    }
                    list.len()
                })?
            } else {
                // Undirected: in-adjacency is the out-adjacency, and both
                // degree sums are the plain degree — no second decode.
                out_deg
            };
            out_degree_sum += out_deg;
            in_degree_sum += in_deg;

            let d = internal_v + external_v; // == degree(v)
            if d > 0 {
                let odf = external_v as f64 / d as f64;
                max_odf = max_odf.max(odf);
                odf_sum += odf;
            }
            if external_v > internal_v {
                flake_count += 1;
            }
            if internal_v as f64 > median_degree {
                above_median_internal += 1;
            }
            internal_arcs += internal_v;
            boundary += external_v;
        }

        // Every internal arc is visited twice: for an undirected graph once
        // from each endpoint; for a directed graph once as an out-arc of its
        // source and once as an in-arc of its target.
        debug_assert_eq!(internal_arcs % 2, 0);
        let m_c = internal_arcs / 2;

        // Boundary arcs are visited once for undirected graphs, but twice
        // for directed graphs... no: an external arc (v -> w), v in C,
        // w outside, is seen only at v (w is not iterated). Each boundary
        // arc has exactly one endpoint in C and is counted exactly once.
        let c_c = boundary;

        // TPR: triangles inside the induced subgraph.
        let in_internal_triangle = if n_c >= 3 {
            let sub = induced_subgraph(access, set)?;
            triangles_per_node(&sub).iter().filter(|&&t| t > 0).count()
        } else {
            0
        };

        Ok(SetStats {
            n,
            m,
            directed,
            n_c,
            m_c,
            c_c,
            out_degree_sum,
            in_degree_sum,
            above_median_internal,
            in_internal_triangle,
            max_odf,
            avg_odf: if n_c == 0 { 0.0 } else { odf_sum / n_c as f64 },
            flake_odf: if n_c == 0 { 0.0 } else { flake_count as f64 / n_c as f64 },
        })
    }

    /// Total degree of the members: `2 m_C + c_C`.
    pub fn total_degree(&self) -> usize {
        2 * self.m_c + self.c_c
    }

    /// Maximum possible number of internal edges: `n_C (n_C - 1)` for
    /// directed graphs, half that for undirected ones.
    pub fn possible_internal_edges(&self) -> usize {
        let pairs = self.n_c.saturating_mul(self.n_c.saturating_sub(1));
        if self.directed {
            pairs
        } else {
            pairs / 2
        }
    }

    /// The null-model expectation `E(m_C)` under a degree-preserving random
    /// graph (Chung–Lu closed form):
    /// `(Σ d(v))² / 4m` for undirected graphs and
    /// `(Σ d_out)(Σ d_in) / m` for directed ones.
    ///
    /// The paper instead *samples* the Viger–Latapy null model; use
    /// `circlekit-nullmodel` for the sampled variant and this closed form as
    /// the fast approximation (they are compared in the ablation benches).
    pub fn expected_internal_edges(&self) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        if self.directed {
            (self.out_degree_sum as f64) * (self.in_degree_sum as f64) / self.m as f64
        } else {
            let d = self.total_degree() as f64;
            d * d / (4.0 * self.m as f64)
        }
    }
}

/// The subgraph induced by `set`, with members relabelled to dense local
/// ids by their rank in the sorted member list — the exact construction
/// of [`Graph::subgraph`], replicated over [`AdjacencyAccess`] so the
/// TPR term is identical whichever backing computed it.
fn induced_subgraph<A: AdjacencyAccess>(
    access: &A,
    set: &VertexSet,
) -> Result<Graph, A::Error> {
    let nodes = set.as_slice();
    let mut b = if access.is_directed() {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b.reserve_nodes(nodes.len());
    for (local_u, &u) in nodes.iter().enumerate() {
        access.with_out_neighbors(u, |list| {
            for v in list {
                if let Ok(local_v) = nodes.binary_search(v) {
                    // For undirected graphs each edge appears in both
                    // adjacency lists; the builder dedups the double add.
                    b.add_edge(local_u as NodeId, local_v as NodeId);
                }
            }
        })?;
    }
    Ok(b.build())
}

/// Convenience: median of the total-degree sequence of a graph, the
/// graph-level input FOMD needs.
pub(crate) fn median_degree(graph: &Graph) -> f64 {
    match median_degree_access(graph) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Median total degree over any [`AdjacencyAccess`] backing. Degrees are
/// list lengths (out + in when directed), matching [`Graph::degree`], so
/// the value is identical to the in-memory computation.
pub(crate) fn median_degree_access<A: AdjacencyAccess>(access: &A) -> Result<f64, A::Error> {
    let n = access.node_count();
    let directed = access.is_directed();
    let mut degrees: Vec<usize> = Vec::with_capacity(n);
    for v in 0..n as NodeId {
        let mut d = access.with_out_neighbors(v, <[NodeId]>::len)?;
        if directed {
            d += access.with_in_neighbors(v, <[NodeId]>::len)?;
        }
        degrees.push(d);
    }
    if degrees.is_empty() {
        return Ok(0.0);
    }
    degrees.sort_unstable();
    let n = degrees.len();
    Ok(if n % 2 == 1 {
        degrees[n / 2] as f64
    } else {
        (degrees[n / 2 - 1] + degrees[n / 2]) as f64 / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-clique {0,1,2,3} with a tail 3-4-5.
    fn clique_with_tail() -> (Graph, VertexSet) {
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        );
        ((g), (0u32..4).collect())
    }

    #[test]
    fn undirected_counts() {
        let (g, set) = clique_with_tail();
        let s = SetStats::compute(&g, &set, median_degree(&g));
        assert_eq!(s.n, 6);
        assert_eq!(s.m, 8);
        assert_eq!(s.n_c, 4);
        assert_eq!(s.m_c, 6);
        assert_eq!(s.c_c, 1);
        assert_eq!(s.total_degree(), 13);
        assert_eq!(s.possible_internal_edges(), 6);
    }

    #[test]
    fn directed_counts() {
        // Directed triangle plus an outgoing and an incoming boundary arc.
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 3), (4, 1)]);
        let set: VertexSet = (0u32..3).collect();
        let s = SetStats::compute(&g, &set, median_degree(&g));
        assert_eq!(s.m_c, 3);
        assert_eq!(s.c_c, 2);
        assert_eq!(s.out_degree_sum, 4); // 0:2, 1:1, 2:1
        assert_eq!(s.in_degree_sum, 4); // 0:1, 1:2, 2:1
    }

    #[test]
    fn odf_statistics() {
        let (g, set) = clique_with_tail();
        let s = SetStats::compute(&g, &set, median_degree(&g));
        // Only node 3 has an external edge: odf 1/4.
        assert!((s.max_odf - 0.25).abs() < 1e-12);
        assert!((s.avg_odf - 0.25 / 4.0).abs() < 1e-12);
        assert_eq!(s.flake_odf, 0.0);
    }

    #[test]
    fn flake_counts_majority_external_members() {
        // Node 1 inside the set {0,1} has 1 internal, 2 external edges.
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (1, 3)]);
        let set = VertexSet::from_vec(vec![0, 1]);
        let s = SetStats::compute(&g, &set, median_degree(&g));
        assert_eq!(s.flake_odf, 0.5);
    }

    #[test]
    fn tpr_counts_triangle_members() {
        let (g, set) = clique_with_tail();
        let s = SetStats::compute(&g, &set, median_degree(&g));
        assert_eq!(s.in_internal_triangle, 4);

        // A path-only set has no internal triangles.
        let path_set = VertexSet::from_vec(vec![3, 4, 5]);
        let s = SetStats::compute(&g, &path_set, median_degree(&g));
        assert_eq!(s.in_internal_triangle, 0);
    }

    #[test]
    fn fomd_counts_above_median_internal_degree() {
        let (g, set) = clique_with_tail();
        // Degrees: 3,3,3,4,2,1 -> median 3. Internal degrees in the clique
        // are all 3, which is not *strictly* above the median.
        let s = SetStats::compute(&g, &set, median_degree(&g));
        assert_eq!(s.above_median_internal, 0);
        // With a lower median every clique member clears the bar.
        let s = SetStats::compute(&g, &set, 1.0);
        assert_eq!(s.above_median_internal, 4);
    }

    #[test]
    fn expected_internal_edges_closed_form() {
        let (g, set) = clique_with_tail();
        let s = SetStats::compute(&g, &set, median_degree(&g));
        // (2*6+1)^2 / (4*8) = 169/32
        assert!((s.expected_internal_edges() - 169.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_set_is_all_zeroes() {
        let (g, _) = clique_with_tail();
        let s = SetStats::compute(&g, &VertexSet::new(), median_degree(&g));
        assert_eq!(s.n_c, 0);
        assert_eq!(s.m_c, 0);
        assert_eq!(s.c_c, 0);
        assert_eq!(s.avg_odf, 0.0);
    }

    #[test]
    fn median_degree_even_and_odd() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
        assert_eq!(median_degree(&g), 1.0); // degrees 1,2,1 -> median 1
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3)]);
        assert_eq!(median_degree(&g), 1.5); // degrees 1,2,2,1
    }
}
