//! [`PagedScorer`]: scoring over graphs too large to materialise.
//!
//! [`Scorer`](crate::Scorer) wants a fully decoded [`Graph`] in memory.
//! For a paper-scale snapshot (10⁷–10⁸ arcs) that is exactly what we
//! cannot afford — but the scoring statistics only ever *iterate member
//! adjacency*, so any [`AdjacencyAccess`] backing suffices: in
//! particular a compressed, memory-mapped snapshot view that decodes one
//! vertex's list at a time into a scratch buffer, letting the OS page
//! sections of the file in and out as they are touched.
//!
//! The statistics are produced by the same
//! [`SetStats::compute_access`] loop the in-memory scorer runs, so the
//! scores are bit-identical to the materialised path over equal
//! adjacency — the equivalence the store's tests and the `store_scale`
//! bench assert end-to-end.

use crate::set_stats::median_degree_access;
use crate::{ScoreTable, ScoringFunction, SetStats};
use circlekit_graph::{AdjacencyAccess, VertexSet};

/// Scores vertex sets against any [`AdjacencyAccess`] backing,
/// amortising the graph-level median-degree pass, and surfacing the
/// backing's errors (e.g. decode failures on a corrupt snapshot) instead
/// of panicking.
#[derive(Debug)]
pub struct PagedScorer<'a, A> {
    access: &'a A,
    median_degree: f64,
}

impl<'a, A: AdjacencyAccess> PagedScorer<'a, A> {
    /// Creates a scorer over `access`, streaming one full degree pass to
    /// compute the median total degree (FOMD's graph-level input).
    ///
    /// # Errors
    ///
    /// Whatever the backing reports while iterating adjacency.
    pub fn new(access: &'a A) -> Result<PagedScorer<'a, A>, A::Error> {
        let median_degree = median_degree_access(access)?;
        Ok(PagedScorer { access, median_degree })
    }

    /// Creates a scorer with a precomputed median degree (e.g. reused
    /// across scorers over the same snapshot).
    pub fn with_median_degree(access: &'a A, median_degree: f64) -> PagedScorer<'a, A> {
        PagedScorer { access, median_degree }
    }

    /// The graph-wide median total degree (FOMD's threshold).
    pub fn median_degree(&self) -> f64 {
        self.median_degree
    }

    /// Computes the full [`SetStats`] for one set.
    ///
    /// # Errors
    ///
    /// Whatever the backing reports while iterating adjacency.
    pub fn stats(&self, set: &VertexSet) -> Result<SetStats, A::Error> {
        SetStats::compute_access(self.access, set, self.median_degree)
    }

    /// Evaluates one scoring function on one set.
    ///
    /// # Errors
    ///
    /// As [`PagedScorer::stats`].
    pub fn score(&self, function: ScoringFunction, set: &VertexSet) -> Result<f64, A::Error> {
        Ok(function.score(&self.stats(set)?))
    }

    /// Evaluates many functions over many sets in one stats pass per
    /// set — the paged counterpart of
    /// [`Scorer::score_table`](crate::Scorer::score_table), producing an
    /// identical table over equal adjacency.
    ///
    /// # Errors
    ///
    /// As [`PagedScorer::stats`]; the first failing set aborts the
    /// table.
    pub fn score_table(
        &self,
        functions: &[ScoringFunction],
        sets: &[VertexSet],
    ) -> Result<ScoreTable, A::Error> {
        let mut rows = Vec::with_capacity(sets.len());
        for set in sets {
            let stats = self.stats(set)?;
            rows.push(functions.iter().map(|f| f.score(&stats)).collect());
        }
        Ok(ScoreTable::from_parts(functions.to_vec(), rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scorer;
    use circlekit_graph::Graph;

    #[test]
    fn paged_over_graph_matches_scorer_exactly() {
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (1, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        );
        let sets: Vec<VertexSet> = vec![
            (0u32..3).collect(),
            (3u32..6).collect(),
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::new(),
        ];
        let mut scorer = Scorer::new(&g);
        let paged = PagedScorer::new(&g).unwrap();
        assert_eq!(paged.median_degree(), scorer.median_degree());
        let expected = scorer.score_table(&ScoringFunction::ALL, &sets);
        let actual = paged.score_table(&ScoringFunction::ALL, &sets).unwrap();
        assert_eq!(expected, actual);
        for set in &sets {
            assert_eq!(scorer.stats(set), paged.stats(set).unwrap());
        }
    }

    #[test]
    fn directed_stats_agree_too() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 3), (4, 1)]);
        let set: VertexSet = (0u32..3).collect();
        let mut scorer = Scorer::new(&g);
        let paged = PagedScorer::new(&g).unwrap();
        assert_eq!(scorer.stats(&set), paged.stats(&set).unwrap());
    }
}
