//! Community *goodness* metrics (Yang–Leskovec §3.1).
//!
//! Orthogonal to the 13 scoring functions, Yang & Leskovec characterise
//! ground-truth communities with four "goodness" axes: **separability**,
//! **density**, **cohesiveness**, and **clustering coefficient**. The
//! paper inherits its framing from that study, so the reproduction ships
//! the full set; they also power the Fang-style circle categorisation.

use crate::SetStats;
use circlekit_graph::{Graph, VertexSet};
use circlekit_metrics::average_clustering;
use rand::Rng;

/// The four goodness metrics of one vertex set.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Goodness {
    /// `m_C / c_C`: internal-to-external edge ratio (∞-free: `m_C` when
    /// the boundary is empty).
    pub separability: f64,
    /// Internal edge density `m_C / possible`.
    pub density: f64,
    /// Approximate cohesiveness: the minimum internal conductance over
    /// sampled sweep cuts of the induced subgraph (low values mean the
    /// set splits into well-separated sub-communities).
    pub cohesiveness: f64,
    /// Mean local clustering coefficient of the induced subgraph.
    pub clustering: f64,
}

/// Computes the goodness metrics of `set` within `graph`.
///
/// Cohesiveness is approximated by `sweeps` BFS sweep cuts from random
/// internal seeds (the exact quantity minimises over all internal cuts and
/// is intractable); the approximation is exact on sets that a single BFS
/// separates, which covers the planted structures used in evaluation.
///
/// # Panics
///
/// Panics if `set` contains an id `>= graph.node_count()`.
pub fn goodness<R: Rng + ?Sized>(
    graph: &Graph,
    set: &VertexSet,
    stats: &SetStats,
    sweeps: usize,
    rng: &mut R,
) -> Goodness {
    let separability = if stats.c_c == 0 {
        stats.m_c as f64
    } else {
        stats.m_c as f64 / stats.c_c as f64
    };
    let density = if stats.possible_internal_edges() == 0 {
        0.0
    } else {
        stats.m_c as f64 / stats.possible_internal_edges() as f64
    };
    let sub = graph.subgraph(set).expect("set members are valid ids");
    let sub_und = sub.graph().to_undirected();
    let clustering = average_clustering(&sub_und);
    let cohesiveness = approximate_cohesiveness(&sub_und, sweeps, rng);
    Goodness {
        separability,
        density,
        cohesiveness,
        clustering,
    }
}

/// Minimum internal conductance over BFS sweep cuts from `sweeps` random
/// seeds. Returns `1.0` for graphs with fewer than 2 nodes or no edges
/// (no non-trivial cut exists).
fn approximate_cohesiveness<R: Rng + ?Sized>(g: &Graph, sweeps: usize, rng: &mut R) -> f64 {
    let n = g.node_count();
    let m2 = 2 * g.edge_count(); // total degree
    if n < 2 || m2 == 0 {
        return 1.0;
    }
    let mut best = 1.0f64;
    for _ in 0..sweeps.max(1) {
        let seed = rng.gen_range(0..n) as u32;
        // BFS order from the seed.
        let dist = circlekit_graph::bfs_distances(g, seed, circlekit_graph::Direction::Both);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| dist[v as usize]);
        // Sweep: maintain volume and boundary of the growing prefix.
        let mut in_prefix = vec![false; n];
        let mut volume = 0usize; // sum of degrees inside prefix
        let mut boundary = 0usize; // edges crossing the prefix
        for (count, &v) in order.iter().enumerate() {
            in_prefix[v as usize] = true;
            let deg = g.out_neighbors(v).len();
            let internal = g
                .out_neighbors(v)
                .iter()
                .filter(|&&w| in_prefix[w as usize] && w != v)
                .count();
            volume += deg;
            // v's edges to the prefix stop being boundary; the rest start.
            boundary = boundary - internal + (deg - internal);
            let prefix_size = count + 1;
            if prefix_size == n {
                break; // trivial cut
            }
            let denom = volume.min(m2 - volume);
            if denom > 0 {
                best = best.min(boundary as f64 / denom as f64);
            }
        }
    }
    best.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scorer;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn goodness_of(graph: &Graph, set: &VertexSet, seed: u64) -> Goodness {
        let mut scorer = Scorer::new(graph);
        let stats = scorer.stats(set);
        let mut rng = SmallRng::seed_from_u64(seed);
        goodness(graph, set, &stats, 8, &mut rng)
    }

    fn clique(k: u32) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j));
            }
        }
        edges
    }

    #[test]
    fn clique_is_maximally_good() {
        let g = Graph::from_edges(false, clique(6));
        let set: VertexSet = (0u32..6).collect();
        let good = goodness_of(&g, &set, 1);
        assert_eq!(good.density, 1.0);
        assert_eq!(good.clustering, 1.0);
        assert_eq!(good.separability, 15.0); // m_C with empty boundary
        // No internal cut separates a clique well.
        assert!(good.cohesiveness > 0.5, "{}", good.cohesiveness);
    }

    #[test]
    fn barbell_set_has_low_cohesiveness() {
        // Two 5-cliques joined by one edge, taken as a single set: the
        // sweep must find the bridge cut.
        let mut edges = clique(5);
        edges.extend(clique(5).into_iter().map(|(a, b)| (a + 5, b + 5)));
        edges.push((0, 5));
        let g = Graph::from_edges(false, edges);
        let set: VertexSet = (0u32..10).collect();
        let good = goodness_of(&g, &set, 2);
        // Bridge cut: 1 boundary edge over volume 21 -> ~0.047.
        assert!(good.cohesiveness < 0.1, "{}", good.cohesiveness);
        assert!(good.clustering > 0.8);
    }

    #[test]
    fn separability_reflects_boundary() {
        // A triangle with 3 outgoing edges: separability = 3/3 = 1.
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (1, 2), (2, 0), (0, 3), (1, 4), (2, 5)],
        );
        let set: VertexSet = (0u32..3).collect();
        let good = goodness_of(&g, &set, 3);
        assert!((good.separability - 1.0).abs() < 1e-12);
        assert_eq!(good.density, 1.0);
    }

    #[test]
    fn degenerate_sets_do_not_panic() {
        let g = Graph::from_edges(false, [(0u32, 1u32)]);
        for set in [VertexSet::new(), VertexSet::from_vec(vec![0])] {
            let good = goodness_of(&g, &set, 4);
            assert!(good.separability.is_finite());
            assert_eq!(good.density, 0.0);
            assert_eq!(good.cohesiveness, 1.0);
        }
    }

    #[test]
    fn directed_sets_use_undirected_view_for_cohesiveness() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 3)]);
        let set: VertexSet = (0u32..3).collect();
        let good = goodness_of(&g, &set, 5);
        assert!(good.cohesiveness > 0.0);
        assert!(good.clustering > 0.9);
    }
}
