//! Batch scoring of many vertex sets against one graph.

use crate::set_stats::median_degree;
use crate::{ParallelScorer, ScoringFunction, SetStats};
use circlekit_graph::{validate_groups, Graph, GraphError, VertexSet};

/// Scores vertex sets against a fixed graph, amortising graph-level
/// precomputation (currently the median degree needed by FOMD).
///
/// ```
/// use circlekit_graph::{Graph, VertexSet};
/// use circlekit_scoring::{Scorer, ScoringFunction};
///
/// let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
/// let mut scorer = Scorer::new(&g);
/// let triangle: VertexSet = (0u32..3).collect();
/// assert_eq!(scorer.score(ScoringFunction::AverageDegree, &triangle), 2.0);
/// ```
#[derive(Debug)]
pub struct Scorer<'g> {
    graph: &'g Graph,
    median_degree: f64,
}

impl<'g> Scorer<'g> {
    /// Creates a scorer for `graph`, computing the graph-level inputs once.
    pub fn new(graph: &'g Graph) -> Scorer<'g> {
        Scorer {
            graph,
            median_degree: median_degree(graph),
        }
    }

    /// The graph this scorer evaluates against.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The graph-wide median total degree (FOMD's threshold).
    pub fn median_degree(&self) -> f64 {
        self.median_degree
    }

    /// Computes the full [`SetStats`] for one set.
    ///
    /// # Panics
    ///
    /// Panics if `set` contains an id `>= graph.node_count()`.
    pub fn stats(&mut self, set: &VertexSet) -> SetStats {
        SetStats::compute(self.graph, set, self.median_degree)
    }

    /// Non-panicking variant of [`Scorer::stats`]: validates the set's
    /// members against the graph first.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] naming the first member
    /// `>= graph.node_count()`.
    pub fn try_stats(&mut self, set: &VertexSet) -> Result<SetStats, GraphError> {
        validate_groups(std::slice::from_ref(set), self.graph.node_count())?;
        Ok(self.stats(set))
    }

    /// Evaluates one scoring function on one set.
    pub fn score(&mut self, function: ScoringFunction, set: &VertexSet) -> f64 {
        function.score(&self.stats(set))
    }

    /// Evaluates one function over many sets, returning scores in input
    /// order — one column of the paper's Figures 5–6.
    pub fn score_sets(&mut self, function: ScoringFunction, sets: &[VertexSet]) -> Vec<f64> {
        sets.iter().map(|s| self.score(function, s)).collect()
    }

    /// Evaluates many functions over many sets in one pass per set.
    pub fn score_table(&mut self, functions: &[ScoringFunction], sets: &[VertexSet]) -> ScoreTable {
        let mut rows = Vec::with_capacity(sets.len());
        for set in sets {
            let stats = self.stats(set);
            rows.push(functions.iter().map(|f| f.score(&stats)).collect());
        }
        ScoreTable {
            functions: functions.to_vec(),
            rows,
        }
    }

    /// Like [`Scorer::score_table`], but fans the sets out over `threads`
    /// worker threads by delegating to [`ParallelScorer`]. Set statistics
    /// are independent per set, so the result is identical to the
    /// sequential table; use this for corpora with thousands of large
    /// groups (the paper's top-5000 community lists).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn score_table_parallel(
        &self,
        functions: &[ScoringFunction],
        sets: &[VertexSet],
        threads: usize,
    ) -> ScoreTable {
        ParallelScorer::with_graph_median(self.graph, self.median_degree, threads)
            .score_table(functions, sets)
    }
}

/// Scores of a collection of sets under a collection of functions.
///
/// Row `i` holds the scores of set `i`; column `j` corresponds to
/// `functions()[j]`.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScoreTable {
    functions: Vec<ScoringFunction>,
    rows: Vec<Vec<f64>>,
}

impl ScoreTable {
    /// Assembles a table from its columns' functions and per-set rows.
    pub(crate) fn from_parts(functions: Vec<ScoringFunction>, rows: Vec<Vec<f64>>) -> ScoreTable {
        ScoreTable { functions, rows }
    }

    /// Assembles a table from externally stored rows (e.g. a checkpoint
    /// file), verifying that every row has one score per function.
    ///
    /// Returns `None` if any row's width differs from `functions.len()`.
    pub fn from_rows(functions: Vec<ScoringFunction>, rows: Vec<Vec<f64>>) -> Option<ScoreTable> {
        if rows.iter().any(|r| r.len() != functions.len()) {
            return None;
        }
        Some(ScoreTable { functions, rows })
    }

    /// The scored functions, in column order.
    pub fn functions(&self) -> &[ScoringFunction] {
        &self.functions
    }

    /// Number of scored sets.
    pub fn set_count(&self) -> usize {
        self.rows.len()
    }

    /// The score row of set `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= set_count()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// The scores of one function across all sets (a CDF-ready column).
    ///
    /// Returns `None` if the function was not scored.
    pub fn column(&self, function: ScoringFunction) -> Option<Vec<f64>> {
        let idx = self.functions.iter().position(|&f| f == function)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Pearson correlation between two functions' columns across the scored
    /// sets — the statistic behind the Yang–Leskovec grouping the paper
    /// builds on. Returns `None` if either function is missing or fewer
    /// than two sets were scored, or if a column is constant.
    pub fn correlation(&self, a: ScoringFunction, b: ScoringFunction) -> Option<f64> {
        circlekit_stats::pearson(&self.column(a)?, &self.column(b)?)
    }

    /// Spearman rank correlation between two functions' columns — robust
    /// to the heavy-tailed score distributions circles produce. Same
    /// `None` conditions as [`ScoreTable::correlation`].
    pub fn rank_correlation(&self, a: ScoringFunction, b: ScoringFunction) -> Option<f64> {
        circlekit_stats::spearman(&self.column(a)?, &self.column(b)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Graph {
        Graph::from_edges(
            false,
            [(0u32, 1u32), (0, 2), (1, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        )
    }

    #[test]
    fn score_sets_orders_match_input() {
        let g = fixture();
        let mut scorer = Scorer::new(&g);
        let sets = vec![
            (0u32..3).collect::<VertexSet>(),
            (3u32..6).collect::<VertexSet>(),
        ];
        let scores = scorer.score_sets(ScoringFunction::EdgesInside, &sets);
        assert_eq!(scores, vec![3.0, 3.0]);
    }

    #[test]
    fn table_rows_and_columns_agree() {
        let g = fixture();
        let mut scorer = Scorer::new(&g);
        let sets = vec![
            (0u32..3).collect::<VertexSet>(),
            VertexSet::from_vec(vec![2, 3]),
        ];
        let table = scorer.score_table(&ScoringFunction::PAPER, &sets);
        assert_eq!(table.set_count(), 2);
        assert_eq!(table.functions().len(), 4);
        let col = table.column(ScoringFunction::AverageDegree).unwrap();
        assert_eq!(col[0], table.row(0)[0]);
        assert_eq!(col[1], table.row(1)[0]);
        assert!(table.column(ScoringFunction::MaxOdf).is_none());
    }

    #[test]
    fn correlation_of_function_with_itself_is_one() {
        let g = fixture();
        let mut scorer = Scorer::new(&g);
        let sets: Vec<VertexSet> = vec![
            (0u32..3).collect(),
            (3u32..6).collect(),
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::from_vec(vec![0, 5]),
        ];
        let table = scorer.score_table(&ScoringFunction::ALL, &sets);
        let r = table
            .correlation(ScoringFunction::Conductance, ScoringFunction::Conductance)
            .unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_none_on_constant_column() {
        let g = fixture();
        let mut scorer = Scorer::new(&g);
        // Two sets with identical structure: EdgesInside is constant.
        let sets: Vec<VertexSet> = vec![(0u32..3).collect(), (3u32..6).collect()];
        let table = scorer.score_table(&ScoringFunction::ALL, &sets);
        assert_eq!(
            table.correlation(ScoringFunction::EdgesInside, ScoringFunction::Conductance),
            None
        );
    }

    #[test]
    fn rank_correlation_agrees_in_sign_with_pearson() {
        let g = fixture();
        let mut scorer = Scorer::new(&g);
        let sets: Vec<VertexSet> = vec![
            (0u32..3).collect(),
            (3u32..6).collect(),
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::from_vec(vec![0, 5]),
            VertexSet::from_vec(vec![0, 1]),
        ];
        let table = scorer.score_table(&ScoringFunction::ALL, &sets);
        let p = table
            .correlation(ScoringFunction::Conductance, ScoringFunction::AvgOdf)
            .unwrap();
        let s = table
            .rank_correlation(ScoringFunction::Conductance, ScoringFunction::AvgOdf)
            .unwrap();
        assert_eq!(p.signum(), s.signum());
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn parallel_table_matches_sequential() {
        let g = fixture();
        let sets: Vec<VertexSet> = vec![
            (0u32..3).collect(),
            (3u32..6).collect(),
            VertexSet::from_vec(vec![1, 2, 3]),
            VertexSet::from_vec(vec![0, 5]),
            VertexSet::new(),
        ];
        let mut scorer = Scorer::new(&g);
        let sequential = scorer.score_table(&ScoringFunction::ALL, &sets);
        for threads in [1, 2, 3, 8] {
            let parallel = scorer.score_table_parallel(&ScoringFunction::ALL, &sets, threads);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn parallel_table_rejects_zero_threads() {
        let g = fixture();
        let scorer = Scorer::new(&g);
        scorer.score_table_parallel(&ScoringFunction::PAPER, &[], 0);
    }

    #[test]
    fn median_degree_exposed() {
        let g = fixture();
        let scorer = Scorer::new(&g);
        assert!(scorer.median_degree() > 0.0);
        assert_eq!(scorer.graph().node_count(), 6);
    }
}
