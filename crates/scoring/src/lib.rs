//! Community scoring functions.
//!
//! This crate implements §V of *"Are Circles Communities?"*: scoring
//! functions `f(C)` that characterise how community-like a vertex set `C`
//! is within its embedding graph. The paper selects four functions — one
//! per category of the Yang–Leskovec taxonomy — and this crate provides the
//! complete 13-function suite:
//!
//! | Category | Functions |
//! |---|---|
//! | Internal connectivity | Internal Density, Edges Inside, **Average Degree**, FOMD, TPR |
//! | External connectivity | Expansion, **Ratio Cut** (cut ratio) |
//! | Combined | **Conductance**, Normalized Cut, Max-ODF, Avg-ODF, Flake-ODF |
//! | Network model | **Modularity** |
//!
//! (Bold: the four the paper evaluates.)
//!
//! # Usage
//!
//! ```
//! use circlekit_graph::{Graph, VertexSet};
//! use circlekit_scoring::{Scorer, ScoringFunction};
//!
//! // A 4-clique loosely attached to a path.
//! let g = Graph::from_edges(false, [
//!     (0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), // clique
//!     (3, 4), (4, 5), (5, 6),                               // tail
//! ]);
//! let clique: VertexSet = (0u32..4).collect();
//!
//! let mut scorer = Scorer::new(&g);
//! let avg_deg = scorer.score(ScoringFunction::AverageDegree, &clique);
//! let conductance = scorer.score(ScoringFunction::Conductance, &clique);
//! assert_eq!(avg_deg, 3.0);              // 2 * 6 / 4
//! assert!(conductance < 0.1);            // 1 boundary edge vs 12 internal half-edges
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "fault-inject")]
pub mod fault;
mod functions;
mod goodness;
mod paged;
mod parallel;
mod robust;
mod scorer;
mod set_stats;

pub use functions::{Category, ScoringFunction};
pub use goodness::{goodness, Goodness};
pub use paged::PagedScorer;
pub use parallel::{default_threads, parse_thread_count, ParallelScorer};
pub use robust::{BatchReport, ChunkError, RobustBatch, SetFailure};
pub use scorer::{ScoreTable, Scorer};
pub use set_stats::SetStats;
