//! Fault-injection hooks for the robustness test-suite.
//!
//! Compiled only under `--features fault-inject`; production builds carry
//! none of this. The hooks are process-global (a pair of atomics), so
//! tests that arm them must serialise on a shared lock and [`disarm`] in
//! all exit paths.
//!
//! Arming [`arm_set_panic`] makes the scorer panic when it reaches the
//! given batch index inside `eval`, exactly where a latent scoring bug
//! would fire. A non-sticky fault disarms itself as it triggers, so the
//! robust path's serial retry succeeds — proving recovery yields results
//! bit-identical to a clean run. A sticky fault keeps firing, proving the
//! set is surfaced as a failure instead of aborting the process.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// Batch index armed to panic; `-1` means disarmed.
static ARMED_SET: AtomicI64 = AtomicI64::new(-1);
/// Whether the armed fault survives its own firing.
static STICKY: AtomicBool = AtomicBool::new(false);

/// Arms a panic for the set at `set_index` in the next robust batch.
///
/// `sticky: false` disarms on first fire (the retry then succeeds);
/// `sticky: true` keeps firing (the set becomes a permanent failure).
pub fn arm_set_panic(set_index: usize, sticky: bool) {
    STICKY.store(sticky, Ordering::SeqCst);
    ARMED_SET.store(set_index as i64, Ordering::SeqCst);
}

/// Disarms any armed fault. Idempotent; call from test cleanup.
pub fn disarm() {
    ARMED_SET.store(-1, Ordering::SeqCst);
    STICKY.store(false, Ordering::SeqCst);
}

/// Scorer-side hook: panics if `set_index` is armed.
pub(crate) fn maybe_panic(set_index: usize) {
    let armed = ARMED_SET.load(Ordering::SeqCst);
    if armed < 0 || armed as usize != set_index {
        return;
    }
    if STICKY.load(Ordering::SeqCst) {
        panic!("fault-inject: sticky panic scoring set {set_index}");
    }
    // One-shot: the compare-exchange guarantees exactly one worker fires
    // even if several race past the load above.
    if ARMED_SET
        .compare_exchange(armed, -1, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        panic!("fault-inject: injected panic scoring set {set_index}");
    }
}
