//! Property tests for the structural metrics.

use circlekit_graph::{Direction, Graph, GraphBuilder, VertexSet};
use circlekit_metrics::{
    average_clustering, clustering_coefficients, diameter_double_sweep, diameter_exact,
    ego_membership_counts, ego_overlap_fraction, triangle_count, triangles_per_node, DegreeKind,
    DegreeStats,
};
use proptest::prelude::*;

const MAX_NODE: u32 = 24;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (
        prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 0..120),
        any::<bool>(),
    )
        .prop_map(|(edges, directed)| {
            let mut b = if directed {
                GraphBuilder::directed()
            } else {
                GraphBuilder::undirected()
            };
            b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
            b.build()
        })
}

proptest! {
    #[test]
    fn clustering_coefficients_in_unit_interval(g in arbitrary_graph()) {
        for (v, cc) in clustering_coefficients(&g).into_iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&cc), "node {v}: {cc}");
        }
        let avg = average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn triangle_bookkeeping_consistent(g in arbitrary_graph()) {
        let per_node = triangles_per_node(&g);
        let total: u64 = per_node.iter().sum();
        prop_assert_eq!(total % 3, 0, "each triangle counted thrice");
        prop_assert_eq!(total / 3, triangle_count(&g));
    }

    #[test]
    fn degree_stats_sum_matches_edge_count(g in arbitrary_graph()) {
        let inn = DegreeStats::new(&g, DegreeKind::In);
        let out = DegreeStats::new(&g, DegreeKind::Out);
        let sum_in: u64 = inn.degrees().iter().sum();
        let sum_out: u64 = out.degrees().iter().sum();
        prop_assert_eq!(sum_in, sum_out);
        if g.is_directed() {
            prop_assert_eq!(sum_in as usize, g.edge_count());
        } else {
            prop_assert_eq!(sum_in as usize, 2 * g.edge_count());
        }
    }

    #[test]
    fn double_sweep_never_exceeds_exact_diameter(g in arbitrary_graph()) {
        if g.node_count() == 0 {
            return Ok(());
        }
        let exact = diameter_exact(&g, Direction::Both).diameter;
        let sweep = diameter_double_sweep(&g, 0, Direction::Both);
        prop_assert!(sweep <= exact, "sweep {sweep} > exact {exact}");
    }

    #[test]
    fn exact_diameter_bounds_asp(g in arbitrary_graph()) {
        let stats = diameter_exact(&g, Direction::Both);
        if stats.pairs > 0 {
            prop_assert!(stats.average >= 1.0);
            prop_assert!(stats.average <= stats.diameter as f64);
        } else {
            prop_assert_eq!(stats.average, 0.0);
        }
    }

    #[test]
    fn ego_overlap_fraction_in_unit_interval(sets in prop::collection::vec(prop::collection::vec(0u32..60, 0..12), 0..10)) {
        let egos: Vec<VertexSet> = sets.into_iter().map(VertexSet::from_vec).collect();
        let f = ego_overlap_fraction(&egos);
        prop_assert!((0.0..=1.0).contains(&f));
        // Membership counts cover exactly the union of the egos.
        let counts = ego_membership_counts(&egos);
        let union = egos.iter().fold(VertexSet::new(), |acc, e| acc.union(e));
        prop_assert_eq!(counts.len(), union.len());
        // Each vertex's count is bounded by the number of egos.
        prop_assert!(counts.values().all(|&c| c as usize <= egos.len()));
    }

    #[test]
    fn clustering_invariant_under_bidirection(edges in prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 0..80)) {
        let und = Graph::from_edges(false, edges);
        let bid = und.to_bidirected();
        prop_assert_eq!(clustering_coefficients(&und), clustering_coefficients(&bid));
        prop_assert_eq!(triangle_count(&und), triangle_count(&bid));
    }
}
