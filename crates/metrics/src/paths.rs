//! Node separation: diameter and average shortest path (§IV-A.3).

use circlekit_graph::{bfs_distances, Direction, Graph, Interrupted, NodeId, RunControl, UNREACHABLE};
use rand::seq::SliceRandom;
use rand::Rng;

/// Result of a path-length measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathStats {
    /// Longest shortest path observed (the diameter, or a lower bound for
    /// sampled variants).
    pub diameter: u32,
    /// Mean shortest-path length over the measured finite pairs (the
    /// paper's "ASP").
    pub average: f64,
    /// Number of finite source→target pairs measured.
    pub pairs: u64,
}

fn scan_sources<I>(graph: &Graph, sources: I, dir: Direction) -> PathStats
where
    I: IntoIterator<Item = NodeId>,
{
    let sources: Vec<NodeId> = sources.into_iter().collect();
    scan_sources_with_control(graph, sources, dir, &RunControl::new())
        .expect("a default RunControl never interrupts")
}

/// BFS scan with a cooperative checkpoint per source node.
fn scan_sources_with_control(
    graph: &Graph,
    sources: Vec<NodeId>,
    dir: Direction,
    control: &RunControl,
) -> Result<PathStats, Interrupted> {
    let total_sources = sources.len();
    let mut diameter = 0u32;
    let mut total = 0u64;
    let mut pairs = 0u64;
    let mut scanned = 0usize;
    for src in sources {
        control.check()?;
        let dist = bfs_distances(graph, src, dir);
        for d in dist {
            if d != UNREACHABLE && d > 0 {
                diameter = diameter.max(d);
                total += d as u64;
                pairs += 1;
            }
        }
        scanned += 1;
        control.report("paths", scanned, total_sources);
    }
    Ok(PathStats {
        diameter,
        average: if pairs == 0 { 0.0 } else { total as f64 / pairs as f64 },
        pairs,
    })
}

/// Exact diameter and average shortest path via BFS from **every** node.
///
/// `O(n · m)` — intended for graphs up to a few tens of thousands of nodes.
/// Unreachable pairs are excluded (the convention for crawled social graphs,
/// which are reported on their largest connected component).
///
/// ```
/// use circlekit_graph::{Direction, Graph};
/// use circlekit_metrics::diameter_exact;
/// let path = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3)]);
/// let stats = diameter_exact(&path, Direction::Both);
/// assert_eq!(stats.diameter, 3);
/// ```
pub fn diameter_exact(graph: &Graph, dir: Direction) -> PathStats {
    scan_sources(graph, 0..graph.node_count() as NodeId, dir)
}

/// Cancellable [`diameter_exact`]: `control` is observed once per BFS
/// source, so the `O(n · m)` scan can be stopped or deadlined cleanly.
///
/// # Errors
///
/// Returns [`Interrupted`] if the control asked the run to stop. A
/// diameter/ASP over a partial source scan is a biased estimate, so no
/// partial value is returned — use [`average_shortest_path_sampled`]
/// with fewer sources instead when time is short.
pub fn diameter_exact_with_control(
    graph: &Graph,
    dir: Direction,
    control: &RunControl,
) -> Result<PathStats, Interrupted> {
    let sources: Vec<NodeId> = (0..graph.node_count() as NodeId).collect();
    scan_sources_with_control(graph, sources, dir, control)
}

/// Exact average shortest path (alias of [`diameter_exact`], exposed under
/// the measurement's own name).
pub fn average_shortest_path(graph: &Graph, dir: Direction) -> PathStats {
    diameter_exact(graph, dir)
}

/// Estimates path statistics by BFS from `sources` randomly chosen nodes.
///
/// The returned diameter is a lower bound; the ASP estimate converges
/// quickly because each BFS contributes `O(n)` pairs. This is how the
/// measurement papers the reproduction compares against handle multi-million
/// node crawls.
pub fn average_shortest_path_sampled<R: Rng + ?Sized>(
    graph: &Graph,
    dir: Direction,
    sources: usize,
    rng: &mut R,
) -> PathStats {
    let n = graph.node_count();
    if n == 0 || sources == 0 {
        return PathStats { diameter: 0, average: 0.0, pairs: 0 };
    }
    let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
    nodes.shuffle(rng);
    nodes.truncate(sources.min(n));
    scan_sources(graph, nodes, dir)
}

/// Cancellable [`average_shortest_path_sampled`], observing `control`
/// once per BFS source. The source sample is drawn identically to the
/// uncontrolled variant (same RNG consumption), so an uninterrupted run
/// returns bit-identical statistics.
///
/// # Errors
///
/// Returns [`Interrupted`] if the control asked the run to stop.
pub fn average_shortest_path_sampled_with_control<R: Rng + ?Sized>(
    graph: &Graph,
    dir: Direction,
    sources: usize,
    rng: &mut R,
    control: &RunControl,
) -> Result<PathStats, Interrupted> {
    let n = graph.node_count();
    if n == 0 || sources == 0 {
        return Ok(PathStats { diameter: 0, average: 0.0, pairs: 0 });
    }
    let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
    nodes.shuffle(rng);
    nodes.truncate(sources.min(n));
    scan_sources_with_control(graph, nodes, dir, control)
}

/// Effective diameter: the 90th-percentile shortest-path distance over
/// source-reachable pairs, estimated from BFS at `sources` random source
/// nodes. The standard robust alternative to the exact diameter for
/// crawled graphs (a single stray path inflates the maximum but not the
/// percentile).
///
/// Returns `0.0` when no finite pair is observed.
pub fn effective_diameter<R: Rng + ?Sized>(
    graph: &Graph,
    dir: Direction,
    sources: usize,
    rng: &mut R,
) -> f64 {
    let n = graph.node_count();
    if n == 0 || sources == 0 {
        return 0.0;
    }
    let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
    nodes.shuffle(rng);
    nodes.truncate(sources.min(n));
    // Distance histogram: hop counts are small integers.
    let mut histogram: Vec<u64> = Vec::new();
    for src in nodes {
        for d in bfs_distances(graph, src, dir) {
            if d != UNREACHABLE && d > 0 {
                let d = d as usize;
                if d >= histogram.len() {
                    histogram.resize(d + 1, 0);
                }
                histogram[d] += 1;
            }
        }
    }
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = 0.9 * total as f64;
    let mut acc = 0u64;
    for (d, &c) in histogram.iter().enumerate() {
        let prev = acc as f64;
        acc += c;
        if acc as f64 >= target {
            // Linear interpolation inside the bin, as is conventional.
            let frac = if c == 0 { 0.0 } else { (target - prev) / c as f64 };
            return (d as f64 - 1.0) + frac;
        }
    }
    (histogram.len() - 1) as f64
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS again from
/// the farthest node found. Exact on trees, and empirically tight on
/// small-world social graphs at two-BFS cost.
///
/// Returns `0` for graphs where `start` reaches nothing.
///
/// # Panics
///
/// Panics if `start >= node_count()`.
pub fn diameter_double_sweep(graph: &Graph, start: NodeId, dir: Direction) -> u32 {
    let first = bfs_distances(graph, start, dir);
    let far = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as NodeId);
    let Some(far) = far else { return 0 };
    let second = bfs_distances(graph, far, dir);
    second
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn path(n: u32) -> Graph {
        Graph::from_edges(false, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn exact_diameter_of_path() {
        let stats = diameter_exact(&path(6), Direction::Both);
        assert_eq!(stats.diameter, 5);
        // ASP of P6: sum over ordered pairs |i-j| / 30 = 70/30.
        assert!((stats.average - 70.0 / 30.0).abs() < 1e-12);
        assert_eq!(stats.pairs, 30);
    }

    #[test]
    fn exact_ignores_unreachable_pairs() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (2, 3)]);
        let stats = diameter_exact(&g, Direction::Both);
        assert_eq!(stats.diameter, 1);
        assert_eq!(stats.pairs, 4); // 0<->1 and 2<->3, both orderings
    }

    #[test]
    fn directed_diameter_follows_arcs() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2)]);
        let out = diameter_exact(&g, Direction::Out);
        assert_eq!(out.diameter, 2);
        assert_eq!(out.pairs, 3); // 0->1, 0->2, 1->2
    }

    #[test]
    fn double_sweep_exact_on_paths() {
        let g = path(9);
        for start in [0u32, 4, 8] {
            assert_eq!(diameter_double_sweep(&g, start, Direction::Both), 8);
        }
    }

    #[test]
    fn double_sweep_lower_bounds_exact() {
        // A 4-cycle: exact diameter 2; double sweep finds 2.
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]);
        let exact = diameter_exact(&g, Direction::Both).diameter;
        let sweep = diameter_double_sweep(&g, 0, Direction::Both);
        assert!(sweep <= exact);
        assert_eq!(sweep, 2);
    }

    #[test]
    fn sampled_matches_exact_when_sampling_everything() {
        let g = path(7);
        let mut rng = SmallRng::seed_from_u64(7);
        let sampled = average_shortest_path_sampled(&g, Direction::Both, 7, &mut rng);
        let exact = diameter_exact(&g, Direction::Both);
        assert_eq!(sampled, exact);
    }

    #[test]
    fn effective_diameter_below_exact_diameter() {
        let g = path(30);
        let mut rng = SmallRng::seed_from_u64(9);
        let eff = effective_diameter(&g, Direction::Both, 30, &mut rng);
        let exact = diameter_exact(&g, Direction::Both).diameter as f64;
        assert!(eff > 0.0);
        assert!(eff <= exact, "eff {eff} vs exact {exact}");
        // On a path, the 90th percentile is well below the max distance.
        assert!(eff < exact, "eff {eff} should trim the tail");
    }

    #[test]
    fn effective_diameter_of_clique_is_at_most_one() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(false, edges);
        let mut rng = SmallRng::seed_from_u64(10);
        let eff = effective_diameter(&g, Direction::Both, 6, &mut rng);
        assert!(eff <= 1.0 && eff > 0.0, "eff {eff}");
    }

    #[test]
    fn effective_diameter_degenerate_inputs() {
        let mut rng = SmallRng::seed_from_u64(11);
        let empty = circlekit_graph::GraphBuilder::undirected().build();
        assert_eq!(effective_diameter(&empty, Direction::Both, 4, &mut rng), 0.0);
        let mut b = circlekit_graph::GraphBuilder::undirected();
        b.reserve_nodes(3);
        let isolated = b.build();
        assert_eq!(
            effective_diameter(&isolated, Direction::Both, 3, &mut rng),
            0.0
        );
    }

    #[test]
    fn sampled_zero_sources_is_empty() {
        let g = path(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = average_shortest_path_sampled(&g, Direction::Both, 0, &mut rng);
        assert_eq!(s.pairs, 0);
    }

    #[test]
    fn controlled_variants_match_plain_when_uninterrupted() {
        use circlekit_graph::RunControl;
        let g = path(8);
        let control = RunControl::new();
        assert_eq!(
            diameter_exact_with_control(&g, Direction::Both, &control).unwrap(),
            diameter_exact(&g, Direction::Both)
        );
        let mut rng_a = SmallRng::seed_from_u64(5);
        let mut rng_b = SmallRng::seed_from_u64(5);
        assert_eq!(
            average_shortest_path_sampled_with_control(&g, Direction::Both, 4, &mut rng_a, &control)
                .unwrap(),
            average_shortest_path_sampled(&g, Direction::Both, 4, &mut rng_b)
        );
    }

    #[test]
    fn controlled_variants_stop_on_cancel() {
        use circlekit_graph::{Interrupted, RunControl};
        let g = path(8);
        let control = RunControl::new();
        control.cancel_flag().cancel();
        assert_eq!(
            diameter_exact_with_control(&g, Direction::Both, &control),
            Err(Interrupted::Cancelled)
        );
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(
            average_shortest_path_sampled_with_control(&g, Direction::Both, 4, &mut rng, &control),
            Err(Interrupted::Cancelled)
        );
    }
}
