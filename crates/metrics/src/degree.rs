//! Degree sequences and distributions.

use circlekit_graph::Graph;
use circlekit_stats::Summary;

/// Which degree to extract from a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DegreeKind {
    /// In-degree (equals total adjacency for undirected graphs).
    In,
    /// Out-degree (equals total adjacency for undirected graphs).
    Out,
    /// Total degree `d(v)` (in + out for directed graphs).
    #[default]
    Total,
}

impl DegreeKind {
    /// The degree of node `v` under this kind.
    pub fn of(self, graph: &Graph, v: u32) -> usize {
        match self {
            DegreeKind::In => graph.in_degree(v),
            DegreeKind::Out => graph.out_degree(v),
            DegreeKind::Total => graph.degree(v),
        }
    }
}

/// Degree sequence plus its summary statistics.
///
/// Backs the paper's Table II rows "average degree (in)" / "(out)" and the
/// Figure 3 in-degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    kind: DegreeKind,
    degrees: Vec<u64>,
    summary: Summary,
}

impl DegreeStats {
    /// Extracts the degree sequence of `kind` from `graph`.
    ///
    /// ```
    /// use circlekit_graph::Graph;
    /// use circlekit_metrics::{DegreeKind, DegreeStats};
    /// let g = Graph::from_edges(true, [(0u32, 1u32), (2, 1)]);
    /// let s = DegreeStats::new(&g, DegreeKind::In);
    /// assert_eq!(s.degrees(), &[0, 2, 0]);
    /// ```
    pub fn new(graph: &Graph, kind: DegreeKind) -> DegreeStats {
        let degrees: Vec<u64> = (0..graph.node_count() as u32)
            .map(|v| kind.of(graph, v) as u64)
            .collect();
        let as_f64: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
        DegreeStats {
            kind,
            degrees,
            summary: Summary::from_slice(&as_f64),
        }
    }

    /// The degree kind this sequence was extracted with.
    pub fn kind(&self) -> DegreeKind {
        self.kind
    }

    /// Per-node degrees, indexed by node id.
    pub fn degrees(&self) -> &[u64] {
        &self.degrees
    }

    /// Mean degree (the paper's "average degree" rows).
    pub fn average(&self) -> f64 {
        self.summary.mean
    }

    /// Largest degree.
    pub fn max(&self) -> u64 {
        self.summary.max as u64
    }

    /// Full summary statistics.
    pub fn summary(&self) -> Summary {
        self.summary
    }

    /// The positive degrees as `f64`, the form the distribution-fitting
    /// pipeline (`circlekit-statfit`) consumes; zero degrees are excluded
    /// because heavy-tail models are defined on `x >= 1`.
    pub fn positive_as_f64(&self) -> Vec<f64> {
        self.degrees
            .iter()
            .filter(|&&d| d > 0)
            .map(|&d| d as f64)
            .collect()
    }
}

/// Histogram of degree frequencies: `counts[d]` is the number of nodes with
/// degree `d`.
pub fn degree_counts(graph: &Graph, kind: DegreeKind) -> Vec<u64> {
    let stats = DegreeStats::new(graph, kind);
    let max = stats.max() as usize;
    let mut counts = vec![0u64; max + 1];
    for &d in stats.degrees() {
        counts[d as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_graph::Graph;

    fn star() -> Graph {
        // Node 0 points at 1..=4.
        Graph::from_edges(true, (1u32..=4).map(|i| (0, i)))
    }

    #[test]
    fn in_out_total_kinds_differ_on_directed() {
        let g = star();
        let out = DegreeStats::new(&g, DegreeKind::Out);
        let inn = DegreeStats::new(&g, DegreeKind::In);
        let tot = DegreeStats::new(&g, DegreeKind::Total);
        assert_eq!(out.degrees(), &[4, 0, 0, 0, 0]);
        assert_eq!(inn.degrees(), &[0, 1, 1, 1, 1]);
        assert_eq!(tot.degrees(), &[4, 1, 1, 1, 1]);
    }

    #[test]
    fn kinds_agree_on_undirected() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
        let out = DegreeStats::new(&g, DegreeKind::Out);
        let inn = DegreeStats::new(&g, DegreeKind::In);
        assert_eq!(out.degrees(), inn.degrees());
        assert_eq!(out.degrees(), &[1, 2, 1]);
    }

    #[test]
    fn average_degree_matches_handshake() {
        let g = star();
        let tot = DegreeStats::new(&g, DegreeKind::Total);
        assert!((tot.average() - 2.0 * 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_counts_tally() {
        let g = star();
        let counts = degree_counts(&g, DegreeKind::Total);
        assert_eq!(counts, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn positive_filter_drops_zeros() {
        let g = star();
        let inn = DegreeStats::new(&g, DegreeKind::In);
        assert_eq!(inn.positive_as_f64(), vec![1.0; 4]);
    }
}
