//! Ego-network membership and overlap statistics (Figures 1–2 of the
//! paper, and the "93.5 % of the ego-networks overlap" finding).

use circlekit_graph::VertexSet;

/// Aggregate statistics over a collection of ego networks.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EgoStats {
    /// Number of ego networks.
    pub ego_count: usize,
    /// Fraction of ego networks sharing at least one vertex with another
    /// ego network (the paper reports 93.5 %).
    pub overlap_fraction: f64,
    /// Histogram: `membership_histogram[k]` is the number of vertices that
    /// appear in exactly `k` ego networks (`k >= 1`); index 0 is unused.
    pub membership_histogram: Vec<u64>,
}

impl EgoStats {
    /// Computes all ego statistics in one pass.
    pub fn new(egos: &[VertexSet]) -> EgoStats {
        let counts = ego_membership_counts(egos);
        let max = counts.values().copied().max().unwrap_or(0) as usize;
        let mut histogram = vec![0u64; max + 1];
        for &c in counts.values() {
            histogram[c as usize] += 1;
        }
        EgoStats {
            ego_count: egos.len(),
            overlap_fraction: ego_overlap_fraction(egos),
            membership_histogram: histogram,
        }
    }

    /// Number of distinct vertices covered by any ego network.
    pub fn covered_vertices(&self) -> u64 {
        self.membership_histogram.iter().skip(1).sum()
    }

    /// `(membership_count, vertex_count)` pairs for non-empty histogram
    /// entries — the series plotted in the paper's Figure 2.
    pub fn membership_series(&self) -> Vec<(u32, u64)> {
        self.membership_histogram
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| (k as u32, c))
            .collect()
    }
}

/// For every vertex appearing in at least one ego network, the number of
/// ego networks containing it.
pub fn ego_membership_counts(egos: &[VertexSet]) -> std::collections::HashMap<u32, u32> {
    let mut counts = std::collections::HashMap::new();
    for ego in egos {
        for v in ego.iter() {
            *counts.entry(v).or_insert(0u32) += 1;
        }
    }
    counts
}

/// Fraction of ego networks that share at least one vertex with some other
/// ego network. Returns `0.0` for fewer than two ego networks.
///
/// Computed via membership counts in `O(total membership)` rather than by
/// pairwise intersection.
pub fn ego_overlap_fraction(egos: &[VertexSet]) -> f64 {
    if egos.len() < 2 {
        return 0.0;
    }
    let counts = ego_membership_counts(egos);
    let overlapping = egos
        .iter()
        .filter(|ego| ego.iter().any(|v| counts[&v] > 1))
        .count();
    overlapping as f64 / egos.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> VertexSet {
        VertexSet::from_vec(v.to_vec())
    }

    #[test]
    fn membership_counts_tally_appearances() {
        let egos = vec![set(&[0, 1, 2]), set(&[2, 3]), set(&[2, 3, 4])];
        let counts = ego_membership_counts(&egos);
        assert_eq!(counts[&2], 3);
        assert_eq!(counts[&3], 2);
        assert_eq!(counts[&0], 1);
        assert!(!counts.contains_key(&9));
    }

    #[test]
    fn overlap_fraction_all_overlapping() {
        let egos = vec![set(&[0, 1]), set(&[1, 2]), set(&[2, 0])];
        assert_eq!(ego_overlap_fraction(&egos), 1.0);
    }

    #[test]
    fn overlap_fraction_partial() {
        let egos = vec![set(&[0, 1]), set(&[1, 2]), set(&[7, 8]), set(&[9])];
        assert_eq!(ego_overlap_fraction(&egos), 0.5);
    }

    #[test]
    fn overlap_fraction_degenerate() {
        assert_eq!(ego_overlap_fraction(&[]), 0.0);
        assert_eq!(ego_overlap_fraction(&[set(&[1, 2])]), 0.0);
    }

    #[test]
    fn ego_stats_histogram() {
        let egos = vec![set(&[0, 1, 2]), set(&[2, 3])];
        let stats = EgoStats::new(&egos);
        assert_eq!(stats.ego_count, 2);
        // Vertices 0,1,3 in one ego; vertex 2 in two.
        assert_eq!(stats.membership_histogram, vec![0, 3, 1]);
        assert_eq!(stats.covered_vertices(), 4);
        assert_eq!(stats.membership_series(), vec![(1, 3), (2, 1)]);
    }

    #[test]
    fn empty_ego_collection() {
        let stats = EgoStats::new(&[]);
        assert_eq!(stats.ego_count, 0);
        assert_eq!(stats.covered_vertices(), 0);
        assert!(stats.membership_series().is_empty());
    }
}
