//! Structural metrics for social graphs.
//!
//! Implements the data-set characterisation of §IV of *"Are Circles
//! Communities?"*: degree distributions (§IV-A.1), clustering coefficients
//! (§IV-A.2), node separation — diameter and average shortest path —
//! (§IV-A.3), and the ego-network membership/overlap statistics behind
//! Figures 1–2.
//!
//! ```
//! use circlekit_graph::Graph;
//! use circlekit_metrics::{average_clustering, clustering_coefficients};
//!
//! // A triangle with a pendant vertex.
//! let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
//! let cc = clustering_coefficients(&g);
//! assert_eq!(cc[0], 1.0); // both of 0's neighbours are linked
//! assert_eq!(cc[3], 0.0); // degree-1 vertices have no triangles
//! assert!(average_clustering(&g) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assortativity;
mod betweenness;
mod clustering;
mod degree;
mod ego;
mod pagerank;
mod paths;

pub use assortativity::degree_assortativity;
pub use betweenness::{betweenness, betweenness_with_control, edge_betweenness};
pub use clustering::{average_clustering, clustering_coefficients, triangle_count, triangles_per_node};
pub use degree::{degree_counts, DegreeKind, DegreeStats};
pub use ego::{ego_membership_counts, ego_overlap_fraction, EgoStats};
pub use pagerank::pagerank;
pub use paths::{
    average_shortest_path, average_shortest_path_sampled,
    average_shortest_path_sampled_with_control, diameter_double_sweep, diameter_exact,
    diameter_exact_with_control, effective_diameter, PathStats,
};
