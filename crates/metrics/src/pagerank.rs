//! PageRank centrality.

use circlekit_graph::{Graph, NodeId};

/// Power-iteration PageRank with damping factor `damping` (conventionally
/// 0.85), run until the L1 change drops below `tolerance` or `max_iters`
/// sweeps elapse.
///
/// Dangling nodes (no out-edges) redistribute their mass uniformly, so
/// the result is a proper probability vector (sums to 1). For undirected
/// graphs every edge acts as a reciprocal arc pair. Returns an empty
/// vector for an empty graph.
///
/// # Panics
///
/// Panics if `damping` is outside `[0, 1)`.
///
/// ```
/// use circlekit_graph::Graph;
/// use circlekit_metrics::pagerank;
/// // Everyone links to the celebrity node 0.
/// let g = Graph::from_edges(true, (1..6u32).map(|v| (v, 0)));
/// let pr = pagerank(&g, 0.85, 1e-12, 100);
/// assert!(pr[0] > pr[1] * 3.0);
/// ```
pub fn pagerank(graph: &Graph, damping: f64, tolerance: f64, max_iters: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        // Teleport + dangling mass.
        let dangling: f64 = (0..n as NodeId)
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| rank[v as usize])
            .sum();
        let base = (1.0 - damping) / nf + damping * dangling / nf;
        next.iter_mut().for_each(|x| *x = base);
        for v in 0..n as NodeId {
            let out = graph.out_degree(v);
            if out > 0 {
                let share = damping * rank[v as usize] / out as f64;
                for &w in graph.out_neighbors(v) {
                    next[w as usize] += share;
                }
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_graph::GraphBuilder;

    fn assert_prob_vector(pr: &[f64]) {
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn uniform_on_symmetric_cycle() {
        let g = Graph::from_edges(true, (0..6u32).map(|i| (i, (i + 1) % 6)));
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        assert_prob_vector(&pr);
        for &x in &pr {
            assert!((x - 1.0 / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn celebrity_outranks_followers() {
        let g = Graph::from_edges(true, (1..10u32).map(|v| (v, 0)));
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        assert_prob_vector(&pr);
        assert!(pr[0] > 0.4, "celebrity rank {}", pr[0]);
        for v in 1..10 {
            assert!(pr[0] > 5.0 * pr[v]);
        }
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // 0 -> 1, 1 has no out-edges: without dangling handling the mass
        // would leak every iteration.
        let g = Graph::from_edges(true, [(0u32, 1u32)]);
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        assert_prob_vector(&pr);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn undirected_ranks_by_degree() {
        // A star: the hub should lead, leaves tie.
        let g = Graph::from_edges(false, (1..6u32).map(|v| (0, v)));
        let pr = pagerank(&g, 0.85, 1e-12, 200);
        assert_prob_vector(&pr);
        assert!(pr[0] > pr[1]);
        for v in 2..6 {
            assert!((pr[v] - pr[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_damping_is_uniform() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2)]);
        let pr = pagerank(&g, 0.0, 1e-12, 50);
        for &x in &pr {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g = GraphBuilder::directed().build();
        assert!(pagerank(&g, 0.85, 1e-9, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_damping_one() {
        let g = Graph::from_edges(true, [(0u32, 1u32)]);
        pagerank(&g, 1.0, 1e-9, 10);
    }
}
