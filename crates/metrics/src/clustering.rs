//! Triangle counting and clustering coefficients (§IV-A.2 of the paper).

use circlekit_graph::{Graph, NodeId};
use std::borrow::Cow;

/// Returns the graph's undirected view: a borrowed reference when already
/// undirected, otherwise a collapsed copy. Clustering is a triangle property
/// and the paper's comparison values (Magno et al., Gong et al.) are
/// computed on the symmetrised graph.
fn undirected_view(graph: &Graph) -> Cow<'_, Graph> {
    if graph.is_directed() {
        Cow::Owned(graph.to_undirected())
    } else {
        Cow::Borrowed(graph)
    }
}

/// Size of the sorted intersection of two ascending slices.
fn sorted_intersection_len(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Number of triangles each node participates in (undirected view).
pub fn triangles_per_node(graph: &Graph) -> Vec<u64> {
    let g = undirected_view(graph);
    let n = g.node_count();
    let mut tri = vec![0u64; n];
    for v in 0..n as NodeId {
        let nv = g.out_neighbors(v);
        let mut t = 0u64;
        for &u in nv {
            // Each triangle {v, u, w} is counted once per neighbour u of v
            // with w in N(v) ∩ N(u); dividing by 2 corrects the double count.
            t += sorted_intersection_len(nv, g.out_neighbors(u)) as u64;
        }
        tri[v as usize] = t / 2;
    }
    tri
}

/// Total number of distinct triangles in the graph (undirected view).
pub fn triangle_count(graph: &Graph) -> u64 {
    triangles_per_node(graph).iter().sum::<u64>() / 3
}

/// Local clustering coefficient of every node: triangles through `v`
/// divided by `k(k-1)/2` possible, `0.0` for degree `< 2` (undirected view).
///
/// ```
/// use circlekit_graph::Graph;
/// use circlekit_metrics::clustering_coefficients;
/// let square = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(clustering_coefficients(&square), vec![0.0; 4]);
/// ```
pub fn clustering_coefficients(graph: &Graph) -> Vec<f64> {
    let g = undirected_view(graph);
    let tri = {
        // Recompute on the view to avoid symmetrising twice.
        let n = g.node_count();
        let mut tri = vec![0u64; n];
        for v in 0..n as NodeId {
            let nv = g.out_neighbors(v);
            let mut t = 0u64;
            for &u in nv {
                t += sorted_intersection_len(nv, g.out_neighbors(u)) as u64;
            }
            tri[v as usize] = t / 2;
        }
        tri
    };
    (0..g.node_count() as NodeId)
        .map(|v| {
            let k = g.out_neighbors(v).len() as u64;
            if k < 2 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (k * (k - 1)) as f64
            }
        })
        .collect()
}

/// Mean local clustering coefficient over all nodes of degree ≥ 2 (nodes
/// that cannot close a triangle are excluded, following common practice;
/// the paper reports an average of 0.4901 for its Google+ data set).
///
/// Returns `0.0` if no node has degree ≥ 2.
pub fn average_clustering(graph: &Graph) -> f64 {
    let g = undirected_view(graph);
    let cc = clustering_coefficients(&g);
    let eligible: Vec<f64> = (0..g.node_count() as NodeId)
        .filter(|&v| g.out_neighbors(v).len() >= 2)
        .map(|v| cc[v as usize])
        .collect();
    if eligible.is_empty() {
        0.0
    } else {
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(k: u32) -> Graph {
        let mut edges = Vec::new();
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((u, v));
            }
        }
        Graph::from_edges(false, edges)
    }

    #[test]
    fn clique_triangles_and_cc() {
        let g = clique(5);
        assert_eq!(triangle_count(&g), 10); // C(5,3)
        assert_eq!(clustering_coefficients(&g), vec![1.0; 5]);
        assert_eq!(average_clustering(&g), 1.0);
    }

    #[test]
    fn tree_has_no_triangles() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (0, 2), (0, 3)]);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn triangle_with_pendant() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(triangle_count(&g), 1);
        let cc = clustering_coefficients(&g);
        assert_eq!(cc[0], 1.0);
        assert_eq!(cc[1], 1.0);
        // Node 2 has 3 neighbours, 1 linked pair of them: 2*1/(3*2) = 1/3.
        assert!((cc[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cc[3], 0.0);
        // Average over nodes with degree >= 2 (0, 1, 2).
        assert!((average_clustering(&g) - (1.0 + 1.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn directed_clustering_uses_undirected_view() {
        // Directed cycle 0->1->2->0 forms one undirected triangle.
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(average_clustering(&g), 1.0);
    }

    #[test]
    fn reciprocal_arcs_do_not_double_count() {
        let g = Graph::from_edges(
            true,
            [(0u32, 1u32), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)],
        );
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn triangles_per_node_sums_to_three_per_triangle() {
        let g = clique(4); // 4 triangles, each node in 3
        assert_eq!(triangles_per_node(&g), vec![3, 3, 3, 3]);
        assert_eq!(triangle_count(&g), 4);
    }
}
