//! Degree assortativity (Newman's degree-correlation coefficient).

use circlekit_graph::Graph;

/// Pearson correlation of the total degrees at the two endpoints of every
/// edge (Newman 2002). Positive values mean high-degree vertices attach to
/// each other (typical for social graphs); negative values indicate
/// hub-and-spoke mixing (typical for technological graphs and — relevant
/// here — for celebrity-dominated circles).
///
/// For directed graphs each arc contributes one (source-degree,
/// target-degree) pair; for undirected graphs each edge contributes both
/// orientations, making the measure symmetric. Returns `None` for graphs
/// with no edges or with constant degrees (the correlation is undefined).
///
/// ```
/// use circlekit_graph::Graph;
/// use circlekit_metrics::degree_assortativity;
/// // A star is maximally disassortative.
/// let star = Graph::from_edges(false, (1..6u32).map(|v| (0, v)));
/// assert!(degree_assortativity(&star).unwrap() < -0.99);
/// ```
pub fn degree_assortativity(graph: &Graph) -> Option<f64> {
    let mut xs: Vec<f64> = Vec::with_capacity(graph.edge_count() * 2);
    let mut ys: Vec<f64> = Vec::with_capacity(graph.edge_count() * 2);
    for (u, v) in graph.edges() {
        let (du, dv) = (graph.degree(u) as f64, graph.degree(v) as f64);
        xs.push(du);
        ys.push(dv);
        if !graph.is_directed() {
            xs.push(dv);
            ys.push(du);
        }
    }
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graph_is_undefined() {
        // Every degree equal: correlation undefined.
        let ring = Graph::from_edges(false, (0..6u32).map(|i| (i, (i + 1) % 6)));
        assert_eq!(degree_assortativity(&ring), None);
    }

    #[test]
    fn star_is_disassortative() {
        let star = Graph::from_edges(false, (1..8u32).map(|v| (0, v)));
        let r = degree_assortativity(&star).unwrap();
        assert!(r < -0.99, "r = {r}");
    }

    #[test]
    fn degree_homophily_is_assortative() {
        // A 5-clique (degrees 4) next to a disjoint path (degrees <= 2):
        // every edge connects vertices of similar degree.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        edges.extend((5..14u32).map(|i| (i, i + 1)));
        let g = Graph::from_edges(false, edges);
        let r = degree_assortativity(&g).unwrap();
        assert!(r > 0.5, "r = {r}");
    }

    #[test]
    fn empty_graph_is_none() {
        let g = circlekit_graph::GraphBuilder::undirected().build();
        assert_eq!(degree_assortativity(&g), None);
    }

    #[test]
    fn directed_uses_arc_orientation() {
        // Hub fan-out: source always high degree, targets low.
        let g = Graph::from_edges(true, (1..6u32).map(|v| (0, v)));
        let r = degree_assortativity(&g);
        // All pairs are (5, 1): zero variance in each coordinate -> None.
        assert_eq!(r, None);
        // Adding one peer-to-peer arc introduces variance.
        let g = Graph::from_edges(true, (1..6u32).map(|v| (0, v)).chain([(1, 2)]));
        assert!(degree_assortativity(&g).unwrap() < 0.0);
    }

    #[test]
    fn assortativity_in_minus_one_one() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)]);
        if let Some(r) = degree_assortativity(&g) {
            assert!((-1.0..=1.0).contains(&r));
        }
    }
}
