//! Betweenness centrality (Brandes' algorithm).

use circlekit_graph::{Direction, Graph, Interrupted, NodeId, RunControl};

/// Node betweenness centrality via Brandes' accumulation, treating the
/// graph as unweighted and (for directed graphs) following the given
/// direction for path counting.
///
/// Returns one value per node: the number of shortest paths through it,
/// summed over all ordered source–target pairs (no normalisation, so
/// values are comparable within one graph).
pub fn betweenness(graph: &Graph, dir: Direction) -> Vec<f64> {
    betweenness_with_control(graph, dir, &RunControl::new())
        .expect("a default RunControl never interrupts")
}

/// Cancellable [`betweenness`]: `control` is observed once per BFS
/// source — the natural checkpoint of Brandes' outer loop — so an
/// `O(n · m)` run on a crawl-scale graph can be stopped or deadlined
/// without burning the full cost.
///
/// Progress is reported as completed sources out of `node_count`.
///
/// # Errors
///
/// Returns [`Interrupted`] if the control asked the run to stop;
/// betweenness accumulations from a partial source scan are biased, so no
/// partial vector is returned.
pub fn betweenness_with_control(
    graph: &Graph,
    dir: Direction,
    control: &RunControl,
) -> Result<Vec<f64>, Interrupted> {
    let n = graph.node_count();
    let mut centrality = vec![0.0f64; n];
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut predecessors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();

    for s in 0..n as NodeId {
        control.check()?;
        control.report("betweenness", s as usize, n);
        // Reset per-source state.
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = -1;
            delta[v] = 0.0;
            predecessors[v].clear();
        }
        stack.clear();
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            let dv = dist[v as usize];
            for w in graph.neighbors(v, dir) {
                let wi = w as usize;
                if dist[wi] < 0 {
                    dist[wi] = dv + 1;
                    queue.push_back(w);
                }
                if dist[wi] == dv + 1 {
                    sigma[wi] += sigma[v as usize];
                    predecessors[wi].push(v);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        while let Some(w) = stack.pop() {
            let wi = w as usize;
            let coeff = (1.0 + delta[wi]) / sigma[wi];
            for &v in &predecessors[wi] {
                delta[v as usize] += sigma[v as usize] * coeff;
            }
            if w != s {
                centrality[wi] += delta[wi];
            }
        }
    }
    // Undirected graphs count each pair twice.
    if !graph.is_directed() {
        for c in centrality.iter_mut() {
            *c /= 2.0;
        }
    }
    Ok(centrality)
}

/// Edge betweenness centrality: like [`betweenness`] but accumulated on
/// edges. Returns a map from the graph's canonical edge representation
/// (as yielded by [`Graph::edges`]) to its centrality.
pub fn edge_betweenness(
    graph: &Graph,
    dir: Direction,
) -> std::collections::HashMap<(NodeId, NodeId), f64> {
    let n = graph.node_count();
    let mut centrality: std::collections::HashMap<(NodeId, NodeId), f64> =
        graph.edges().map(|e| (e, 0.0)).collect();
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut predecessors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();

    let canonical = |u: NodeId, v: NodeId| {
        if graph.is_directed() || u <= v {
            (u, v)
        } else {
            (v, u)
        }
    };

    for s in 0..n as NodeId {
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = -1;
            delta[v] = 0.0;
            predecessors[v].clear();
        }
        stack.clear();
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            let dv = dist[v as usize];
            for w in graph.neighbors(v, dir) {
                let wi = w as usize;
                if dist[wi] < 0 {
                    dist[wi] = dv + 1;
                    queue.push_back(w);
                }
                if dist[wi] == dv + 1 {
                    sigma[wi] += sigma[v as usize];
                    predecessors[wi].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            let wi = w as usize;
            let coeff = (1.0 + delta[wi]) / sigma[wi];
            for &v in &predecessors[wi] {
                let contribution = sigma[v as usize] * coeff;
                delta[v as usize] += contribution;
                if let Some(slot) = centrality.get_mut(&canonical(v, w)) {
                    *slot += contribution;
                }
            }
        }
    }
    if !graph.is_directed() {
        for c in centrality.values_mut() {
            *c /= 2.0;
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_center_has_max_betweenness() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]);
        let b = betweenness(&g, Direction::Both);
        // P5: exact values 0, 3, 4, 3, 0.
        assert_eq!(b, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_hub_carries_all_paths() {
        let g = Graph::from_edges(false, (1..6u32).map(|v| (0, v)));
        let b = betweenness(&g, Direction::Both);
        // Hub: C(5,2) = 10 pairs pass through.
        assert_eq!(b[0], 10.0);
        for &x in &b[1..6] {
            assert_eq!(x, 0.0);
        }
    }

    #[test]
    fn cycle_is_symmetric() {
        let g = Graph::from_edges(false, (0..6u32).map(|i| (i, (i + 1) % 6)));
        let b = betweenness(&g, Direction::Both);
        for &x in &b {
            assert!((x - b[0]).abs() < 1e-9);
        }
        assert!(b[0] > 0.0);
    }

    #[test]
    fn bridge_edge_has_max_edge_betweenness() {
        // Two triangles joined by the bridge (2, 3).
        let g = Graph::from_edges(
            false,
            [(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
        );
        let eb = edge_betweenness(&g, Direction::Both);
        let bridge = eb[&(2, 3)];
        for (&e, &c) in &eb {
            if e != (2, 3) {
                assert!(bridge > c, "bridge {bridge} vs {e:?} {c}");
            }
        }
        // Bridge carries all 3x3 cross pairs.
        assert_eq!(bridge, 9.0);
    }

    #[test]
    fn directed_betweenness_follows_arcs() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2)]);
        let b = betweenness(&g, Direction::Out);
        assert_eq!(b, vec![0.0, 1.0, 0.0]); // only 0 -> 2 passes through 1
    }

    #[test]
    fn empty_graph() {
        let g = circlekit_graph::GraphBuilder::undirected().build();
        assert!(betweenness(&g, Direction::Both).is_empty());
        assert!(edge_betweenness(&g, Direction::Both).is_empty());
    }

    #[test]
    fn controlled_betweenness_matches_plain_when_uninterrupted() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]);
        let plain = betweenness(&g, Direction::Both);
        let controlled =
            betweenness_with_control(&g, Direction::Both, &RunControl::new()).unwrap();
        assert_eq!(plain, controlled);
    }

    #[test]
    fn cancelled_betweenness_stops_cleanly() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 4)]);
        let control = RunControl::new();
        control.cancel_flag().cancel();
        assert_eq!(
            betweenness_with_control(&g, Direction::Both, &control),
            Err(Interrupted::Cancelled)
        );
    }

    #[test]
    fn betweenness_reports_per_source_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
        let seen = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&seen);
        let control = RunControl::new().with_progress(move |p| {
            assert_eq!(p.stage, "betweenness");
            assert_eq!(p.total, 3);
            sink.fetch_add(1, Ordering::SeqCst);
        });
        betweenness_with_control(&g, Direction::Both, &control).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }
}
