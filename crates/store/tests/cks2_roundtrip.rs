//! CKS2 end-to-end guarantees at the store level:
//!
//! * pack → load reproduces the original graph and groups bit-exactly
//!   (the permutation is undone on load), through every entry point —
//!   buffered decode, zero-copy view, and `MappedSnapshot` dispatch;
//! * the streaming packer emits **byte-identical** files to the
//!   in-memory packer, including under a tiny memory budget that forces
//!   external-sort spills;
//! * paged scoring over a memory-mapped CKS2 file is **bit-identical**
//!   to the offline scorer over the materialised graph;
//! * CKS2 files are smaller than their CKS1 equivalents on a realistic
//!   synthetic graph.

use circlekit_graph::{Graph, NodeId, VertexSet};
use circlekit_scoring::{PagedScorer, Scorer, ScoringFunction};
use circlekit_store::{
    decode_snapshot, save_cks2_snapshot, save_snapshot, snapshot_format, stream_pack_cks2,
    write_cks2_snapshot, write_snapshot, Cks2PackOptions, Cks2View, MappedSnapshot, Snapshot,
    SnapshotFormat, StoreError, StreamPackOptions,
};
use circlekit_synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::Cursor;
use std::path::PathBuf;

/// A scratch directory unique to this test binary's process.
fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("circlekit-cks2-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn pack2(graph: &Graph, groups: &[VertexSet], force_wide: bool) -> Vec<u8> {
    let mut cursor = Cursor::new(Vec::new());
    write_cks2_snapshot(graph, groups, &mut cursor, &Cks2PackOptions { force_wide })
        .expect("pack cks2");
    cursor.into_inner()
}

fn pack1(graph: &Graph, groups: &[VertexSet]) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_snapshot(graph, groups, &mut bytes).expect("pack cks1");
    bytes
}

/// Copies `bytes` into an 8-aligned buffer so `Cks2View::parse` can be
/// exercised deterministically (a plain `Vec<u8>` has no alignment
/// guarantee).
fn aligned(bytes: &[u8]) -> Vec<u8> {
    let words = vec![0u64; bytes.len().div_ceil(8)];
    let mut buf = words_to_bytes(words);
    buf.truncate(bytes.len());
    buf.copy_from_slice(bytes);
    buf
}

fn words_to_bytes(words: Vec<u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Asserts that every load path of a CKS2 byte image reproduces exactly
/// `graph` + `groups` (original ids).
fn assert_loads_back(bytes: &[u8], graph: &Graph, groups: &[VertexSet]) {
    assert_eq!(snapshot_format(bytes), Some(SnapshotFormat::Cks2));

    // Portable buffered path.
    let snap = decode_snapshot(bytes).expect("buffered decode");
    assert_eq!(&snap.graph, graph);
    assert_eq!(snap.groups.as_slice(), groups);

    // Zero-copy view path (aligned copy; little-endian hosts).
    let buf = aligned(bytes);
    match Cks2View::parse(&buf) {
        Ok(view) => {
            let Snapshot { graph: g2, groups: s2 } = view.to_snapshot().expect("view snapshot");
            assert_eq!(&g2, graph);
            assert_eq!(s2.as_slice(), groups);
        }
        Err(StoreError::NotZeroCopy { .. }) => {} // big-endian host: buffered path covered above
        Err(e) => panic!("unexpected view error: {e}"),
    }
}

fn sample_directed() -> (Graph, Vec<VertexSet>) {
    let graph = Graph::from_edges(
        true,
        [(0u32, 1u32), (0, 2), (1, 2), (2, 0), (3, 0), (3, 1), (4, 3), (2, 4)],
    );
    let groups = vec![
        VertexSet::from_iter([0u32, 1, 2]),
        VertexSet::from_iter([3u32, 4]),
        VertexSet::new(),
        VertexSet::from_iter([0u32, 4]),
    ];
    (graph, groups)
}

fn sample_undirected() -> (Graph, Vec<VertexSet>) {
    let graph = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (1, 3), (4, 0)]);
    let groups = vec![VertexSet::from_iter([0u32, 1, 3]), VertexSet::from_iter([2u32, 4])];
    (graph, groups)
}

#[test]
fn directed_snapshot_roundtrips_with_groups() {
    let (graph, groups) = sample_directed();
    assert_loads_back(&pack2(&graph, &groups, false), &graph, &groups);
}

#[test]
fn undirected_snapshot_roundtrips_with_groups() {
    let (graph, groups) = sample_undirected();
    assert_loads_back(&pack2(&graph, &groups, false), &graph, &groups);
}

#[test]
fn snapshot_without_groups_roundtrips() {
    let (graph, _) = sample_undirected();
    assert_loads_back(&pack2(&graph, &[], false), &graph, &[]);
}

#[test]
fn empty_graph_roundtrips() {
    let graph = Graph::from_edges(false, std::iter::empty::<(NodeId, NodeId)>());
    assert_loads_back(&pack2(&graph, &[], false), &graph, &[]);
}

#[test]
fn force_wide_roundtrips_identically_and_is_flagged() {
    let (graph, groups) = sample_directed();
    let narrow = pack2(&graph, &groups, false);
    let wide = pack2(&graph, &groups, true);
    assert_ne!(narrow, wide);
    assert!(wide.len() > narrow.len(), "u64 offsets must cost bytes");
    assert_loads_back(&wide, &graph, &groups);

    let buf = aligned(&wide);
    if let Ok(view) = Cks2View::parse(&buf) {
        assert!(view.is_wide());
    }
    let buf = aligned(&narrow);
    if let Ok(view) = Cks2View::parse(&buf) {
        assert!(!view.is_wide());
    }
}

#[test]
fn permutation_is_total_degree_descending_with_id_tiebreak() {
    let (graph, groups) = sample_directed();
    let bytes = pack2(&graph, &groups, false);
    let buf = aligned(&bytes);
    let Ok(view) = Cks2View::parse(&buf) else {
        return; // big-endian host
    };
    let perm = view.permutation();
    assert_eq!(perm.len(), graph.node_count());
    let key = |old: u32| (std::cmp::Reverse(graph.degree(old)), old);
    for w in perm.windows(2) {
        assert!(key(w[0]) < key(w[1]), "permutation not degree-sorted: {perm:?}");
    }
}

#[test]
fn mapped_snapshot_dispatches_on_magic() {
    let (graph, groups) = sample_undirected();
    let dir = temp_dir();
    let p1 = dir.join("dispatch.cks1");
    let p2 = dir.join("dispatch.cks2");
    save_snapshot(&p1, &graph, &groups).expect("save cks1");
    save_cks2_snapshot(&p2, &graph, &groups, &Cks2PackOptions::default()).expect("save cks2");

    let m1 = MappedSnapshot::open(&p1).expect("open cks1");
    let m2 = MappedSnapshot::open(&p2).expect("open cks2");
    assert_eq!(m1.format(), Some(SnapshotFormat::Cks1));
    assert_eq!(m2.format(), Some(SnapshotFormat::Cks2));
    assert_eq!(SnapshotFormat::Cks1.name(), "cks1");
    assert_eq!(SnapshotFormat::Cks2.name(), "cks2");

    let s1 = m1.load().expect("load cks1");
    let s2 = m2.load().expect("load cks2");
    assert_eq!(s1.graph, s2.graph);
    assert_eq!(s1.groups, s2.groups);
    assert_eq!(s2.graph, graph);
    assert_eq!(s2.groups, groups);
}

/// Renders `graph` as the text edge list the streaming packer ingests,
/// with the extras text ingestion tolerates: comments, blank lines, and
/// (when asked) duplicate and self-loop lines.
fn edge_text(graph: &Graph, noise: bool) -> String {
    let mut text = String::from("# edge list\n\n");
    for u in 0..graph.node_count() as NodeId {
        for &v in graph.out_neighbors(u) {
            if !graph.is_directed() && v < u {
                continue; // each undirected edge once
            }
            text.push_str(&format!("{u} {v}\n"));
            if noise && (u + v) % 3 == 0 {
                text.push_str(&format!("{u}\t{v}\n")); // duplicate, tab-separated
            }
        }
        if noise && u % 4 == 0 {
            text.push_str(&format!("{u} {u}\n")); // self loop
        }
    }
    text
}

fn assert_stream_matches_memory(
    graph: &Graph,
    groups: &[VertexSet],
    budget: usize,
    label: &str,
) -> circlekit_store::StreamPackReport {
    let dir = temp_dir();
    let edges = dir.join(format!("{label}.edges"));
    let out = dir.join(format!("{label}.cks2"));
    std::fs::write(&edges, edge_text(graph, true)).expect("write edges");

    let report = stream_pack_cks2(
        &edges,
        groups,
        &out,
        &StreamPackOptions {
            directed: graph.is_directed(),
            memory_budget_bytes: budget,
            ..StreamPackOptions::default()
        },
    )
    .expect("stream pack");

    let streamed = std::fs::read(&out).expect("read streamed");
    let in_memory = pack2(graph, groups, false);
    assert_eq!(streamed, in_memory, "streamed CKS2 must be byte-identical to in-memory pack");
    assert_eq!(report.bytes_written, streamed.len() as u64);
    assert_eq!(report.nodes, graph.node_count() as u64);
    assert_eq!(report.edge_count, graph.edge_count() as u64);
    assert!(report.self_loops_dropped > 0, "noise injected self loops");
    report
}

#[test]
fn streaming_pack_is_byte_identical_to_in_memory_pack() {
    let (directed, dgroups) = sample_directed();
    let (undirected, ugroups) = sample_undirected();
    assert_stream_matches_memory(&directed, &dgroups, 256 << 20, "small-directed");
    assert_stream_matches_memory(&undirected, &ugroups, 256 << 20, "small-undirected");
    assert_stream_matches_memory(&undirected, &[], 256 << 20, "small-nogroups");
}

#[test]
fn streaming_pack_with_tiny_budget_spills_and_stays_byte_identical() {
    // A graph with enough arcs to overflow the minimum 4096-key run
    // buffer many times over, so the external sort actually spills.
    let mut rng = SmallRng::seed_from_u64(7);
    let data = presets::google_plus().scaled(0.02).generate(&mut rng);
    let report =
        assert_stream_matches_memory(&data.graph, &data.groups, 1, "tiny-budget");
    assert!(report.runs_spilled > 0, "tiny budget must spill runs: {report:?}");

    // Same input, roomy budget: identical output file, no spills.
    let report = assert_stream_matches_memory(&data.graph, &data.groups, 256 << 20, "big-budget");
    assert_eq!(report.runs_spilled, 0, "roomy budget must not spill: {report:?}");
}

#[test]
fn streaming_pack_rejects_malformed_lines_with_line_numbers() {
    let dir = temp_dir();
    let edges = dir.join("malformed.edges");
    let out = dir.join("malformed.cks2");
    std::fs::write(&edges, "0 1\n1 2\nnot an edge\n").expect("write edges");
    let err = stream_pack_cks2(&edges, &[], &out, &StreamPackOptions::default())
        .expect_err("malformed line must fail");
    let StoreError::Io(io) = err else {
        panic!("expected Io error, got {err:?}");
    };
    assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    assert!(io.to_string().contains("line 3"), "unexpected message: {io}");
    assert!(!out.exists() || std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0) == 0 || {
        // A partial file may exist; it must not parse as a snapshot.
        circlekit_store::file_snapshot_format(&out).map_or(true, |f| {
            f.is_none() || MappedSnapshot::open(&out).and_then(|m| m.load()).is_err()
        })
    });
}

#[test]
fn streaming_pack_rejects_out_of_range_group_members() {
    let dir = temp_dir();
    let edges = dir.join("groups-range.edges");
    let out = dir.join("groups-range.cks2");
    std::fs::write(&edges, "0 1\n1 2\n").expect("write edges");
    let groups = vec![VertexSet::from_iter([0u32, 99])];
    let err = stream_pack_cks2(&edges, &groups, &out, &StreamPackOptions::default())
        .expect_err("member outside the graph must fail");
    assert!(matches!(err, StoreError::Graph(_)), "unexpected error: {err:?}");
}

#[test]
fn cks2_is_smaller_than_cks1_on_a_synthetic_dataset() {
    let mut rng = SmallRng::seed_from_u64(42);
    let data = presets::google_plus().scaled(0.05).generate(&mut rng);
    let cks1 = pack1(&data.graph, &data.groups);
    let cks2 = pack2(&data.graph, &data.groups, false);
    assert!(
        (cks2.len() as f64) < 0.7 * cks1.len() as f64,
        "CKS2 ({}) should be well under CKS1 ({})",
        cks2.len(),
        cks1.len()
    );
}

/// Paged scoring over a memory-mapped CKS2 file must be bit-identical —
/// every f64, compared by bit pattern — to the offline scorer over the
/// materialised graph, because `Cks2Paged` serves original-id adjacency
/// (identical iteration order, identical accumulation order).
#[test]
fn paged_scoring_over_mmap_is_bit_identical_to_offline_scorer() {
    let mut rng = SmallRng::seed_from_u64(1234);
    let data = presets::google_plus().scaled(0.03).generate(&mut rng);
    let dir = temp_dir();
    let path = dir.join("paged-score.cks2");
    save_cks2_snapshot(&path, &data.graph, &data.groups, &Cks2PackOptions::default())
        .expect("save cks2");

    let mapped = MappedSnapshot::open(&path).expect("open");
    let view = mapped.view2().expect("view2");
    let paged = view.paged().expect("paged adapter");
    let groups = view.to_groups().expect("groups");
    assert_eq!(groups, data.groups);

    let offline = Scorer::new(&data.graph)
        .score_table(&ScoringFunction::ALL, &data.groups);
    let paged_table = PagedScorer::new(&paged)
        .expect("median degree pass")
        .score_table(&ScoringFunction::ALL, &groups)
        .expect("paged score");

    assert_eq!(offline.functions(), paged_table.functions());
    assert_eq!(offline.set_count(), paged_table.set_count());
    for i in 0..offline.set_count() {
        let (a, b) = (offline.row(i), paged_table.row(i));
        assert_eq!(a.len(), b.len());
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "set {i}, function {:?}: offline {x} != paged {y}",
                offline.functions()[j]
            );
        }
    }
}

/// `in_neighbors` falls back to the out list for undirected snapshots,
/// and the paged adapter reports out-of-range vertices as typed errors.
#[test]
fn paged_adapter_serves_original_ids() {
    use circlekit_graph::AdjacencyAccess;

    let (graph, groups) = sample_directed();
    let bytes = pack2(&graph, &groups, false);
    let buf = aligned(&bytes);
    let Ok(view) = Cks2View::parse(&buf) else {
        return; // big-endian host
    };
    let paged = view.paged().expect("paged");
    for v in 0..graph.node_count() as NodeId {
        let out = paged
            .with_out_neighbors(v, <[NodeId]>::to_vec)
            .expect("out neighbors");
        assert_eq!(out.as_slice(), graph.out_neighbors(v), "out list of {v}");
        let inn = paged
            .with_in_neighbors(v, <[NodeId]>::to_vec)
            .expect("in neighbors");
        assert_eq!(inn.as_slice(), graph.in_neighbors(v), "in list of {v}");
    }
    let err = paged
        .with_out_neighbors(graph.node_count() as NodeId, |_| ())
        .expect_err("out of range");
    assert!(matches!(err, StoreError::Graph(_)), "unexpected error: {err:?}");
}

/// `--force`-style overwrite semantics live in the CLI; at the store
/// level, packing over an existing path truncates it cleanly.
#[test]
fn save_cks2_truncates_an_existing_file() {
    let (graph, groups) = sample_undirected();
    let dir = temp_dir();
    let path = dir.join("truncate.cks2");
    std::fs::write(&path, vec![0xAB; 1 << 20]).expect("pre-fill");
    save_cks2_snapshot(&path, &graph, &groups, &Cks2PackOptions::default()).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    assert_eq!(bytes, pack2(&graph, &groups, false));
}
