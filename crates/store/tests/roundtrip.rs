//! Round-trip property: pack → load reproduces the in-memory graph and
//! groups bit-identically, through every load path, for arbitrary edge
//! lists and group collections — i.e. a snapshot is indistinguishable
//! from re-ingesting the text it was packed from.

use circlekit_graph::{Graph, VertexSet};
use circlekit_store::{
    decode_snapshot, load_snapshot, save_snapshot, write_snapshot, MappedSnapshot, SnapshotView,
    StoreError,
};
use proptest::prelude::*;

fn arb_edges(n: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..200)
}

fn arb_groups(n: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0..n, 0..20), 0..8)
}

/// Builds the groups the way text ingestion does: arbitrary member lists
/// become sorted duplicate-free vertex sets.
fn to_vertex_sets(raw: &[Vec<u32>]) -> Vec<VertexSet> {
    raw.iter().map(|members| members.iter().copied().collect()).collect()
}

/// Asserts every load path reproduces `graph` + `groups` exactly from
/// `bytes`.
fn assert_roundtrips(bytes: &[u8], graph: &Graph, groups: &[VertexSet]) {
    let snap = decode_snapshot(bytes).expect("buffered decode");
    assert_eq!(&snap.graph, graph, "buffered graph differs");
    assert_eq!(snap.groups, groups, "buffered groups differ");

    // The zero-copy view over an aligned copy of the same bytes.
    let mut buf = vec![0u64; bytes.len().div_ceil(8)];
    // SAFETY: the u64 buffer spans at least `bytes.len()` bytes, and any
    // byte pattern is a valid u64.
    let dst = unsafe {
        std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, bytes.len())
    };
    dst.copy_from_slice(bytes);
    match SnapshotView::parse(dst) {
        Ok(view) => {
            let from_view = view.to_snapshot().expect("view materialises");
            assert_eq!(&from_view.graph, graph, "view graph differs");
            assert_eq!(from_view.groups, groups, "view groups differ");
            // Spot-check the borrowed accessors against the graph.
            assert_eq!(view.node_count(), graph.node_count());
            assert_eq!(view.edge_count(), graph.edge_count());
            for v in 0..graph.node_count() as u32 {
                let expected: Vec<u32> =
                    graph.neighbors(v, circlekit_graph::Direction::Out).collect();
                assert_eq!(view.out_neighbors(v), expected.as_slice(), "node {v}");
            }
            for (i, g) in groups.iter().enumerate() {
                let expected: Vec<u32> = g.iter().collect();
                assert_eq!(view.group(i), expected.as_slice(), "group {i}");
            }
        }
        // Only tolerable on targets where the view is unsupported.
        Err(StoreError::NotZeroCopy { why }) => {
            panic!("aligned little-endian buffer rejected as not zero-copy: {why}")
        }
        Err(e) => panic!("view parse failed: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_load_roundtrip_directed(
        edges in arb_edges(64),
        raw_groups in arb_groups(64),
    ) {
        let graph = Graph::from_edges(true, edges);
        let groups = to_vertex_sets(&raw_groups);
        // Pack only groups whose members exist (node count is edge-derived).
        let groups: Vec<VertexSet> = groups
            .into_iter()
            .filter(|g| g.iter().all(|v| (v as usize) < graph.node_count()))
            .collect();
        let mut bytes = Vec::new();
        write_snapshot(&graph, &groups, &mut bytes).expect("pack");
        assert_roundtrips(&bytes, &graph, &groups);
    }

    #[test]
    fn pack_load_roundtrip_undirected(
        edges in arb_edges(48),
        raw_groups in arb_groups(48),
    ) {
        let graph = Graph::from_edges(false, edges);
        let groups = to_vertex_sets(&raw_groups);
        let groups: Vec<VertexSet> = groups
            .into_iter()
            .filter(|g| g.iter().all(|v| (v as usize) < graph.node_count()))
            .collect();
        let mut bytes = Vec::new();
        write_snapshot(&graph, &groups, &mut bytes).expect("pack");
        assert_roundtrips(&bytes, &graph, &groups);
    }

    #[test]
    fn snapshot_equals_text_ingestion(edges in arb_edges(64)) {
        // The property the whole store rests on: pack(parse(text)) then
        // load gives the same graph as parse(text) — so downstream
        // results cannot depend on which path loaded the data.
        let mut text = String::new();
        for (u, v) in &edges {
            text.push_str(&format!("{u} {v}\n"));
        }
        let parsed = circlekit_graph::parse_edge_list(&text).expect("text parses");
        let from_text = Graph::from_edges(true, parsed);

        let mut bytes = Vec::new();
        write_snapshot(&from_text, &[], &mut bytes).expect("pack");
        let reloaded = decode_snapshot(&bytes).expect("load").graph;
        prop_assert_eq!(from_text, reloaded);
    }
}

#[test]
fn file_roundtrip_through_save_load_and_mmap() {
    let dir = std::env::temp_dir().join("circlekit-store-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("roundtrip.cks");

    let graph = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (3, 0)]);
    let groups = vec![VertexSet::from_iter([0u32, 1]), VertexSet::from_iter([2u32, 3])];
    let bytes = save_snapshot(&path, &graph, &groups).expect("save");
    assert_eq!(bytes, std::fs::metadata(&path).expect("stat").len());

    let buffered = load_snapshot(&path).expect("buffered load");
    assert_eq!(buffered.graph, graph);
    assert_eq!(buffered.groups, groups);

    let mapped = MappedSnapshot::open(&path).expect("mmap open");
    #[cfg(unix)]
    assert!(mapped.is_mapped(), "unix should map, not buffer");
    let view = mapped.view().expect("view validates");
    assert_eq!(view.node_count(), 4);
    assert_eq!(view.out_neighbors(0), &[1]);
    assert_eq!(view.in_neighbors(0), &[2, 3]);
    assert_eq!(view.group(1), &[2, 3]);
    let loaded = mapped.load().expect("mmap load");
    assert_eq!(loaded.graph, graph);
    assert_eq!(loaded.groups, groups);
}

#[test]
fn empty_graph_and_groupless_snapshots_roundtrip() {
    for directed in [true, false] {
        let graph = Graph::from_edges(directed, std::iter::empty::<(u32, u32)>());
        let mut bytes = Vec::new();
        write_snapshot(&graph, &[], &mut bytes).expect("pack empty");
        let snap = decode_snapshot(&bytes).expect("load empty");
        assert_eq!(snap.graph, graph);
        assert!(snap.groups.is_empty());
    }
}

#[test]
fn out_of_range_group_member_is_rejected_at_pack_time() {
    let graph = Graph::from_edges(true, [(0u32, 1u32)]);
    let groups = vec![VertexSet::from_iter([0u32, 7])];
    let mut bytes = Vec::new();
    let err = write_snapshot(&graph, &groups, &mut bytes).expect_err("must reject");
    assert!(matches!(err, StoreError::Graph(_)), "{err}");
    assert!(bytes.is_empty(), "nothing may be written before validation");
}
