//! Corruption is an expected input class for an on-disk format: every
//! mangled byte stream must surface as a typed [`StoreError`], never as a
//! panic, through *both* load paths (buffered decode and zero-copy view).

use circlekit_graph::{Graph, VertexSet};
use circlekit_store::{
    decode_snapshot, load_snapshot, write_snapshot, MappedSnapshot, SnapshotView, StoreError,
    HEADER_LEN, SECTION_HEADER_LEN,
};

/// A small directed snapshot with groups — every section id present.
fn sample_bytes() -> Vec<u8> {
    let graph = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 2), (3, 1)]);
    let groups = vec![
        VertexSet::from_iter([0u32, 1, 2]),
        VertexSet::from_iter([1u32, 3]),
        VertexSet::new(),
    ];
    let mut bytes = Vec::new();
    write_snapshot(&graph, &groups, &mut bytes).expect("pack");
    bytes
}

/// Asserts both decode paths reject `bytes` with an error satisfying
/// `check`. The view gets an 8-aligned copy so the rejection is about
/// the corruption, not `NotZeroCopy`.
fn both_paths_reject(bytes: &[u8], check: impl Fn(StoreError)) {
    let err = decode_snapshot(bytes).expect_err("buffered decode must reject");
    check(err);
    let mut buf = vec![0u64; bytes.len().div_ceil(8)];
    // SAFETY: the u64 buffer spans at least `bytes.len()` bytes, and any
    // byte pattern is a valid u64.
    let dst = unsafe {
        std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, bytes.len())
    };
    dst.copy_from_slice(bytes);
    let err = SnapshotView::parse(dst).expect_err("zero-copy view must reject");
    check(err);
}

#[test]
fn truncated_at_every_prefix_never_panics() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        let prefix = &bytes[..len];
        let err = decode_snapshot(prefix).expect_err("truncated snapshot must fail");
        match err {
            StoreError::TooShort { .. }
            | StoreError::Truncated { .. }
            | StoreError::SectionOversize { .. }
            | StoreError::HeaderChecksum { .. } => {}
            other => panic!("unexpected error for prefix {len}: {other}"),
        }
    }
}

#[test]
fn truncated_file_is_structured() {
    let bytes = sample_bytes();
    both_paths_reject(&bytes[..bytes.len() - 10], |err| {
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::SectionOversize { .. }
            ),
            "{err}"
        );
    });
}

#[test]
fn wrong_magic_is_structured() {
    let mut bytes = sample_bytes();
    bytes[0..4].copy_from_slice(b"NOPE");
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::BadMagic { found } if &found == b"NOPE"), "{err}");
    });
    // An arbitrary non-snapshot file is the same case.
    both_paths_reject(b"0 1\n1 2\n2 0\n0 2\n3 1\n1 1 1 1 1 1 1 1 1 1 1 1", |err| {
        assert!(matches!(err, StoreError::BadMagic { .. }), "{err}");
    });
}

#[test]
fn wrong_version_is_structured() {
    let mut bytes = sample_bytes();
    bytes[4] = 2;
    // Keep the header checksum valid so the version check itself fires.
    let crc = circlekit_store::crc32(&bytes[..28]);
    bytes[28..32].copy_from_slice(&crc.to_le_bytes());
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::UnsupportedVersion { found: 2 }), "{err}");
    });
}

#[test]
fn flipped_header_byte_fails_the_header_checksum() {
    let mut bytes = sample_bytes();
    bytes[9] ^= 0x40; // inside node_count
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::HeaderChecksum { .. }), "{err}");
    });
}

#[test]
fn flipped_payload_byte_fails_that_sections_checksum() {
    let bytes = sample_bytes();
    // Flip one byte in every section payload in turn; each must be caught
    // by that section's checksum.
    let mut cursor = HEADER_LEN;
    while cursor < bytes.len() {
        let len = u64::from_le_bytes(bytes[cursor + 8..cursor + 16].try_into().unwrap()) as usize;
        if len > 0 {
            let mut mangled = bytes.clone();
            mangled[cursor + SECTION_HEADER_LEN] ^= 0x01;
            both_paths_reject(&mangled, |err| {
                assert!(matches!(err, StoreError::SectionChecksum { .. }), "{err}");
            });
        }
        cursor += SECTION_HEADER_LEN + len.div_ceil(8) * 8;
    }
}

#[test]
fn oversize_section_length_is_structured() {
    let mut bytes = sample_bytes();
    // Inflate the first section's recorded payload length far past EOF.
    let pos = HEADER_LEN + 8;
    bytes[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::SectionOversize { .. }), "{err}");
    });
}

#[test]
fn unknown_section_id_is_structured() {
    let mut bytes = sample_bytes();
    bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::UnknownSection { section: 99 }), "{err}");
    });
}

#[test]
fn trailing_garbage_is_structured() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(&[0xAA; 16]);
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::TrailingData { extra: 16 }), "{err}");
    });
}

#[test]
fn every_single_bit_flip_is_detected_or_harmless() {
    // The exhaustive sweep: flip each bit of the snapshot in turn. Every
    // mutation must either be detected as a structured error or decode to
    // the original snapshot (flips inside non-checksummed padding bytes).
    let bytes = sample_bytes();
    let original = decode_snapshot(&bytes).expect("clean snapshot decodes");
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mangled = bytes.clone();
            mangled[i] ^= 1 << bit;
            match decode_snapshot(&mangled) {
                Err(_) => {}
                Ok(snap) => assert_eq!(
                    snap, original,
                    "byte {i} bit {bit}: undetected flip changed the decoded snapshot"
                ),
            }
        }
    }
}

#[test]
fn mmap_path_reports_the_same_errors() {
    let dir = std::env::temp_dir().join("circlekit-store-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("corrupt.cks");

    let mut bytes = sample_bytes();
    bytes[HEADER_LEN + SECTION_HEADER_LEN] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write corrupt snapshot");

    let mapped = MappedSnapshot::open(&path).expect("open maps without validating");
    assert!(matches!(mapped.view(), Err(StoreError::SectionChecksum { .. })));
    assert!(matches!(mapped.load(), Err(StoreError::SectionChecksum { .. })));
    assert!(matches!(load_snapshot(&path), Err(StoreError::SectionChecksum { .. })));

    // Missing file: a plain Io error, not a panic.
    assert!(matches!(
        load_snapshot(dir.join("does-not-exist.cks")),
        Err(StoreError::Io(_))
    ));
    assert!(matches!(
        MappedSnapshot::open(dir.join("does-not-exist.cks")),
        Err(StoreError::Io(_))
    ));

    // Empty file: structurally too short, through both paths.
    let empty = dir.join("empty.cks");
    std::fs::write(&empty, b"").expect("write empty file");
    assert!(matches!(load_snapshot(&empty), Err(StoreError::TooShort { len: 0 })));
    let mapped = MappedSnapshot::open(&empty).expect("empty file opens");
    assert!(matches!(mapped.view(), Err(StoreError::TooShort { len: 0 })));
}

#[test]
fn in_adjacency_in_undirected_snapshot_is_rejected() {
    // Craft a snapshot whose header says undirected but that carries an
    // in-offsets section: flag/section consistency must be enforced.
    let graph = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
    let mut bytes = Vec::new();
    write_snapshot(&graph, &[], &mut bytes).expect("pack");
    // Retag the out-offsets section as in-offsets (id 1 -> 3).
    bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&3u32.to_le_bytes());
    let err = decode_snapshot(&bytes).expect_err("must reject");
    assert!(
        matches!(
            err,
            StoreError::UnexpectedSection { .. } | StoreError::MissingSection { .. }
        ),
        "{err}"
    );
}
