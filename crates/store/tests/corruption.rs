//! Corruption is an expected input class for an on-disk format: every
//! mangled byte stream must surface as a typed [`StoreError`], never as a
//! panic, through *both* load paths (buffered decode and zero-copy view).

use circlekit_graph::{Graph, VertexSet};
use circlekit_store::{
    decode_snapshot, load_snapshot, read_shard_manifest, write_cks2_snapshot, write_shard_snapshot,
    write_snapshot, Cks2PackOptions, Cks2View, MappedSnapshot, ShardManifest, SnapshotView,
    StoreError, HEADER_LEN, SECTION_HEADER_LEN,
};
use std::io::Cursor;

/// A small directed snapshot with groups — every section id present.
fn sample_bytes() -> Vec<u8> {
    let graph = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 2), (3, 1)]);
    let groups = vec![
        VertexSet::from_iter([0u32, 1, 2]),
        VertexSet::from_iter([1u32, 3]),
        VertexSet::new(),
    ];
    let mut bytes = Vec::new();
    write_snapshot(&graph, &groups, &mut bytes).expect("pack");
    bytes
}

/// Asserts both decode paths reject `bytes` with an error satisfying
/// `check`. The view gets an 8-aligned copy so the rejection is about
/// the corruption, not `NotZeroCopy`.
fn both_paths_reject(bytes: &[u8], check: impl Fn(StoreError)) {
    let err = decode_snapshot(bytes).expect_err("buffered decode must reject");
    check(err);
    let mut buf = vec![0u64; bytes.len().div_ceil(8)];
    // SAFETY: the u64 buffer spans at least `bytes.len()` bytes, and any
    // byte pattern is a valid u64.
    let dst = unsafe {
        std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, bytes.len())
    };
    dst.copy_from_slice(bytes);
    let err = SnapshotView::parse(dst).expect_err("zero-copy view must reject");
    check(err);
}

#[test]
fn truncated_at_every_prefix_never_panics() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        let prefix = &bytes[..len];
        let err = decode_snapshot(prefix).expect_err("truncated snapshot must fail");
        match err {
            StoreError::TooShort { .. }
            | StoreError::Truncated { .. }
            | StoreError::SectionOversize { .. }
            | StoreError::HeaderChecksum { .. } => {}
            other => panic!("unexpected error for prefix {len}: {other}"),
        }
    }
}

#[test]
fn truncated_file_is_structured() {
    let bytes = sample_bytes();
    both_paths_reject(&bytes[..bytes.len() - 10], |err| {
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::SectionOversize { .. }
            ),
            "{err}"
        );
    });
}

#[test]
fn wrong_magic_is_structured() {
    let mut bytes = sample_bytes();
    bytes[0..4].copy_from_slice(b"NOPE");
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::BadMagic { found } if &found == b"NOPE"), "{err}");
    });
    // An arbitrary non-snapshot file is the same case.
    both_paths_reject(b"0 1\n1 2\n2 0\n0 2\n3 1\n1 1 1 1 1 1 1 1 1 1 1 1", |err| {
        assert!(matches!(err, StoreError::BadMagic { .. }), "{err}");
    });
}

#[test]
fn wrong_version_is_structured() {
    let mut bytes = sample_bytes();
    bytes[4] = 2;
    // Keep the header checksum valid so the version check itself fires.
    let crc = circlekit_store::crc32(&bytes[..28]);
    bytes[28..32].copy_from_slice(&crc.to_le_bytes());
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::UnsupportedVersion { found: 2 }), "{err}");
    });
}

#[test]
fn flipped_header_byte_fails_the_header_checksum() {
    let mut bytes = sample_bytes();
    bytes[9] ^= 0x40; // inside node_count
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::HeaderChecksum { .. }), "{err}");
    });
}

#[test]
fn flipped_payload_byte_fails_that_sections_checksum() {
    let bytes = sample_bytes();
    // Flip one byte in every section payload in turn; each must be caught
    // by that section's checksum.
    let mut cursor = HEADER_LEN;
    while cursor < bytes.len() {
        let len = u64::from_le_bytes(bytes[cursor + 8..cursor + 16].try_into().unwrap()) as usize;
        if len > 0 {
            let mut mangled = bytes.clone();
            mangled[cursor + SECTION_HEADER_LEN] ^= 0x01;
            both_paths_reject(&mangled, |err| {
                assert!(matches!(err, StoreError::SectionChecksum { .. }), "{err}");
            });
        }
        cursor += SECTION_HEADER_LEN + len.div_ceil(8) * 8;
    }
}

#[test]
fn oversize_section_length_is_structured() {
    let mut bytes = sample_bytes();
    // Inflate the first section's recorded payload length far past EOF.
    let pos = HEADER_LEN + 8;
    bytes[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::SectionOversize { .. }), "{err}");
    });
}

#[test]
fn unknown_section_id_is_structured() {
    let mut bytes = sample_bytes();
    bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::UnknownSection { section: 99 }), "{err}");
    });
}

#[test]
fn trailing_garbage_is_structured() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(&[0xAA; 16]);
    both_paths_reject(&bytes, |err| {
        assert!(matches!(err, StoreError::TrailingData { extra: 16 }), "{err}");
    });
}

#[test]
fn every_single_bit_flip_is_detected_or_harmless() {
    // The exhaustive sweep: flip each bit of the snapshot in turn. Every
    // mutation must either be detected as a structured error or decode to
    // the original snapshot (flips inside non-checksummed padding bytes).
    let bytes = sample_bytes();
    let original = decode_snapshot(&bytes).expect("clean snapshot decodes");
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mangled = bytes.clone();
            mangled[i] ^= 1 << bit;
            match decode_snapshot(&mangled) {
                Err(_) => {}
                Ok(snap) => assert_eq!(
                    snap, original,
                    "byte {i} bit {bit}: undetected flip changed the decoded snapshot"
                ),
            }
        }
    }
}

#[test]
fn mmap_path_reports_the_same_errors() {
    let dir = std::env::temp_dir().join("circlekit-store-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("corrupt.cks");

    let mut bytes = sample_bytes();
    bytes[HEADER_LEN + SECTION_HEADER_LEN] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write corrupt snapshot");

    let mapped = MappedSnapshot::open(&path).expect("open maps without validating");
    assert!(matches!(mapped.view(), Err(StoreError::SectionChecksum { .. })));
    assert!(matches!(mapped.load(), Err(StoreError::SectionChecksum { .. })));
    assert!(matches!(load_snapshot(&path), Err(StoreError::SectionChecksum { .. })));

    // Missing file: a plain Io error, not a panic.
    assert!(matches!(
        load_snapshot(dir.join("does-not-exist.cks")),
        Err(StoreError::Io(_))
    ));
    assert!(matches!(
        MappedSnapshot::open(dir.join("does-not-exist.cks")),
        Err(StoreError::Io(_))
    ));

    // Empty file: structurally too short, through both paths.
    let empty = dir.join("empty.cks");
    std::fs::write(&empty, b"").expect("write empty file");
    assert!(matches!(load_snapshot(&empty), Err(StoreError::TooShort { len: 0 })));
    let mapped = MappedSnapshot::open(&empty).expect("empty file opens");
    assert!(matches!(mapped.view(), Err(StoreError::TooShort { len: 0 })));
}

#[test]
fn in_adjacency_in_undirected_snapshot_is_rejected() {
    // Craft a snapshot whose header says undirected but that carries an
    // in-offsets section: flag/section consistency must be enforced.
    let graph = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
    let mut bytes = Vec::new();
    write_snapshot(&graph, &[], &mut bytes).expect("pack");
    // Retag the out-offsets section as in-offsets (id 1 -> 3).
    bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&3u32.to_le_bytes());
    let err = decode_snapshot(&bytes).expect_err("must reject");
    assert!(
        matches!(
            err,
            StoreError::UnexpectedSection { .. } | StoreError::MissingSection { .. }
        ),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// The same battery against the CKS2 compressed format: every section —
// header, permutation, compressed adjacency, offsets, group membership —
// must turn corruption into a typed `StoreError` through both load paths.
// ---------------------------------------------------------------------------

/// A small directed CKS2 snapshot with groups — every CKS2 section
/// present (permutation, out/in adjacency + offsets, group members +
/// offsets).
fn sample2_bytes() -> Vec<u8> {
    let graph = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 2), (3, 1), (2, 4)]);
    let groups = vec![
        VertexSet::from_iter([0u32, 1, 2]),
        VertexSet::from_iter([1u32, 3]),
        VertexSet::new(),
    ];
    let mut cursor = Cursor::new(Vec::new());
    write_cks2_snapshot(&graph, &groups, &mut cursor, &Cks2PackOptions::default()).expect("pack");
    cursor.into_inner()
}

/// Asserts both CKS2 decode paths — buffered `decode_snapshot` (which
/// dispatches on the magic) and the zero-copy `Cks2View` materialisation
/// — reject `bytes` with an error satisfying `check`.
fn both_paths_reject2(bytes: &[u8], check: impl Fn(StoreError)) {
    let err = decode_snapshot(bytes).expect_err("buffered decode must reject");
    check(err);
    let mut buf = vec![0u64; bytes.len().div_ceil(8)];
    // SAFETY: the u64 buffer spans at least `bytes.len()` bytes, and any
    // byte pattern is a valid u64.
    let dst =
        unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, bytes.len()) };
    dst.copy_from_slice(bytes);
    let err = Cks2View::parse(dst)
        .and_then(|v| v.to_snapshot())
        .expect_err("zero-copy view must reject");
    check(err);
}

/// Walks the section table: `(raw_id, payload_start, payload_len)` per
/// section, in file order.
fn sections_of(bytes: &[u8]) -> Vec<(u32, usize, usize)> {
    let mut out = Vec::new();
    let mut cursor = HEADER_LEN;
    while cursor < bytes.len() {
        let id = u32::from_le_bytes(bytes[cursor..cursor + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[cursor + 8..cursor + 16].try_into().unwrap()) as usize;
        out.push((id, cursor + SECTION_HEADER_LEN, len));
        cursor += SECTION_HEADER_LEN + len.div_ceil(8) * 8;
    }
    out
}

/// Mutates the payload of the section with `raw_id` through `mutate`,
/// then re-seals its checksum so the corruption survives CRC validation
/// and exercises the *structural* checks behind it.
fn patch_section(bytes: &mut [u8], raw_id: u32, mutate: impl FnOnce(&mut [u8])) {
    let (_, start, len) = *sections_of(bytes)
        .iter()
        .find(|(id, _, _)| *id == raw_id)
        .expect("section present");
    mutate(&mut bytes[start..start + len]);
    let crc = circlekit_store::crc32(&bytes[start..start + len]);
    bytes[start - SECTION_HEADER_LEN + 4..start - SECTION_HEADER_LEN + 8]
        .copy_from_slice(&crc.to_le_bytes());
}

/// Rewrites the header flags and re-seals the header checksum.
fn patch_flags(bytes: &mut [u8], flags: u16) {
    bytes[6..8].copy_from_slice(&flags.to_le_bytes());
    let crc = circlekit_store::crc32(&bytes[..28]);
    bytes[28..32].copy_from_slice(&crc.to_le_bytes());
}

const P2_PERMUTATION: u32 = 1;
const P2_OUT_BLOCKS: u32 = 2;
const P2_OUT_OFFSETS: u32 = 3;
const P2_GROUP_BLOCKS: u32 = 6;

#[test]
fn cks2_truncated_at_every_prefix_never_panics() {
    let bytes = sample2_bytes();
    for len in 0..bytes.len() {
        let prefix = &bytes[..len];
        let err = decode_snapshot(prefix).expect_err("truncated snapshot must fail");
        match err {
            StoreError::TooShort { .. }
            | StoreError::Truncated { .. }
            | StoreError::SectionOversize { .. }
            | StoreError::HeaderChecksum { .. }
            | StoreError::BadMagic { .. } => {}
            other => panic!("unexpected error for prefix {len}: {other}"),
        }
    }
}

#[test]
fn cks2_every_single_bit_flip_is_detected_or_harmless() {
    let bytes = sample2_bytes();
    let original = decode_snapshot(&bytes).expect("clean snapshot decodes");
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mangled = bytes.clone();
            mangled[i] ^= 1 << bit;
            match decode_snapshot(&mangled) {
                Err(_) => {}
                Ok(snap) => assert_eq!(
                    snap, original,
                    "byte {i} bit {bit}: undetected flip changed the decoded snapshot"
                ),
            }
        }
    }
}

#[test]
fn cks2_flipped_payload_byte_fails_that_sections_checksum() {
    let bytes = sample2_bytes();
    for (_, start, len) in sections_of(&bytes) {
        if len == 0 {
            continue;
        }
        let mut mangled = bytes.clone();
        mangled[start] ^= 0x01;
        both_paths_reject2(&mangled, |err| {
            assert!(matches!(err, StoreError::SectionChecksum { .. }), "{err}");
        });
    }
}

#[test]
fn cks2_flipped_header_byte_fails_the_header_checksum() {
    let mut bytes = sample2_bytes();
    bytes[9] ^= 0x40; // inside node_count
    both_paths_reject2(&bytes, |err| {
        assert!(matches!(err, StoreError::HeaderChecksum { .. }), "{err}");
    });
}

#[test]
fn cks2_unknown_section_id_is_structured() {
    let mut bytes = sample2_bytes();
    bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
    both_paths_reject2(&bytes, |err| {
        assert!(matches!(err, StoreError::UnknownSection { section: 99 }), "{err}");
    });
}

#[test]
fn cks2_trailing_garbage_is_structured() {
    let mut bytes = sample2_bytes();
    bytes.extend_from_slice(&[0xAA; 16]);
    both_paths_reject2(&bytes, |err| {
        assert!(matches!(err, StoreError::TrailingData { extra: 16 }), "{err}");
    });
}

#[test]
fn cks2_out_of_range_permutation_entry_is_structured() {
    let mut bytes = sample2_bytes();
    // perm[0] := node_count — outside the node range, CRC re-sealed so
    // the bijection check itself must fire.
    patch_section(&mut bytes, P2_PERMUTATION, |payload| {
        payload[0..4].copy_from_slice(&1000u32.to_le_bytes());
    });
    both_paths_reject2(&bytes, |err| {
        assert!(matches!(err, StoreError::BadPermutation { .. }), "{err}");
    });
}

#[test]
fn cks2_duplicate_permutation_entry_is_structured() {
    let mut bytes = sample2_bytes();
    patch_section(&mut bytes, P2_PERMUTATION, |payload| {
        let first: [u8; 4] = payload[0..4].try_into().unwrap();
        payload[4..8].copy_from_slice(&first); // perm[1] := perm[0]
    });
    both_paths_reject2(&bytes, |err| {
        assert!(matches!(err, StoreError::BadPermutation { .. }), "{err}");
    });
}

#[test]
fn cks2_corrupt_varint_block_is_structured() {
    let mut bytes = sample2_bytes();
    // 0xFF opens an unterminated varint: the block ends mid-value, which
    // must surface as a typed codec error naming the section.
    patch_section(&mut bytes, P2_OUT_BLOCKS, |payload| payload[0] = 0xFF);
    both_paths_reject2(&bytes, |err| {
        assert!(
            matches!(err, StoreError::Codec { section: "out-adjacency", .. }),
            "{err}"
        );
    });
}

#[test]
fn cks2_zero_delta_in_adjacency_block_is_structured() {
    let mut bytes = sample2_bytes();
    // Find a block of >= 2 bytes; in this tiny graph every varint is one
    // byte, so byte 1 of the block is the first delta. Zeroing it
    // produces a non-increasing list, which the codec must reject.
    let (_, off_start, _) = *sections_of(&bytes)
        .iter()
        .find(|(id, _, _)| *id == P2_OUT_OFFSETS)
        .expect("out-offsets present");
    let o0 = u32::from_le_bytes(bytes[off_start..off_start + 4].try_into().unwrap()) as usize;
    let o1 = u32::from_le_bytes(bytes[off_start + 4..off_start + 8].try_into().unwrap()) as usize;
    assert!(o1 - o0 >= 2, "first relabelled vertex is the top hub: degree >= 2");
    patch_section(&mut bytes, P2_OUT_BLOCKS, |payload| payload[o0 + 1] = 0x00);
    both_paths_reject2(&bytes, |err| {
        assert!(
            matches!(err, StoreError::Codec { section: "out-adjacency", .. }),
            "{err}"
        );
    });
}

#[test]
fn cks2_out_of_range_group_member_is_structured() {
    let mut bytes = sample2_bytes();
    // First group member := 63 — a valid single-byte varint far outside
    // the 5-node graph.
    patch_section(&mut bytes, P2_GROUP_BLOCKS, |payload| payload[0] = 63);
    both_paths_reject2(&bytes, |err| {
        assert!(
            matches!(err, StoreError::Codec { section: "group-members", .. }),
            "{err}"
        );
    });
}

#[test]
fn cks2_offsets_past_blob_end_are_structured() {
    let mut bytes = sample2_bytes();
    patch_section(&mut bytes, P2_OUT_OFFSETS, |payload| {
        let last = payload.len() - 4;
        payload[last..].copy_from_slice(&u32::MAX.to_le_bytes());
    });
    both_paths_reject2(&bytes, |err| {
        assert!(matches!(err, StoreError::Graph(_)), "{err}");
    });
}

#[test]
fn cks2_wrong_width_flag_is_structured() {
    let mut bytes = sample2_bytes();
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    // Claim wide (u64) offsets over narrow (u32) payloads: every offsets
    // section length is now wrong for the declared width.
    patch_flags(&mut bytes, flags | (1 << 2));
    both_paths_reject2(&bytes, |err| {
        assert!(matches!(err, StoreError::WrongSectionLen { .. }), "{err}");
    });
}

#[test]
fn cks2_in_adjacency_in_undirected_snapshot_is_rejected() {
    let graph = Graph::from_edges(false, [(0u32, 1u32), (1, 2)]);
    let mut cursor = Cursor::new(Vec::new());
    write_cks2_snapshot(&graph, &[], &mut cursor, &Cks2PackOptions::default()).expect("pack");
    let mut bytes = cursor.into_inner();
    // Retag the out-offsets section as in-offsets (id 3 -> 5).
    for (id, start, _) in sections_of(&bytes) {
        if id == P2_OUT_OFFSETS {
            bytes[start - SECTION_HEADER_LEN..start - SECTION_HEADER_LEN + 4]
                .copy_from_slice(&5u32.to_le_bytes());
        }
    }
    let err = decode_snapshot(&bytes).expect_err("must reject");
    assert!(
        matches!(
            err,
            StoreError::UnexpectedSection { .. } | StoreError::MissingSection { .. }
        ),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Shard sub-snapshots: the shard-manifest section is covered by the same
// guarantees — truncation, bit flips, and semantic field corruption all
// surface as typed `StoreError`s, never panics or silently wrong manifests.
// ---------------------------------------------------------------------------

const SHARD_MANIFEST_ID: u32 = 7;

/// A small directed shard sub-snapshot: same graph/groups as
/// [`sample_bytes`], plus a manifest binding it to a 4-node parent.
fn sample_shard_bytes() -> Vec<u8> {
    let graph = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0), (0, 2), (3, 1)]);
    let groups = vec![VertexSet::from_iter([0u32, 1, 2]), VertexSet::from_iter([1u32, 3])];
    let manifest = ShardManifest {
        shard_count: 3,
        shard_index: 1,
        parent_node_count: graph.node_count() as u64,
        parent_edge_count: 12,
        parent_median_degree: 2.5,
        parent_crc32: 0xDEAD_BEEF,
    };
    let mut bytes = Vec::new();
    write_shard_snapshot(&graph, &groups, &manifest, &mut bytes).expect("pack shard");
    bytes
}

#[test]
fn shard_truncated_at_every_prefix_never_panics() {
    let bytes = sample_shard_bytes();
    for len in 0..bytes.len() {
        let err = decode_snapshot(&bytes[..len]).expect_err("truncated shard must fail");
        match err {
            StoreError::TooShort { .. }
            | StoreError::Truncated { .. }
            | StoreError::SectionOversize { .. }
            | StoreError::HeaderChecksum { .. } => {}
            other => panic!("unexpected error for prefix {len}: {other}"),
        }
        assert!(read_shard_manifest(&bytes[..len]).is_err());
    }
}

#[test]
fn shard_every_single_bit_flip_is_detected_or_harmless() {
    let bytes = sample_shard_bytes();
    let original = decode_snapshot(&bytes).expect("clean shard decodes");
    let manifest = read_shard_manifest(&bytes).expect("clean manifest").expect("is a shard");
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mangled = bytes.clone();
            mangled[i] ^= 1 << bit;
            match decode_snapshot(&mangled) {
                Err(_) => {
                    assert!(
                        read_shard_manifest(&mangled).is_err(),
                        "byte {i} bit {bit}: decode rejects but manifest read does not"
                    );
                }
                Ok(snap) => {
                    assert_eq!(
                        snap, original,
                        "byte {i} bit {bit}: undetected flip changed the decoded snapshot"
                    );
                    let m = read_shard_manifest(&mangled)
                        .expect("accepted flip keeps the manifest readable")
                        .expect("still a shard");
                    assert_eq!(m, manifest, "byte {i} bit {bit}: manifest changed");
                }
            }
        }
    }
}

#[test]
fn shard_manifest_field_corruption_is_structured() {
    // Each semantic defect, with the section CRC re-sealed so the
    // manifest validation itself must fire (not the checksum).
    type Mutation = Box<dyn Fn(&mut [u8])>;
    let cases: Vec<(&str, Mutation)> = vec![
        ("zero shard count", Box::new(|p: &mut [u8]| p[0..4].copy_from_slice(&0u32.to_le_bytes()))),
        ("index >= count", Box::new(|p: &mut [u8]| p[4..8].copy_from_slice(&3u32.to_le_bytes()))),
        (
            "parent node count disagrees with header",
            Box::new(|p: &mut [u8]| p[8..16].copy_from_slice(&99u64.to_le_bytes())),
        ),
        (
            "NaN median degree",
            Box::new(|p: &mut [u8]| {
                p[24..32].copy_from_slice(&f64::NAN.to_bits().to_le_bytes())
            }),
        ),
        (
            "nonzero reserved word",
            Box::new(|p: &mut [u8]| p[36..40].copy_from_slice(&1u32.to_le_bytes())),
        ),
    ];
    for (what, mutate) in cases {
        let mut bytes = sample_shard_bytes();
        patch_section(&mut bytes, SHARD_MANIFEST_ID, mutate);
        let err = decode_snapshot(&bytes).expect_err(what);
        assert!(matches!(err, StoreError::ShardManifest { .. }), "{what}: {err}");
        let err = read_shard_manifest(&bytes).expect_err(what);
        assert!(matches!(err, StoreError::ShardManifest { .. }), "{what}: {err}");
    }
}

#[test]
fn shard_manifest_wrong_length_is_structured() {
    // Shrink the recorded payload length (and the actual payload) to 32
    // bytes — framing stays valid, but the manifest decode must reject.
    let bytes = sample_shard_bytes();
    let (_, start, len) = *sections_of(&bytes)
        .iter()
        .find(|(id, _, _)| *id == SHARD_MANIFEST_ID)
        .expect("manifest present");
    assert_eq!(len, 40);
    // Manifest is the last section and 40 is already 8-aligned; cutting
    // the final 8 bytes keeps alignment.
    let mut short = bytes[..start + 32].to_vec();
    short[start - SECTION_HEADER_LEN + 8..start - SECTION_HEADER_LEN + 16]
        .copy_from_slice(&32u64.to_le_bytes());
    let crc = circlekit_store::crc32(&short[start..start + 32]);
    short[start - SECTION_HEADER_LEN + 4..start - SECTION_HEADER_LEN + 8]
        .copy_from_slice(&crc.to_le_bytes());
    let err = decode_snapshot(&short).expect_err("short manifest must fail");
    assert!(matches!(err, StoreError::ShardManifest { .. }), "{err}");
}

#[test]
fn shard_flag_and_section_must_agree() {
    // Shard flag set but no manifest section: required section missing.
    let mut bytes = sample_bytes();
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    patch_flags(&mut bytes, flags | circlekit_store::FLAG_SHARD);
    let err = decode_snapshot(&bytes).expect_err("flag without section must fail");
    assert!(matches!(err, StoreError::MissingSection { section: "shard-manifest" }), "{err}");

    // Manifest section present but flag clear: section not permitted.
    let mut bytes = sample_shard_bytes();
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    patch_flags(&mut bytes, flags & !circlekit_store::FLAG_SHARD);
    let err = decode_snapshot(&bytes).expect_err("section without flag must fail");
    assert!(
        matches!(err, StoreError::UnexpectedSection { section: "shard-manifest" }),
        "{err}"
    );
}

#[test]
fn shard_mmap_and_reader_paths_agree() {
    let dir = std::env::temp_dir().join("circlekit-store-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("shard.cks");
    let bytes = sample_shard_bytes();
    std::fs::write(&path, &bytes).expect("write shard snapshot");

    let mapped = MappedSnapshot::open(&path).expect("open");
    let from_mmap = mapped.shard_manifest().expect("read").expect("is a shard");
    let from_bytes = read_shard_manifest(&bytes).expect("read").expect("is a shard");
    assert_eq!(from_mmap, from_bytes);
    assert_eq!(from_mmap.shard_count, 3);
    assert_eq!(from_mmap.shard_index, 1);

    // An ordinary snapshot is simply not a shard — Ok(None), no error.
    assert_eq!(read_shard_manifest(&sample_bytes()).expect("read"), None);
    // And a CKS2 snapshot is never a shard either.
    assert_eq!(read_shard_manifest(&sample2_bytes()).expect("read"), None);
}

#[test]
fn cks2_mmap_path_reports_the_same_errors() {
    let dir = std::env::temp_dir().join("circlekit-store-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("corrupt.cks2");

    let mut bytes = sample2_bytes();
    let (_, start, _) = *sections_of(&bytes)
        .iter()
        .find(|(id, _, _)| *id == P2_OUT_BLOCKS)
        .expect("out-adjacency present");
    bytes[start] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write corrupt snapshot");

    let mapped = MappedSnapshot::open(&path).expect("open maps without validating");
    assert!(matches!(mapped.view2(), Err(StoreError::SectionChecksum { .. })));
    assert!(matches!(mapped.load(), Err(StoreError::SectionChecksum { .. })));
    assert!(matches!(load_snapshot(&path), Err(StoreError::SectionChecksum { .. })));
}
