//! Property tests for the CKS2 varint/delta block codec: arbitrary
//! adjacency lists round-trip byte-exactly (the encoding is canonical),
//! and arbitrary byte noise decodes to a typed error — never a panic,
//! never an unterminated loop.

use circlekit_store::codec::{decode_list, decode_list_into, encode_list, read_varint, write_varint};
use proptest::prelude::*;

/// Strictly increasing duplicate-free lists over the full u32 range,
/// biased toward the interesting shapes: empty, single-vertex, dense
/// low-id runs (what degree relabelling produces), and ids hugging the
/// u32 boundary.
fn arb_sorted_list() -> impl Strategy<Value = Vec<u32>> {
    // The vendored proptest has no `prop_oneof`, so draw a shape selector
    // plus the raw material for every shape and pick in `prop_map`.
    (
        0u8..6,
        prop::collection::vec(any::<u32>(), 0..64),
        prop::collection::vec(0u32..512, 0..64),
        (1u32..5, 0u32..1000),
        prop::collection::vec(u32::MAX - 64..=u32::MAX, 1..32),
    )
        .prop_map(|(shape, full, dense, (step, start), boundary)| {
            let mut values: Vec<u32> = match shape {
                // Empty and single-element lists.
                0 => Vec::new(),
                1 => full.into_iter().take(1).collect(),
                // General lists over the full id range.
                2 => full,
                // Dense small-id lists: single-byte varints, the common case.
                3 => dense,
                // Max-degree-ish list: a long run with mixed deltas.
                4 => (0u32..2000).map(|i| start + i * step).collect(),
                // Ids hugging the u32 boundary.
                _ => boundary,
            };
            values.sort_unstable();
            values.dedup();
            values
        })
}

proptest! {
    /// encode → decode reproduces the list exactly, and re-encoding the
    /// decode reproduces the bytes exactly (canonical representation).
    #[test]
    fn lists_roundtrip_byte_exactly(values in arb_sorted_list()) {
        let mut bytes = Vec::new();
        encode_list(&values, &mut bytes);
        // limit = 2^32 admits every u32 id, including u32::MAX.
        let decoded = decode_list(&bytes, 1u64 << 32).expect("canonical encoding decodes");
        prop_assert_eq!(&decoded, &values);
        let mut again = Vec::new();
        encode_list(&decoded, &mut again);
        prop_assert_eq!(again, bytes);
    }

    /// The tight limit is enforced exactly: decoding succeeds with
    /// `limit = max + 1` and fails typed with `limit = max`.
    #[test]
    fn limit_is_enforced_exactly(values in arb_sorted_list()) {
        prop_assume!(!values.is_empty());
        let max = *values.last().expect("non-empty");
        let mut bytes = Vec::new();
        encode_list(&values, &mut bytes);
        prop_assert!(decode_list(&bytes, max as u64 + 1).is_ok());
        let err = decode_list(&bytes, max as u64).expect_err("limit must reject max");
        prop_assert_eq!(err.why, "value outside the graph");
    }

    /// Arbitrary byte noise never panics and always terminates; failures
    /// are typed `CodecError`s, successes decode to a strictly
    /// increasing in-range list.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        limit in 0u64..=(1u64 << 32),
    ) {
        let mut out = Vec::new();
        match decode_list_into(&bytes, limit, &mut out) {
            Err(e) => {
                prop_assert!(e.offset <= bytes.len());
                prop_assert!(!e.why.is_empty());
            }
            Ok(()) => {
                prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "decoded list not increasing");
                prop_assert!(out.iter().all(|&v| (v as u64) < limit), "decoded value at/past limit");
                // A successful decode must be the canonical encoding.
                let mut re = Vec::new();
                encode_list(&out, &mut re);
                prop_assert_eq!(re, bytes);
            }
        }
    }

    /// Raw varints round-trip and arbitrary prefixes decode without
    /// panicking.
    #[test]
    fn varints_roundtrip(v in any::<u32>()) {
        let mut bytes = Vec::new();
        write_varint(v, &mut bytes);
        prop_assert!(bytes.len() <= 5);
        let mut cursor = 0;
        prop_assert_eq!(read_varint(&bytes, &mut cursor).expect("roundtrip"), v);
        prop_assert_eq!(cursor, bytes.len());
        // Every strict prefix is truncated, typed.
        for cut in 0..bytes.len() {
            let mut cursor = 0;
            prop_assert_eq!(
                read_varint(&bytes[..cut], &mut cursor).expect_err("prefix must fail").why,
                "truncated varint"
            );
        }
    }
}
