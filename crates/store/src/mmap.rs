//! [`MappedSnapshot`]: owning a snapshot's bytes via a memory map.
//!
//! On Unix targets the file is mapped read-only (`PROT_READ`,
//! `MAP_PRIVATE`) through a minimal `extern "C"` binding — the workspace
//! vendors no `libc`/`memmap` crate, and `std` already links the platform
//! C library, so declaring the two symbols we need is enough. Page
//! alignment of the mapping plus the format's 8-byte section padding make
//! the zero-copy [`SnapshotView`] reinterpretation valid.
//!
//! On non-Unix targets (and for empty files, which `mmap` rejects) the
//! file is read into an 8-byte-aligned heap buffer instead — same
//! `MappedSnapshot` API, one copy, still alignment-safe for the view.

use crate::cks2::Cks2View;
use crate::error::StoreError;
use crate::reader::{Snapshot, SnapshotFormat};
use crate::view::SnapshotView;
use std::fs::File;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::io;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only private mapping, unmapped on drop.
    #[derive(Debug)]
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared
    // memory with no interior mutability, safe to reference and to drop
    // from any thread.
    unsafe impl Send for Mapping {}
    // SAFETY: as above; `bytes` only hands out shared `&[u8]` views.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `fd` read-only. `len` must be non-zero
        /// and no larger than the file.
        pub fn new(fd: i32, len: usize) -> io::Result<Mapping> {
            // SAFETY: we pass a null addr hint, a valid open fd, and a
            // non-zero length; the kernel validates everything else and
            // reports failure via MAP_FAILED.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, fd, 0)
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `munmap` in Drop; u8 has no alignment
            // or validity requirements.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are exactly what mmap returned, and
            // the slice handed out by `bytes` cannot outlive `self`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped(sys::Mapping),
    /// 8-byte-aligned heap buffer: `buf` over-allocates to whole `u64`s,
    /// `len` is the real byte count.
    Buffered { buf: Vec<u64>, len: usize },
}

/// A snapshot file held in memory — memory-mapped where supported,
/// buffered into an aligned allocation otherwise. Dropping unmaps/frees.
///
/// Opening performs no validation; call [`MappedSnapshot::view`] for the
/// zero-copy path or [`MappedSnapshot::load`] for owned data.
#[derive(Debug)]
pub struct MappedSnapshot {
    backing: Backing,
}

/// Reads `file` into an 8-byte-aligned buffer (the non-mmap fallback,
/// also used for empty files which `mmap` rejects).
fn read_aligned(file: &mut File) -> Result<Backing, StoreError> {
    use std::io::Read;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let len = bytes.len();
    let mut buf = vec![0u64; len.div_ceil(8)];
    // SAFETY: the u64 buffer spans at least `len` bytes; any byte
    // pattern is a valid u64.
    let dst = unsafe {
        std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len)
    };
    dst.copy_from_slice(&bytes);
    Ok(Backing::Buffered { buf, len })
}

impl MappedSnapshot {
    /// Opens and maps (or buffers) the file at `path` without validating
    /// its contents.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened, sized, mapped,
    /// or read.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedSnapshot, StoreError> {
        let mut file = File::open(path)?;
        let backing = {
            #[cfg(unix)]
            {
                use std::os::unix::io::AsRawFd;
                let len = file.metadata()?.len();
                let len = usize::try_from(len)
                    .map_err(|_| StoreError::OffsetOverflow { value: len })?;
                if len == 0 {
                    read_aligned(&mut file)?
                } else {
                    Backing::Mapped(sys::Mapping::new(file.as_raw_fd(), len)?)
                }
            }
            #[cfg(not(unix))]
            {
                read_aligned(&mut file)?
            }
        };
        Ok(MappedSnapshot { backing })
    }

    /// The raw snapshot bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Buffered { buf, len } => {
                // SAFETY: the u64 buffer spans at least `len` bytes, and
                // u8 reads are valid for any bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Whether this snapshot is memory-mapped (as opposed to the
    /// buffered fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(_) => true,
            Backing::Buffered { .. } => false,
        }
    }

    /// The snapshot format declared by the mapped bytes (`None` when the
    /// file starts with neither magic).
    pub fn format(&self) -> Option<SnapshotFormat> {
        crate::reader::snapshot_format(self.bytes())
    }

    /// Validates the bytes once and returns the zero-copy CKS1 view
    /// borrowing from the mapping. For CKS2 files use
    /// [`MappedSnapshot::view2`] (or [`MappedSnapshot::load`], which
    /// dispatches on the magic).
    ///
    /// # Errors
    ///
    /// As [`SnapshotView::parse`].
    pub fn view(&self) -> Result<SnapshotView<'_>, StoreError> {
        SnapshotView::parse(self.bytes())
    }

    /// Validates the bytes once and returns the zero-copy CKS2 view
    /// borrowing from the mapping — adjacency stays compressed in the
    /// mapped pages until accessed, which is what lets a snapshot larger
    /// than RAM be scored through [`Cks2View::paged`].
    ///
    /// # Errors
    ///
    /// As [`Cks2View::parse`].
    pub fn view2(&self) -> Result<Cks2View<'_>, StoreError> {
        Cks2View::parse(self.bytes())
    }

    /// Materialises the full snapshot through the matching zero-copy
    /// view (validate, then copy out of the mapping), dispatching on the
    /// magic — callers handle CKS1 and CKS2 files identically.
    ///
    /// # Errors
    ///
    /// As the underlying view parse/materialise calls.
    pub fn load(&self) -> Result<Snapshot, StoreError> {
        match self.format() {
            Some(SnapshotFormat::Cks2) => self.view2()?.to_snapshot(),
            _ => self.view()?.to_snapshot(),
        }
    }

    /// The shard manifest of the mapped file: `Some` (validated) for a
    /// CKS1 shard sub-snapshot, `None` for ordinary snapshots of either
    /// format.
    ///
    /// # Errors
    ///
    /// As [`crate::read_shard_manifest`].
    pub fn shard_manifest(&self) -> Result<Option<crate::ShardManifest>, StoreError> {
        crate::reader::read_shard_manifest(self.bytes())
    }
}
