//! Packing graphs into the CKS2 compressed format — in memory or
//! streamed from an edge-list file in bounded memory.
//!
//! Both packers funnel into one core ([`pack_cks2_core`]) that writes
//! sections **streamed**: a section's header is written as a
//! placeholder, the payload flows through an incremental CRC without
//! ever being held whole, and the 16-byte header is patched by seeking
//! back once length and checksum are known. Because the core consumes
//! relabelled adjacency lists through a closure, the in-memory packer
//! (lists from a [`Graph`]) and the streaming packer (lists from an
//! external-sort spill file) emit **byte-identical** snapshots for the
//! same logical input — a property the test suite pins.
//!
//! The streaming path ([`stream_pack_cks2`]) builds CSR from a raw edge
//! list without materialising the edge set: edges become `u64` sort keys
//! (`source << 32 | target`), runs of at most the configured memory
//! budget are sorted and spilled to a temp directory, and a k-way merge
//! with consecutive dedup streams the CSR out — exactly the dedup +
//! self-loop-drop semantics of `GraphBuilder`. Peak memory is the sort
//! budget plus `O(node_count)` for degrees and the permutation, never
//! `O(edge_count)`.

use crate::cks2::{degree_order_permutation, CKS2_SPEC, FLAG_WIDE, SEC_GROUP_BLOCKS, SEC_GROUP_OFFSETS, SEC_IN_BLOCKS, SEC_IN_OFFSETS, SEC_OUT_BLOCKS, SEC_OUT_OFFSETS, SEC_PERMUTATION};
use crate::codec::encode_list;
use crate::crc32::Crc32;
use crate::error::StoreError;
use crate::format::{padded_len, Header, FLAG_DIRECTED, FLAG_GROUPS, HEADER_LEN, SECTION_HEADER_LEN};
use circlekit_graph::{parse_edge_line, Graph, GraphError, NodeId, ParseEdgeListError, VertexSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Options for packing a CKS2 snapshot from an in-memory graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cks2PackOptions {
    /// Force u64 offset sections even when u32 would do — the layout a
    /// graph past ~850M arcs gets, testable without a 4 GiB file.
    pub force_wide: bool,
}

/// The width rule: offsets go wide when a blob *could* outgrow u32.
/// Decided from item counts alone (5 bytes is a varint's maximum), so
/// the choice never depends on actual compressed sizes and both packers
/// agree without communicating.
fn choose_wide(out_arcs: u64, in_arcs: u64, memberships: u64, force: bool) -> bool {
    let limit = u32::MAX as u64;
    force || 5 * out_arcs > limit || 5 * in_arcs > limit || 5 * memberships > limit
}

/// A section payload sink: counts and checksums every byte on its way
/// to the writer.
struct SectionSink<'w, W: Write> {
    w: &'w mut W,
    crc: Crc32,
    len: u64,
}

impl<W: Write> SectionSink<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.w.write_all(bytes)?;
        self.crc.update(bytes);
        self.len += bytes.len() as u64;
        Ok(())
    }
}

/// Writes one section with its payload produced incrementally by
/// `emit`, patching the 16-byte section header in place afterwards.
fn write_streamed_section<W: Write + Seek>(
    w: &mut W,
    id: u32,
    emit: impl FnOnce(&mut SectionSink<'_, W>) -> Result<(), StoreError>,
) -> Result<(), StoreError> {
    let header_pos = w.stream_position()?;
    w.write_all(&[0u8; SECTION_HEADER_LEN])?;
    let mut sink = SectionSink { w, crc: Crc32::new(), len: 0 };
    emit(&mut sink)?;
    let (crc, len) = (sink.crc.finish(), sink.len);
    let pad = (padded_len(len) - len) as usize;
    if pad > 0 {
        w.write_all(&[0u8; 7][..pad])?;
    }
    let end = w.stream_position()?;
    let mut head = [0u8; SECTION_HEADER_LEN];
    head[0..4].copy_from_slice(&id.to_le_bytes());
    head[4..8].copy_from_slice(&crc.to_le_bytes());
    head[8..16].copy_from_slice(&len.to_le_bytes());
    w.seek(SeekFrom::Start(header_pos))?;
    w.write_all(&head)?;
    w.seek(SeekFrom::Start(end))?;
    Ok(())
}

/// Produces the (sorted, relabelled) adjacency list of one new-id vertex
/// into the scratch vector.
type ListFn<'f> = &'f mut dyn FnMut(NodeId, &mut Vec<NodeId>) -> Result<(), StoreError>;

/// Writes a compressed block section (one varint block per item in
/// new-id order), returning the per-item byte offsets.
fn write_blocks<W: Write + Seek>(
    w: &mut W,
    id: u32,
    items: u64,
    list: ListFn<'_>,
) -> Result<Vec<u64>, StoreError> {
    let mut offsets = Vec::with_capacity(items as usize + 1);
    offsets.push(0u64);
    write_streamed_section(w, id, |sink| {
        let mut ids: Vec<NodeId> = Vec::new();
        let mut enc: Vec<u8> = Vec::new();
        for v in 0..items {
            list(v as NodeId, &mut ids)?;
            enc.clear();
            encode_list(&ids, &mut enc);
            sink.put(&enc)?;
            offsets.push(sink.len);
        }
        Ok(())
    })?;
    Ok(offsets)
}

/// Writes an offsets section at the chosen width.
fn write_offsets<W: Write + Seek>(
    w: &mut W,
    id: u32,
    offsets: &[u64],
    wide: bool,
) -> Result<(), StoreError> {
    write_streamed_section(w, id, |sink| {
        let mut chunk: Vec<u8> = Vec::with_capacity(8 * 1024);
        for &o in offsets {
            if wide {
                chunk.extend_from_slice(&o.to_le_bytes());
            } else {
                chunk.extend_from_slice(&(o as u32).to_le_bytes());
            }
            if chunk.len() >= 8 * 1024 - 8 {
                sink.put(&chunk)?;
                chunk.clear();
            }
        }
        sink.put(&chunk)?;
        Ok(())
    })
}

/// The shared CKS2 emitter: header placeholder, permutation, adjacency
/// blocks + offsets, groups, then the patched real header. Returns the
/// total snapshot size in bytes.
#[allow(clippy::too_many_arguments)] // one call site per packer; a builder would obscure the layout order
fn pack_cks2_core<W: Write + Seek>(
    w: &mut W,
    directed: bool,
    n: u64,
    edge_count: u64,
    old_of: &[u32],
    groups_new: &[Vec<NodeId>],
    wide: bool,
    out_list: ListFn<'_>,
    in_list: Option<ListFn<'_>>,
) -> Result<u64, StoreError> {
    let base = w.stream_position()?;
    w.write_all(&[0u8; HEADER_LEN])?;
    let mut section_count = 0u32;

    write_streamed_section(w, SEC_PERMUTATION, |sink| {
        let mut chunk: Vec<u8> = Vec::with_capacity(4 * 1024);
        for piece in old_of.chunks(1024) {
            chunk.clear();
            for &v in piece {
                chunk.extend_from_slice(&v.to_le_bytes());
            }
            sink.put(&chunk)?;
        }
        Ok(())
    })?;
    section_count += 1;

    let out_offsets = write_blocks(w, SEC_OUT_BLOCKS, n, out_list)?;
    write_offsets(w, SEC_OUT_OFFSETS, &out_offsets, wide)?;
    drop(out_offsets);
    section_count += 2;

    if let Some(in_list) = in_list {
        let in_offsets = write_blocks(w, SEC_IN_BLOCKS, n, in_list)?;
        write_offsets(w, SEC_IN_OFFSETS, &in_offsets, wide)?;
        section_count += 2;
    }

    if !groups_new.is_empty() {
        let mut group_offsets = Vec::with_capacity(groups_new.len() + 1);
        group_offsets.push(0u64);
        write_streamed_section(w, SEC_GROUP_BLOCKS, |sink| {
            let mut enc: Vec<u8> = Vec::new();
            for members in groups_new {
                enc.clear();
                encode_list(members, &mut enc);
                sink.put(&enc)?;
                group_offsets.push(sink.len);
            }
            Ok(())
        })?;
        write_offsets(w, SEC_GROUP_OFFSETS, &group_offsets, wide)?;
        section_count += 2;
    }

    let end = w.stream_position()?;
    let mut flags = 0u16;
    if directed {
        flags |= FLAG_DIRECTED;
    }
    if !groups_new.is_empty() {
        flags |= FLAG_GROUPS;
    }
    if wide {
        flags |= FLAG_WIDE;
    }
    let header = Header { flags, node_count: n, edge_count, section_count };
    w.seek(SeekFrom::Start(base))?;
    w.write_all(&header.encode_with(&CKS2_SPEC))?;
    w.seek(SeekFrom::Start(end))?;
    w.flush()?;
    Ok(end - base)
}

/// Checks every group member is a node (the CKS1 writer's rule, applied
/// before any bytes are written).
fn validate_groups(groups: &[VertexSet], n: usize) -> Result<(), StoreError> {
    for set in groups {
        for v in set.iter() {
            if v as usize >= n {
                return Err(StoreError::Graph(GraphError::NodeOutOfRange {
                    node: v,
                    node_count: n,
                }));
            }
        }
    }
    Ok(())
}

/// Relabels each group's members into new-id space (re-sorted).
fn relabel_groups(groups: &[VertexSet], new_of: &[u32]) -> Vec<Vec<NodeId>> {
    groups
        .iter()
        .map(|set| {
            let mut members: Vec<NodeId> = set.iter().map(|v| new_of[v as usize]).collect();
            members.sort_unstable();
            members
        })
        .collect()
}

/// Serialises `graph` and `groups` as a CKS2 snapshot into `writer`
/// (which must support seeking — section headers are patched in place),
/// returning the number of bytes written.
///
/// # Errors
///
/// [`StoreError::Io`] on write failure, and [`StoreError::Graph`] when a
/// group member is not a node of `graph` (checked before writing).
pub fn write_cks2_snapshot<W: Write + Seek>(
    graph: &Graph,
    groups: &[VertexSet],
    writer: &mut W,
    options: &Cks2PackOptions,
) -> Result<u64, StoreError> {
    let n = graph.node_count();
    validate_groups(groups, n)?;

    let directed = graph.is_directed();
    let mut degrees = vec![0u64; n];
    for (v, d) in degrees.iter_mut().enumerate() {
        *d = graph.out_neighbors(v as NodeId).len() as u64;
        if directed {
            *d += graph.in_neighbors(v as NodeId).len() as u64;
        }
    }
    let (old_of, new_of) = degree_order_permutation(&degrees);
    drop(degrees);

    let out_arcs = graph.out_csr().1.len() as u64;
    let in_arcs = graph.in_csr().map_or(0, |(_, t)| t.len() as u64);
    let memberships: u64 = groups.iter().map(|g| g.len() as u64).sum();
    let wide = choose_wide(out_arcs, in_arcs, memberships, options.force_wide);
    let groups_new = relabel_groups(groups, &new_of);

    let relabel =
        |list: &[NodeId], buf: &mut Vec<NodeId>| {
            buf.clear();
            buf.extend(list.iter().map(|&t| new_of[t as usize]));
            buf.sort_unstable();
        };
    let mut out_list = |new_id: NodeId, buf: &mut Vec<NodeId>| {
        relabel(graph.out_neighbors(old_of[new_id as usize]), buf);
        Ok(())
    };
    let mut in_list = |new_id: NodeId, buf: &mut Vec<NodeId>| {
        relabel(graph.in_neighbors(old_of[new_id as usize]), buf);
        Ok(())
    };

    pack_cks2_core(
        writer,
        directed,
        n as u64,
        graph.edge_count() as u64,
        &old_of,
        &groups_new,
        wide,
        &mut out_list,
        if directed { Some(&mut in_list) } else { None },
    )
}

/// Packs `graph` and `groups` into a CKS2 file at `path` (created or
/// truncated), returning the snapshot size in bytes.
///
/// # Errors
///
/// As [`write_cks2_snapshot`].
pub fn save_cks2_snapshot(
    path: impl AsRef<Path>,
    graph: &Graph,
    groups: &[VertexSet],
    options: &Cks2PackOptions,
) -> Result<u64, StoreError> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_cks2_snapshot(graph, groups, &mut writer, options)
}

/// Options for the bounded-memory streaming packer.
#[derive(Clone, Debug)]
pub struct StreamPackOptions {
    /// Whether the edge list describes a directed graph.
    pub directed: bool,
    /// Sort-buffer budget in bytes. This bounds the packer's dominant
    /// allocation; per-node bookkeeping (degrees + permutation, ~20
    /// bytes/node) comes on top. Tiny values work (runs just multiply).
    pub memory_budget_bytes: usize,
    /// Where spill runs and the staging CSR live. Defaults to the
    /// output file's directory — same filesystem, predictable space.
    pub temp_dir: Option<PathBuf>,
    /// See [`Cks2PackOptions::force_wide`].
    pub force_wide: bool,
}

impl Default for StreamPackOptions {
    fn default() -> StreamPackOptions {
        StreamPackOptions {
            directed: false,
            memory_budget_bytes: 256 << 20,
            temp_dir: None,
            force_wide: false,
        }
    }
}

/// What [`stream_pack_cks2`] did.
#[derive(Clone, Copy, Debug)]
pub struct StreamPackReport {
    /// Nodes in the packed graph (`max id + 1`, the edge-list rule).
    pub nodes: u64,
    /// The header's `m` (arcs if directed, undirected edges otherwise).
    pub edge_count: u64,
    /// Self-loop lines dropped (the `GraphBuilder` rule).
    pub self_loops_dropped: u64,
    /// Duplicate arcs collapsed by the merge.
    pub duplicates_dropped: u64,
    /// Sorted runs spilled to disk (0 = everything fit the budget).
    pub runs_spilled: u64,
    /// Final snapshot size in bytes.
    pub bytes_written: u64,
    /// Whether the snapshot used wide (u64) offsets.
    pub wide: bool,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A scratch directory removed on drop (best effort).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn create(base: &Path) -> io::Result<TempDir> {
        loop {
            let path = base.join(format!(
                "cks2-pack-{}-{}",
                std::process::id(),
                TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Accumulates `u64` sort keys under a memory cap, spilling sorted runs
/// to disk when full.
struct RunSet<'d> {
    dir: &'d Path,
    tag: &'static str,
    cap: usize,
    buf: Vec<u64>,
    runs: Vec<File>,
}

impl<'d> RunSet<'d> {
    fn new(dir: &'d Path, tag: &'static str, budget_bytes: usize) -> RunSet<'d> {
        // Floor keeps degenerate budgets functional: runs multiply
        // instead of the packer thrashing one key at a time.
        let cap = (budget_bytes / 8).max(4096);
        RunSet { dir, tag, cap, buf: Vec::new(), runs: Vec::new() }
    }

    fn push(&mut self, key: u64) -> io::Result<()> {
        if self.buf.len() >= self.cap {
            self.spill()?;
        }
        self.buf.push(key);
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        let path = self.dir.join(format!("{}-{:05}.run", self.tag, self.runs.len()));
        let mut w = BufWriter::new(
            File::options().read(true).write(true).create_new(true).open(&path)?,
        );
        for &k in &self.buf {
            w.write_all(&k.to_le_bytes())?;
        }
        let f = w.into_inner().map_err(io::IntoInnerError::into_error)?;
        self.buf.clear();
        self.runs.push(f);
        Ok(())
    }

    fn into_merge(mut self) -> io::Result<KeyMerge> {
        self.buf.sort_unstable();
        let mut readers = Vec::with_capacity(self.runs.len());
        for mut f in self.runs {
            f.seek(SeekFrom::Start(0))?;
            readers.push(BufReader::new(f));
        }
        KeyMerge::new(self.buf, readers)
    }
}

/// K-way merge over spilled runs plus the final in-memory run.
struct KeyMerge {
    mem: Vec<u64>,
    mem_pos: usize,
    readers: Vec<BufReader<File>>,
    // (key, source index); source == readers.len() is the memory run.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl KeyMerge {
    fn new(mem: Vec<u64>, readers: Vec<BufReader<File>>) -> io::Result<KeyMerge> {
        let mut merge = KeyMerge { mem, mem_pos: 0, readers, heap: BinaryHeap::new() };
        for src in 0..=merge.readers.len() {
            merge.refill(src)?;
        }
        Ok(merge)
    }

    fn refill(&mut self, src: usize) -> io::Result<()> {
        if src == self.readers.len() {
            if self.mem_pos < self.mem.len() {
                self.heap.push(Reverse((self.mem[self.mem_pos], src)));
                self.mem_pos += 1;
            }
            return Ok(());
        }
        let mut bytes = [0u8; 8];
        match self.readers[src].read_exact(&mut bytes) {
            Ok(()) => {
                self.heap.push(Reverse((u64::from_le_bytes(bytes), src)));
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn next_key(&mut self) -> io::Result<Option<u64>> {
        let Some(Reverse((key, src))) = self.heap.pop() else {
            return Ok(None);
        };
        self.refill(src)?;
        Ok(Some(key))
    }
}

/// Drains a key merge into a staging CSR: targets (u32 LE, in key
/// order) go to a temp file, per-source degrees stay in memory.
/// Consecutive duplicates collapse here. Returns
/// `(targets_file, degrees, arcs, duplicates)`.
fn drain_to_csr(
    mut merge: KeyMerge,
    n: usize,
    path: &Path,
) -> io::Result<(File, Vec<u64>, u64, u64)> {
    let mut degrees = vec![0u64; n];
    let mut w = BufWriter::new(
        File::options().read(true).write(true).create_new(true).open(path)?,
    );
    let mut prev: Option<u64> = None;
    let (mut arcs, mut dups) = (0u64, 0u64);
    while let Some(key) = merge.next_key()? {
        if prev == Some(key) {
            dups += 1;
            continue;
        }
        prev = Some(key);
        let (u, v) = ((key >> 32) as u32, key as u32);
        w.write_all(&v.to_le_bytes())?;
        degrees[u as usize] += 1;
        arcs += 1;
    }
    let f = w.into_inner().map_err(io::IntoInnerError::into_error)?;
    Ok((f, degrees, arcs, dups))
}

/// Random access into a staging CSR file: reads one source's target
/// block, maps it into new-id space, sorts it.
struct StagedCsr {
    file: File,
    offsets: Vec<u64>, // prefix sums of degrees, in entries (not bytes)
    bytes: Vec<u8>,
}

impl StagedCsr {
    fn new(file: File, degrees: &[u64]) -> StagedCsr {
        let mut offsets = Vec::with_capacity(degrees.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in degrees {
            acc += d;
            offsets.push(acc);
        }
        StagedCsr { file, offsets, bytes: Vec::new() }
    }

    fn read_relabeled(
        &mut self,
        old: NodeId,
        new_of: &[u32],
        buf: &mut Vec<NodeId>,
    ) -> io::Result<()> {
        let (s, e) = (self.offsets[old as usize], self.offsets[old as usize + 1]);
        self.bytes.resize(((e - s) * 4) as usize, 0);
        self.file.seek(SeekFrom::Start(s * 4))?;
        self.file.read_exact(&mut self.bytes)?;
        buf.clear();
        for c in self.bytes.chunks_exact(4) {
            let t = u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes"));
            buf.push(new_of[t as usize]);
        }
        buf.sort_unstable();
        Ok(())
    }
}

/// Packs a plain-text edge list straight into a CKS2 snapshot at
/// `out_path` without ever materialising the edge set: an external sort
/// (budget-bounded runs + k-way merge) builds a staging CSR on disk,
/// then blocks stream out in relabelled order. The output is
/// byte-identical to `save_cks2_snapshot(Graph::from_edges(..), ..)`
/// over the same input.
///
/// # Errors
///
/// [`StoreError::Io`] on any I/O failure or malformed edge-list line
/// (`InvalidData`, as text ingestion reports it), and
/// [`StoreError::Graph`] when a group member exceeds the discovered
/// node range.
pub fn stream_pack_cks2(
    edges_path: impl AsRef<Path>,
    groups: &[VertexSet],
    out_path: impl AsRef<Path>,
    options: &StreamPackOptions,
) -> Result<StreamPackReport, StoreError> {
    let out_path = out_path.as_ref();
    let temp_base = match &options.temp_dir {
        Some(dir) => dir.clone(),
        None => out_path.parent().map_or_else(|| PathBuf::from("."), Path::to_path_buf),
    };
    let tmp = TempDir::create(&temp_base)?;

    // Phase A: parse lines into sort keys, spilling budget-sized runs.
    // Undirected graphs store both orientations in one key set (the
    // graph's out-CSR holds both); directed graphs keep a second,
    // reverse-keyed set for the in-CSR, splitting the budget.
    let budget = if options.directed {
        options.memory_budget_bytes / 2
    } else {
        options.memory_budget_bytes
    };
    let mut fwd = RunSet::new(&tmp.path, "fwd", budget);
    let mut rev = options.directed.then(|| RunSet::new(&tmp.path, "rev", budget));

    let mut reader = BufReader::new(File::open(edges_path)?);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut max_id: Option<NodeId> = None;
    let mut self_loops = 0u64;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        match parse_edge_line(&line) {
            Ok(None) => continue,
            Ok(Some((u, v))) => {
                if u == v {
                    self_loops += 1; // GraphBuilder drops self-loops
                    continue;
                }
                max_id = Some(max_id.map_or(u.max(v), |m| m.max(u).max(v)));
                let (fk, rk) = (((u as u64) << 32) | v as u64, ((v as u64) << 32) | u as u64);
                fwd.push(fk)?;
                match &mut rev {
                    Some(rev) => rev.push(rk)?,
                    None => fwd.push(rk)?,
                }
            }
            Err(reason) => {
                let e = ParseEdgeListError { line: lineno, reason };
                return Err(StoreError::Io(io::Error::new(io::ErrorKind::InvalidData, e)));
            }
        }
    }
    let n = max_id.map_or(0u64, |m| m as u64 + 1);
    validate_groups(groups, n as usize)?;

    // Phase B: merge runs into staging CSRs (targets on disk, degrees
    // in memory).
    let runs_spilled = (fwd.runs.len() + rev.as_ref().map_or(0, |r| r.runs.len())) as u64;
    let (out_file, out_degrees, out_arcs, dups) =
        drain_to_csr(fwd.into_merge()?, n as usize, &tmp.path.join("fwd.csr"))?;
    let in_staged = match rev {
        Some(rev) => {
            // The reverse key set mirrors the forward one exactly, so
            // its duplicate count is not added again.
            let (f, deg, arcs, _) =
                drain_to_csr(rev.into_merge()?, n as usize, &tmp.path.join("rev.csr"))?;
            debug_assert_eq!(arcs, out_arcs, "reverse keys mirror forward keys");
            Some((f, deg, arcs))
        }
        None => None,
    };

    // Total degree drives the relabelling: out + in when directed,
    // the (symmetric) out-CSR alone otherwise — the same numbers the
    // in-memory packer reads off a built Graph.
    let mut degrees = out_degrees.clone();
    if let Some((_, in_deg, _)) = &in_staged {
        for (d, i) in degrees.iter_mut().zip(in_deg) {
            *d += i;
        }
    }
    let (old_of, new_of) = degree_order_permutation(&degrees);
    drop(degrees);

    let edge_count = if options.directed { out_arcs } else { out_arcs / 2 };
    let in_arcs = in_staged.as_ref().map_or(0, |&(_, _, a)| a);
    let memberships: u64 = groups.iter().map(|g| g.len() as u64).sum();
    let wide = choose_wide(out_arcs, in_arcs, memberships, options.force_wide);
    let groups_new = relabel_groups(groups, &new_of);

    // Phase C: stream blocks out in new-id order, reading each source's
    // staged targets back and relabelling on the fly.
    let mut out_staged = StagedCsr::new(out_file, &out_degrees);
    drop(out_degrees);
    let mut in_staged = in_staged.map(|(f, deg, _)| StagedCsr::new(f, &deg));

    let mut out_list = |new_id: NodeId, buf: &mut Vec<NodeId>| {
        out_staged.read_relabeled(old_of[new_id as usize], &new_of, buf).map_err(StoreError::Io)
    };
    let mut in_list = |new_id: NodeId, buf: &mut Vec<NodeId>| {
        in_staged
            .as_mut()
            .expect("closure only used when directed")
            .read_relabeled(old_of[new_id as usize], &new_of, buf)
            .map_err(StoreError::Io)
    };

    let mut writer = BufWriter::new(File::create(out_path)?);
    let bytes_written = pack_cks2_core(
        &mut writer,
        options.directed,
        n,
        edge_count,
        &old_of,
        &groups_new,
        wide,
        &mut out_list,
        if options.directed { Some(&mut in_list) } else { None },
    )?;

    Ok(StreamPackReport {
        nodes: n,
        edge_count,
        self_loops_dropped: self_loops,
        duplicates_dropped: dups,
        runs_spilled,
        bytes_written,
        wide,
    })
}
