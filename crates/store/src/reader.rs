//! Portable buffered loading: decode a CKS1 byte stream into owned
//! [`Graph`] / [`VertexSet`] values.
//!
//! This path works on any endianness and any alignment — each integer is
//! decoded explicitly with `from_le_bytes` — and is the reference
//! implementation the zero-copy view ([`crate::view`]) is tested
//! against. The graphs it produces are bit-identical to text ingestion
//! of the same data: packing preserves the exact arrays
//! `Csr::from_edges` built, and loading re-validates them through
//! [`Graph::try_from_csr_parts`].

use crate::error::StoreError;
use crate::format::{find_section, parse_sections, Header, Section, SectionId, ShardManifest};
use circlekit_graph::{Graph, NodeId, VertexSet};
use std::fs;
use std::io::Read;
use std::path::Path;

/// A fully materialised snapshot: the graph plus its group collections
/// (empty when the snapshot was packed without groups).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The stored graph.
    pub graph: Graph,
    /// The stored groups, in pack order.
    pub groups: Vec<VertexSet>,
}

fn decode_u64s(payload: &[u8]) -> Vec<u64> {
    payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

fn decode_u32s(payload: &[u8]) -> Vec<u32> {
    payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect()
}

fn to_usize(value: u64) -> Result<usize, StoreError> {
    usize::try_from(value).map_err(|_| StoreError::OffsetOverflow { value })
}

fn expect_len(section: &Section<'_>, expected: u64) -> Result<(), StoreError> {
    if section.payload.len() as u64 != expected {
        return Err(StoreError::WrongSectionLen {
            section: section.id.name(),
            expected,
            actual: section.payload.len() as u64,
        });
    }
    Ok(())
}

/// Decodes an offsets section into `usize`s, checking its length against
/// `count + 1` entries.
fn decode_offsets(section: &Section<'_>, count: u64) -> Result<Vec<usize>, StoreError> {
    let entries = count
        .checked_add(1)
        .ok_or(StoreError::OffsetOverflow { value: count })?;
    let bytes = entries
        .checked_mul(8)
        .ok_or(StoreError::OffsetOverflow { value: entries })?;
    expect_len(section, bytes)?;
    decode_u64s(section.payload).into_iter().map(to_usize).collect()
}

/// Checks the structural invariants the group sections must satisfy and
/// materialises the vertex sets.
pub(crate) fn build_groups(
    offsets: &[u64],
    members: &[NodeId],
    node_count: u64,
) -> Result<Vec<VertexSet>, StoreError> {
    let invalid = |group: usize, why: String| Err(StoreError::InvalidGroups { group, why });
    if offsets.first() != Some(&0) {
        return invalid(0, "group offsets do not start at 0".to_string());
    }
    if *offsets.last().expect("checked non-empty") != members.len() as u64 {
        return invalid(
            offsets.len() - 1,
            format!(
                "final group offset {} does not match member count {}",
                offsets.last().expect("checked non-empty"),
                members.len()
            ),
        );
    }
    // Full monotonicity before any slicing: a decreasing pair after an
    // inflated offset would otherwise index past `members`.
    if let Some(i) = (0..offsets.len() - 1).find(|&i| offsets[i] > offsets[i + 1]) {
        return invalid(i, "group offsets decrease".to_string());
    }
    let mut groups = Vec::with_capacity(offsets.len() - 1);
    for (i, w) in offsets.windows(2).enumerate() {
        let (start, end) = (w[0], w[1]);
        let slice = &members[to_usize(start)?..to_usize(end)?];
        let mut prev: Option<NodeId> = None;
        for &v in slice {
            if v as u64 >= node_count {
                return invalid(i, format!("member {v} outside 0..{node_count}"));
            }
            if prev.is_some_and(|p| p >= v) {
                return invalid(i, "members not sorted/duplicate-free".to_string());
            }
            prev = Some(v);
        }
        groups.push(VertexSet::from_sorted_unique(slice.to_vec()));
    }
    Ok(groups)
}

fn decode_graph(header: &Header, sections: &[Section<'_>]) -> Result<Graph, StoreError> {
    let directed = header.directed();
    let out_offsets = find_section(sections, SectionId::OutOffsets, true, true)?
        .expect("required section present");
    let out_targets = find_section(sections, SectionId::OutTargets, true, true)?
        .expect("required section present");
    let in_offsets = find_section(sections, SectionId::InOffsets, directed, directed)?;
    let in_targets = find_section(sections, SectionId::InTargets, directed, directed)?;

    let arc_bytes = |arcs: u64| {
        arcs.checked_mul(4).ok_or(StoreError::OffsetOverflow { value: arcs })
    };
    let offsets = decode_offsets(out_offsets, header.node_count)?;
    let arcs = *offsets.last().expect("offsets non-empty") as u64;
    expect_len(out_targets, arc_bytes(arcs)?)?;
    let targets = decode_u32s(out_targets.payload);

    let in_parts = match (in_offsets, in_targets) {
        (Some(io_sec), Some(it_sec)) => {
            let offsets = decode_offsets(io_sec, header.node_count)?;
            let arcs = *offsets.last().expect("offsets non-empty") as u64;
            expect_len(it_sec, arc_bytes(arcs)?)?;
            Some((offsets, decode_u32s(it_sec.payload)))
        }
        _ => None,
    };

    Ok(Graph::try_from_csr_parts(
        directed,
        to_usize(header.edge_count)?,
        offsets,
        targets,
        in_parts,
    )?)
}

/// Decodes a complete snapshot — CKS1 or CKS2, selected by the magic
/// bytes — from an in-memory byte slice. Both formats materialise to
/// the same [`Snapshot`]: a CKS2 file's relabelling is undone on load,
/// so the caller sees the original vertex ids either way.
///
/// # Errors
///
/// Any framing error from [`parse_sections`](crate::format::parse_sections),
/// plus the semantic [`StoreError`] variants when section sizes, CSR
/// invariants, or group invariants do not hold.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, StoreError> {
    if crate::cks2::is_cks2(bytes) {
        return crate::cks2::decode_cks2(bytes);
    }
    let (header, sections) = parse_sections(bytes)?;
    let graph = decode_graph(&header, &sections)?;
    let has = header.has_groups();
    let group_offsets = find_section(&sections, SectionId::GroupOffsets, has, has)?;
    let group_members = find_section(&sections, SectionId::GroupMembers, has, has)?;
    let groups = match (group_offsets, group_members) {
        (Some(go), Some(gm)) => {
            if go.payload.len() < 8 || go.payload.len() % 8 != 0 {
                return Err(StoreError::WrongSectionLen {
                    section: go.id.name(),
                    expected: 8,
                    actual: go.payload.len() as u64,
                });
            }
            let offsets = decode_u64s(go.payload);
            let members_len = *offsets.last().expect("checked non-empty");
            let bytes = members_len
                .checked_mul(4)
                .ok_or(StoreError::OffsetOverflow { value: members_len })?;
            expect_len(gm, bytes)?;
            let members = decode_u32s(gm.payload);
            build_groups(&offsets, &members, header.node_count)?
        }
        _ => Vec::new(),
    };
    decode_manifest(&header, &sections)?;
    Ok(Snapshot { graph, groups })
}

/// Looks up and validates the shard-manifest section under the header's
/// presence rules: required when [`Header::is_shard`], refused otherwise.
fn decode_manifest(
    header: &Header,
    sections: &[Section<'_>],
) -> Result<Option<ShardManifest>, StoreError> {
    let shard = header.is_shard();
    find_section(sections, SectionId::ShardManifest, shard, shard)?
        .map(|s| ShardManifest::decode(header, s.payload))
        .transpose()
}

/// The shard manifest of an in-memory snapshot byte stream: `Some` for
/// a shard sub-snapshot (fully validated), `None` for an ordinary CKS1
/// or CKS2 snapshot.
///
/// # Errors
///
/// Any framing error from [`parse_sections`](crate::format::parse_sections),
/// plus [`StoreError::ShardManifest`] when the section is present but
/// invalid, [`StoreError::MissingSection`] when the header's shard flag
/// is set without the section, or [`StoreError::UnexpectedSection`] for
/// the converse.
pub fn read_shard_manifest(bytes: &[u8]) -> Result<Option<ShardManifest>, StoreError> {
    if crate::cks2::is_cks2(bytes) {
        // CKS2 has its own flag namespace and no shard sections; a CKS2
        // file is never a shard.
        return Ok(None);
    }
    let (header, sections) = parse_sections(bytes)?;
    decode_manifest(&header, &sections)
}

/// Loads a snapshot file through the portable buffered path (one
/// `fs::read` plus an explicit little-endian decode).
///
/// # Errors
///
/// [`StoreError::Io`] on read failure, otherwise as [`decode_snapshot`].
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
    let bytes = fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Which snapshot format a byte stream declares, sniffed from its
/// magic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The uncompressed CKS1 layout (raw little-endian CSR arrays).
    Cks1,
    /// The compressed CKS2 layout (varint blocks + relabelling).
    Cks2,
}

impl SnapshotFormat {
    /// The format's display name (`"cks1"` / `"cks2"`, the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            SnapshotFormat::Cks1 => "cks1",
            SnapshotFormat::Cks2 => "cks2",
        }
    }
}

/// Sniffs the snapshot format from the magic bytes (`None` when the
/// bytes start with neither magic). Full validation happens on load.
pub fn snapshot_format(bytes: &[u8]) -> Option<SnapshotFormat> {
    if bytes.len() < 4 {
        return None;
    }
    if bytes[0..4] == crate::format::MAGIC {
        Some(SnapshotFormat::Cks1)
    } else if crate::cks2::is_cks2(bytes) {
        Some(SnapshotFormat::Cks2)
    } else {
        None
    }
}

/// Whether `bytes` begin with a known snapshot magic (CKS1 or CKS2). A
/// cheap sniff for format auto-detection; full validation happens on
/// load.
pub fn is_snapshot(bytes: &[u8]) -> bool {
    snapshot_format(bytes).is_some()
}

/// The snapshot format of the file at `path`, sniffed from its first
/// four bytes (`None` when it starts with neither magic). Missing or
/// unreadable files surface as `Err`.
///
/// # Errors
///
/// Any [`std::io::Error`] from opening or reading the file.
pub fn file_snapshot_format(path: impl AsRef<Path>) -> std::io::Result<Option<SnapshotFormat>> {
    let mut magic = [0u8; 4];
    let mut file = fs::File::open(path)?;
    let mut read = 0;
    while read < 4 {
        match file.read(&mut magic[read..])? {
            0 => return Ok(None), // shorter than the magic: not a snapshot
            k => read += k,
        }
    }
    Ok(snapshot_format(&magic))
}

/// Whether the file at `path` begins with a known snapshot magic (reads
/// at most four bytes).
///
/// # Errors
///
/// Any [`std::io::Error`] from opening or reading the file.
pub fn file_is_snapshot(path: impl AsRef<Path>) -> std::io::Result<bool> {
    Ok(file_snapshot_format(path)?.is_some())
}
