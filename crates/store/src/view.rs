//! [`SnapshotView`]: the zero-copy read path.
//!
//! After one validation pass (header + per-section checksums + offset
//! structure), the view borrows the CSR and group arrays directly from
//! the underlying buffer — no allocation proportional to the graph. This
//! requires a little-endian host (the stored integers are reinterpreted
//! in place) and an 8-byte-aligned buffer (a page-aligned memory map, or
//! [`crate::mmap::MappedSnapshot`]'s aligned fallback buffer); when
//! either does not hold, [`SnapshotView::parse`] reports
//! [`StoreError::NotZeroCopy`] and the portable
//! [`crate::reader::load_snapshot`] path remains available.
//!
//! The view validates everything needed for its own accessors to be
//! panic-free on any input that passes parsing: offsets are monotone and
//! bounded by the target arrays. Per-adjacency *sortedness* is not
//! checked here (reading neighbours does not require it);
//! [`SnapshotView::to_graph`] re-validates it when materialising a
//! [`Graph`], exactly like the buffered loader.

use crate::error::StoreError;
use crate::format::{
    find_section, parse_frames, parse_sections, Header, Section, SectionId, ShardManifest,
    CKS1_SPEC,
};
use crate::reader::{build_groups, Snapshot};
use circlekit_graph::{AdjacencyAccess, Graph, NodeId, VertexSet};
use std::convert::Infallible;

/// Description of one section, for `inspect`-style reporting.
#[derive(Clone, Copy, Debug)]
pub struct SectionInfo {
    /// Section name.
    pub name: &'static str,
    /// Unpadded payload size in bytes.
    pub bytes: u64,
    /// Verified CRC-32 of the payload.
    pub checksum: u32,
}

/// A validated, zero-copy view of a CKS1 snapshot buffer.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotView<'a> {
    header: Header,
    out_offsets: &'a [u64],
    out_targets: &'a [NodeId],
    in_offsets: Option<&'a [u64]>,
    in_targets: Option<&'a [NodeId]>,
    group_offsets: Option<&'a [u64]>,
    group_members: Option<&'a [NodeId]>,
    shard: Option<ShardManifest>,
}

/// Reinterprets a payload as a little-endian integer slice without
/// copying. `expected` is the required element count.
fn cast_slice<'a, T: Pod>(
    section: &Section<'a>,
    expected: u64,
) -> Result<&'a [T], StoreError> {
    let elem = std::mem::size_of::<T>() as u64;
    let bytes = expected
        .checked_mul(elem)
        .ok_or(StoreError::OffsetOverflow { value: expected })?;
    if section.payload.len() as u64 != bytes {
        return Err(StoreError::WrongSectionLen {
            section: section.id.name(),
            expected: bytes,
            actual: section.payload.len() as u64,
        });
    }
    // SAFETY: `T` is a plain-old-data integer type (`Pod` is sealed over
    // u32/u64), for which every bit pattern is a valid value;
    // `align_to` itself guarantees the middle slice is correctly
    // aligned, and we reject the buffer unless the prefix and suffix are
    // empty, i.e. unless the whole payload reinterprets cleanly.
    let (prefix, mid, suffix) = unsafe { section.payload.align_to::<T>() };
    if !prefix.is_empty() || !suffix.is_empty() {
        return Err(StoreError::NotZeroCopy { why: "payload is not naturally aligned" });
    }
    Ok(mid)
}

/// Marker for the integer types a payload may be reinterpreted as.
///
/// # Safety
///
/// Implementors must be plain-old-data: no padding, no invalid bit
/// patterns. Sealed to `u32` and `u64`.
unsafe trait Pod: Copy {}
// SAFETY: every bit pattern is a valid u32.
unsafe impl Pod for u32 {}
// SAFETY: every bit pattern is a valid u64.
unsafe impl Pod for u64 {}

/// Checks that an offsets array starts at 0, never decreases, and ends
/// exactly at `target_len`, making target slicing panic-free.
fn check_offsets(
    name: &'static str,
    offsets: &[u64],
    target_len: u64,
) -> Result<(), StoreError> {
    let bad = |why: String| {
        Err(StoreError::Graph(circlekit_graph::GraphError::InvalidCsr(format!("{name}: {why}"))))
    };
    match offsets.first() {
        Some(0) => {}
        Some(o) => return bad(format!("offsets[0] is {o}, expected 0")),
        None => return bad("offsets array is empty".to_string()),
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return bad("offsets decrease".to_string());
    }
    if *offsets.last().expect("non-empty") != target_len {
        return bad(format!(
            "final offset {} does not match target count {target_len}",
            offsets.last().expect("non-empty")
        ));
    }
    Ok(())
}

impl<'a> SnapshotView<'a> {
    /// Parses and validates `bytes` as a CKS1 snapshot, borrowing every
    /// array in place.
    ///
    /// # Errors
    ///
    /// Every framing and checksum error of
    /// [`parse_sections`](crate::format::parse_sections); the semantic
    /// size/structure errors shared with the buffered loader; and
    /// [`StoreError::NotZeroCopy`] on a big-endian host or a buffer
    /// whose payloads are not 8-byte aligned.
    pub fn parse(bytes: &'a [u8]) -> Result<SnapshotView<'a>, StoreError> {
        if cfg!(target_endian = "big") {
            return Err(StoreError::NotZeroCopy { why: "big-endian host" });
        }
        let (header, sections) = parse_sections(bytes)?;
        let directed = header.directed();
        let has_groups = header.has_groups();

        let sec_out_off = find_section(&sections, SectionId::OutOffsets, true, true)?
            .expect("required section present");
        let sec_out_tgt = find_section(&sections, SectionId::OutTargets, true, true)?
            .expect("required section present");
        let out_offsets: &[u64] = cast_slice(sec_out_off, header.node_count + 1)?;
        let out_arcs = out_offsets.last().copied().unwrap_or(0);
        let out_targets: &[NodeId] = cast_slice(sec_out_tgt, out_arcs)?;
        check_offsets("out-adjacency", out_offsets, out_targets.len() as u64)?;

        let (in_offsets, in_targets) = match (
            find_section(&sections, SectionId::InOffsets, directed, directed)?,
            find_section(&sections, SectionId::InTargets, directed, directed)?,
        ) {
            (Some(sec_off), Some(sec_tgt)) => {
                let offsets: &[u64] = cast_slice(sec_off, header.node_count + 1)?;
                let arcs = offsets.last().copied().unwrap_or(0);
                let targets: &[NodeId] = cast_slice(sec_tgt, arcs)?;
                check_offsets("in-adjacency", offsets, targets.len() as u64)?;
                (Some(offsets), Some(targets))
            }
            _ => (None, None),
        };

        let (group_offsets, group_members) = match (
            find_section(&sections, SectionId::GroupOffsets, has_groups, has_groups)?,
            find_section(&sections, SectionId::GroupMembers, has_groups, has_groups)?,
        ) {
            (Some(sec_off), Some(sec_mem)) => {
                if sec_off.payload.len() < 8 || sec_off.payload.len() % 8 != 0 {
                    return Err(StoreError::WrongSectionLen {
                        section: sec_off.id.name(),
                        expected: 8,
                        actual: sec_off.payload.len() as u64,
                    });
                }
                let offsets: &[u64] = cast_slice(sec_off, sec_off.payload.len() as u64 / 8)?;
                let members_len = offsets.last().copied().unwrap_or(0);
                let members: &[NodeId] = cast_slice(sec_mem, members_len)?;
                check_offsets("groups", offsets, members.len() as u64)
                    .map_err(|_| StoreError::InvalidGroups {
                        group: 0,
                        why: "group offsets are not monotone from 0".to_string(),
                    })?;
                (Some(offsets), Some(members))
            }
            _ => (None, None),
        };

        let is_shard = header.is_shard();
        let shard = find_section(&sections, SectionId::ShardManifest, is_shard, is_shard)?
            .map(|s| ShardManifest::decode(&header, s.payload))
            .transpose()?;

        Ok(SnapshotView {
            header,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            group_offsets,
            group_members,
            shard,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.header.node_count as usize
    }

    /// `m`: arcs for directed snapshots, undirected edges otherwise.
    pub fn edge_count(&self) -> usize {
        self.header.edge_count as usize
    }

    /// Whether the stored graph is directed.
    pub fn is_directed(&self) -> bool {
        self.header.directed()
    }

    /// Number of stored arcs (length of the out-targets array).
    pub fn arc_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Number of stored groups (0 when packed without groups).
    pub fn group_count(&self) -> usize {
        self.group_offsets.map_or(0, |o| o.len() - 1)
    }

    /// Total stored memberships across all groups.
    pub fn member_count(&self) -> usize {
        self.group_members.map_or(0, <[NodeId]>::len)
    }

    /// The shard manifest: `Some` for a shard sub-snapshot (already
    /// validated against the header by [`SnapshotView::parse`]), `None`
    /// for an ordinary snapshot.
    pub fn shard_manifest(&self) -> Option<&ShardManifest> {
        self.shard.as_ref()
    }

    /// Out-neighbours of `v`, borrowed from the snapshot buffer.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn out_neighbors(&self, v: NodeId) -> &'a [NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v] as usize..self.out_offsets[v + 1] as usize]
    }

    /// In-neighbours of `v` (the symmetric adjacency for undirected
    /// snapshots), borrowed from the snapshot buffer.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn in_neighbors(&self, v: NodeId) -> &'a [NodeId] {
        match (self.in_offsets, self.in_targets) {
            (Some(offsets), Some(targets)) => {
                let v = v as usize;
                &targets[offsets[v] as usize..offsets[v + 1] as usize]
            }
            _ => self.out_neighbors(v),
        }
    }

    /// Members of group `i`, borrowed from the snapshot buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i >= group_count()`.
    pub fn group(&self, i: usize) -> &'a [NodeId] {
        let offsets = self.group_offsets.expect("group_count() > 0 checked by caller");
        let members = self.group_members.expect("offsets and members coexist");
        &members[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// Materialises the stored graph, re-validating the full CSR
    /// invariants (including per-adjacency sortedness).
    ///
    /// # Errors
    ///
    /// [`StoreError::Graph`] when an invariant fails,
    /// [`StoreError::OffsetOverflow`] on a 32-bit host whose `usize`
    /// cannot hold a stored offset.
    pub fn to_graph(&self) -> Result<Graph, StoreError> {
        let widen = |offsets: &[u64]| -> Result<Vec<usize>, StoreError> {
            offsets
                .iter()
                .map(|&o| usize::try_from(o).map_err(|_| StoreError::OffsetOverflow { value: o }))
                .collect()
        };
        let in_parts = match (self.in_offsets, self.in_targets) {
            (Some(offsets), Some(targets)) => Some((widen(offsets)?, targets.to_vec())),
            _ => None,
        };
        Ok(Graph::try_from_csr_parts(
            self.is_directed(),
            self.edge_count(),
            widen(self.out_offsets)?,
            self.out_targets.to_vec(),
            in_parts,
        )?)
    }

    /// Materialises the stored groups (empty when packed without
    /// groups), re-validating the `VertexSet` invariants.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidGroups`] when a group is unsorted, carries
    /// duplicates, or references a node outside the graph.
    pub fn to_groups(&self) -> Result<Vec<VertexSet>, StoreError> {
        match (self.group_offsets, self.group_members) {
            (Some(offsets), Some(members)) => {
                build_groups(offsets, members, self.header.node_count)
            }
            _ => Ok(Vec::new()),
        }
    }

    /// Materialises the whole snapshot ([`SnapshotView::to_graph`] +
    /// [`SnapshotView::to_groups`]).
    ///
    /// # Errors
    ///
    /// As the two underlying conversions.
    pub fn to_snapshot(&self) -> Result<Snapshot, StoreError> {
        Ok(Snapshot { graph: self.to_graph()?, groups: self.to_groups()? })
    }
}

/// The CKS1 view serves adjacency straight from the (possibly mapped)
/// buffer, so paged scoring works over it too — without decompression,
/// since CKS1 stores raw arrays.
impl AdjacencyAccess for SnapshotView<'_> {
    type Error = Infallible;

    fn node_count(&self) -> usize {
        SnapshotView::node_count(self)
    }

    fn edge_count(&self) -> usize {
        SnapshotView::edge_count(self)
    }

    fn is_directed(&self) -> bool {
        SnapshotView::is_directed(self)
    }

    fn with_out_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error> {
        Ok(f(self.out_neighbors(v)))
    }

    fn with_in_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error> {
        Ok(f(self.in_neighbors(v)))
    }
}

/// Re-walks the sections of `bytes` for reporting: name, payload size,
/// and (verified) checksum of each, in file order. Dispatches on the
/// magic, so `inspect` handles CKS1 and CKS2 files alike.
///
/// # Errors
///
/// As [`parse_sections`](crate::format::parse_sections) (or its CKS2
/// counterpart).
pub fn section_infos(bytes: &[u8]) -> Result<(Header, Vec<SectionInfo>), StoreError> {
    let spec = if crate::cks2::is_cks2(bytes) { &crate::cks2::CKS2_SPEC } else { &CKS1_SPEC };
    let (header, frames) = parse_frames(spec, bytes)?;
    let infos = frames
        .iter()
        .map(|f| SectionInfo {
            name: f.name,
            bytes: f.payload.len() as u64,
            checksum: f.checksum,
        })
        .collect();
    Ok((header, infos))
}
