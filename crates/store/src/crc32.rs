//! CRC-32 (IEEE 802.3, reflected) — the per-section integrity check of
//! the CKS1 format.
//!
//! A CRC catches every single-bit flip and every burst error up to 32
//! bits, which covers the realistic failure modes of a snapshot file:
//! torn writes, bad sectors, and truncation (the latter is additionally
//! caught by the section length framing). It is not a cryptographic
//! digest and does not defend against deliberate tampering.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// `cksum`-compatible "CRC-32/ISO-HDLC" parameterisation used by zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finish()
}

/// CRC-32 of a whole file, streamed in 64 KiB chunks so arbitrarily
/// large snapshots never need to fit in memory. This is the identity the
/// replication layer compares: two servers replicate the same history
/// exactly when their base snapshot files carry the same CRC.
///
/// # Errors
///
/// Propagates I/O failures opening or reading the file.
pub fn file_crc32(path: &std::path::Path) -> std::io::Result<u32> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path)?;
    let mut hasher = Crc32::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match file.read(&mut buf) {
            Ok(0) => return Ok(hasher.finish()),
            Ok(n) => hasher.update(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Incremental CRC-32 state for streamed payloads: sections written
/// chunk by chunk (the CKS2 packer never holds a whole adjacency blob in
/// memory) checksum identically to a one-shot [`crc32`] over the
/// concatenated bytes.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (equivalent to `crc32(b"")` when finished untouched).
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The CRC-32 of everything fed so far (the state remains usable).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot_over_any_chunking() {
        let data: Vec<u8> = (0u16..512).map(|i| (i * 37 % 251) as u8).collect();
        let expected = crc32(&data);
        for chunk in [1usize, 3, 7, 64, 511, 512] {
            let mut h = Crc32::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finish(), expected, "chunk size {chunk}");
        }
        assert_eq!(Crc32::default().finish(), crc32(b""));
    }

    #[test]
    fn file_crc_matches_in_memory_crc() {
        let dir = std::env::temp_dir().join("circlekit-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("file-crc-{}.bin", std::process::id()));
        let data: Vec<u8> = (0u32..200_000).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        assert_eq!(file_crc32(&path).unwrap(), crc32(&data));
        std::fs::remove_file(&path).unwrap();
        assert!(file_crc32(&path).is_err());
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
