//! CRC-32 (IEEE 802.3, reflected) — the per-section integrity check of
//! the CKS1 format.
//!
//! A CRC catches every single-bit flip and every burst error up to 32
//! bits, which covers the realistic failure modes of a snapshot file:
//! torn writes, bad sectors, and truncation (the latter is additionally
//! caught by the section length framing). It is not a cryptographic
//! digest and does not defend against deliberate tampering.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// `cksum`-compatible "CRC-32/ISO-HDLC" parameterisation used by zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
