//! The CKS2 compressed snapshot format: width-reduced offsets, delta +
//! varint adjacency, degree-ordered relabelling.
//!
//! CKS2 reuses CKS1's 32-byte header and 16-byte section framing (magic
//! `CKS2`; see [`crate::format`]) but stores the graph compressed:
//!
//! ```text
//! section  1  permutation    node_count × u32          old_of[new]
//! section  2  out-adjacency  concatenated varint blocks (new-id space)
//! section  3  out-offsets    (node_count + 1) × u32|u64 byte offsets
//! section  4  in-adjacency   directed only
//! section  5  in-offsets     directed only
//! section  6  group-members  concatenated varint blocks (new-id space)
//! section  7  group-offsets  (group_count + 1) × u32|u64 byte offsets
//! ```
//!
//! Vertices are relabelled by **total degree descending** (ties broken
//! by ascending original id): hubs land on small ids, which shortens the
//! varints that reference them, and each vertex's neighbours compress to
//! small deltas (see [`crate::codec`]). The permutation section maps the
//! stored ids back, so [`Cks2View::to_graph`] / [`Cks2View::to_groups`]
//! reproduce the **original** ids bit-identically — scores, figures, and
//! rendered output cannot tell which format loaded the data.
//!
//! Offsets are `u32` when every compressed blob provably fits (the
//! common case — this is half the size win over CKS1's u64 offsets) and
//! `u64` otherwise, signalled by [`FLAG_WIDE`] in the header. The
//! selection rule is conservative and writer-side:
//! `5 bytes × item count` (a varint's maximum size) must fit `u32`.
//!
//! Scoring does not have to materialise any of this: [`Cks2View::paged`]
//! adapts the view to `circlekit_graph::AdjacencyAccess`, decoding one
//! vertex's list at a time into a scratch buffer, so an mmap-backed
//! snapshot larger than RAM can be scored section-by-section while the
//! OS pages the file in and out.

use crate::codec::{decode_list_into, CodecError};
use crate::error::StoreError;
use crate::format::{find_frame, parse_frames, FormatSpec, Frame, Header};
use crate::reader::Snapshot;
use circlekit_graph::{AdjacencyAccess, Graph, GraphError, NodeId, VertexSet};
use std::cell::RefCell;

/// The four magic bytes of a CKS2 snapshot.
pub const MAGIC2: [u8; 4] = *b"CKS2";
/// Current (and only) CKS2 version.
pub const VERSION2: u16 = 1;
/// Header flag: offset sections store u64 entries instead of u32.
pub const FLAG_WIDE: u16 = 1 << 2;

pub(crate) const SEC_PERMUTATION: u32 = 1;
pub(crate) const SEC_OUT_BLOCKS: u32 = 2;
pub(crate) const SEC_OUT_OFFSETS: u32 = 3;
pub(crate) const SEC_IN_BLOCKS: u32 = 4;
pub(crate) const SEC_IN_OFFSETS: u32 = 5;
pub(crate) const SEC_GROUP_BLOCKS: u32 = 6;
pub(crate) const SEC_GROUP_OFFSETS: u32 = 7;

pub(crate) fn cks2_section_name(v: u32) -> Option<&'static str> {
    match v {
        SEC_PERMUTATION => Some("permutation"),
        SEC_OUT_BLOCKS => Some("out-adjacency"),
        SEC_OUT_OFFSETS => Some("out-offsets"),
        SEC_IN_BLOCKS => Some("in-adjacency"),
        SEC_IN_OFFSETS => Some("in-offsets"),
        SEC_GROUP_BLOCKS => Some("group-members"),
        SEC_GROUP_OFFSETS => Some("group-offsets"),
        _ => None,
    }
}

/// The CKS2 framing parameters.
pub(crate) const CKS2_SPEC: FormatSpec = FormatSpec {
    magic: MAGIC2,
    version: VERSION2,
    known_flags: crate::format::FLAG_DIRECTED | crate::format::FLAG_GROUPS | FLAG_WIDE,
    section_name: cks2_section_name,
};

/// Whether `flags` declare wide (u64) offset sections.
pub(crate) fn is_wide(flags: u16) -> bool {
    flags & FLAG_WIDE != 0
}

/// An offsets section, borrowed at its stored width.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OffsetsView<'a> {
    /// u32 entries (the narrow, common case).
    Narrow(&'a [u32]),
    /// u64 entries (blobs past 4 GiB).
    Wide(&'a [u64]),
}

impl OffsetsView<'_> {
    pub(crate) fn len(self) -> usize {
        match self {
            OffsetsView::Narrow(s) => s.len(),
            OffsetsView::Wide(s) => s.len(),
        }
    }

    pub(crate) fn get(self, i: usize) -> u64 {
        match self {
            OffsetsView::Narrow(s) => s[i] as u64,
            OffsetsView::Wide(s) => s[i],
        }
    }

    pub(crate) fn to_vec(self) -> Vec<u64> {
        match self {
            OffsetsView::Narrow(s) => s.iter().map(|&o| o as u64).collect(),
            OffsetsView::Wide(s) => s.to_vec(),
        }
    }
}

/// Reinterprets a frame payload as a little-endian integer slice,
/// checking the element count (zero-copy; same contract as the CKS1
/// view's cast).
fn cast_frame<'a, T: PodInt>(frame: &Frame<'a>, expected: u64) -> Result<&'a [T], StoreError> {
    let elem = std::mem::size_of::<T>() as u64;
    let bytes = expected
        .checked_mul(elem)
        .ok_or(StoreError::OffsetOverflow { value: expected })?;
    if frame.payload.len() as u64 != bytes {
        return Err(StoreError::WrongSectionLen {
            section: frame.name,
            expected: bytes,
            actual: frame.payload.len() as u64,
        });
    }
    // SAFETY: `T` is a plain-old-data integer type (`PodInt` is sealed
    // over u32/u64) for which every bit pattern is valid; `align_to`
    // guarantees the middle slice is aligned, and we reject the buffer
    // unless the whole payload reinterprets cleanly.
    let (prefix, mid, suffix) = unsafe { frame.payload.align_to::<T>() };
    if !prefix.is_empty() || !suffix.is_empty() {
        return Err(StoreError::NotZeroCopy { why: "payload is not naturally aligned" });
    }
    Ok(mid)
}

/// Marker for the integer types a payload may be reinterpreted as.
///
/// # Safety
///
/// Implementors must be plain-old-data. Sealed to `u32` and `u64`.
unsafe trait PodInt: Copy {}
// SAFETY: every bit pattern is a valid u32.
unsafe impl PodInt for u32 {}
// SAFETY: every bit pattern is a valid u64.
unsafe impl PodInt for u64 {}

/// Checks a block-offsets array: starts at 0, never decreases, ends at
/// `blob_len` — making block slicing panic-free.
fn check_block_offsets(
    name: &'static str,
    get: impl Fn(usize) -> u64,
    len: usize,
    blob_len: u64,
) -> Result<(), StoreError> {
    let bad = |why: String| {
        Err(StoreError::Graph(GraphError::InvalidCsr(format!("{name}: {why}"))))
    };
    if len == 0 {
        return bad("offsets array is empty".to_string());
    }
    if get(0) != 0 {
        return bad(format!("offsets[0] is {}, expected 0", get(0)));
    }
    if (1..len).any(|i| get(i - 1) > get(i)) {
        return bad("offsets decrease".to_string());
    }
    if get(len - 1) != blob_len {
        return bad(format!(
            "final offset {} does not match compressed blob size {blob_len}",
            get(len - 1)
        ));
    }
    Ok(())
}

/// Maps a block [`CodecError`] into a section-qualified [`StoreError`].
fn codec_err(section: &'static str, item: u64, e: CodecError) -> StoreError {
    StoreError::Codec { section, item, why: e.why }
}

/// Inverts `old_of` (the stored permutation, new → old) into new_of
/// (old → new), verifying it is a bijection over `0..n`.
pub(crate) fn invert_permutation(old_of: &[u32]) -> Result<Vec<u32>, StoreError> {
    let n = old_of.len();
    let mut new_of = vec![0u32; n];
    let mut seen = vec![0u64; n.div_ceil(64)];
    for (new, &old) in old_of.iter().enumerate() {
        let o = old as usize;
        if o >= n {
            return Err(StoreError::BadPermutation {
                entry: new as u64,
                why: "entry outside the node range",
            });
        }
        let (word, bit) = (o / 64, o % 64);
        if seen[word] & (1 << bit) != 0 {
            return Err(StoreError::BadPermutation {
                entry: new as u64,
                why: "entry repeated (not a bijection)",
            });
        }
        seen[word] |= 1 << bit;
        new_of[o] = new as u32;
    }
    Ok(new_of)
}

/// The degree-descending relabelling: returns `(old_of, new_of)` where
/// `old_of[new] = old`. Ties break by ascending original id, so the
/// permutation is a pure function of the degree sequence — both packers
/// (in-memory and streaming) derive identical relabellings, which is
/// what makes their outputs byte-identical.
pub(crate) fn degree_order_permutation(degrees: &[u64]) -> (Vec<u32>, Vec<u32>) {
    let n = degrees.len();
    let mut old_of: Vec<u32> = (0..n as u32).collect();
    old_of.sort_unstable_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v));
    let mut new_of = vec![0u32; n];
    for (new, &old) in old_of.iter().enumerate() {
        new_of[old as usize] = new as u32;
    }
    (old_of, new_of)
}

/// Decodes every block of a compressed adjacency into a CSR in
/// **original-id** space: block `new_u` is decoded, its targets mapped
/// through `old_of`, re-sorted, and placed at `old_of[new_u]`'s slot.
fn materialize_csr(
    section: &'static str,
    offsets: &[u64],
    blocks: &[u8],
    old_of: &[u32],
    new_of: &[u32],
) -> Result<(Vec<usize>, Vec<u32>), StoreError> {
    let n = old_of.len();
    let mut csr_offsets = Vec::with_capacity(n + 1);
    csr_offsets.push(0usize);
    let mut targets: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    for &new_u in new_of.iter() {
        let new_u = new_u as usize;
        let (s, e) = (offsets[new_u] as usize, offsets[new_u + 1] as usize);
        decode_list_into(&blocks[s..e], n as u64, &mut scratch)
            .map_err(|e| codec_err(section, new_u as u64, e))?;
        for t in &mut scratch {
            *t = old_of[*t as usize];
        }
        scratch.sort_unstable();
        targets.extend_from_slice(&scratch);
        csr_offsets.push(targets.len());
    }
    Ok((csr_offsets, targets))
}

/// Decodes every group block, mapping members back to original ids.
fn materialize_groups(
    offsets: &[u64],
    blocks: &[u8],
    n: u64,
    old_of: &[u32],
) -> Result<Vec<VertexSet>, StoreError> {
    let mut groups = Vec::with_capacity(offsets.len().saturating_sub(1));
    let mut scratch: Vec<u32> = Vec::new();
    for i in 0..offsets.len().saturating_sub(1) {
        let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
        decode_list_into(&blocks[s..e], n, &mut scratch)
            .map_err(|e| codec_err("group-members", i as u64, e))?;
        let mut members: Vec<u32> =
            scratch.iter().map(|&m| old_of[m as usize]).collect();
        // A bijection maps the strictly increasing stored list to a
        // duplicate-free (but unsorted) one; restore sortedness.
        members.sort_unstable();
        groups.push(VertexSet::from_sorted_unique(members));
    }
    Ok(groups)
}

/// A validated, zero-copy view of a CKS2 snapshot buffer. Adjacency
/// stays compressed; accessors decode one vertex's block on demand.
#[derive(Clone, Copy, Debug)]
pub struct Cks2View<'a> {
    header: Header,
    perm: &'a [u32],
    out_offsets: OffsetsView<'a>,
    out_blocks: &'a [u8],
    in_offsets: Option<OffsetsView<'a>>,
    in_blocks: Option<&'a [u8]>,
    group_offsets: Option<OffsetsView<'a>>,
    group_blocks: Option<&'a [u8]>,
}

/// Locates an offsets/blocks section pair, casts the offsets at the
/// declared width, and checks the offset structure against the blob.
#[allow(clippy::too_many_arguments)]
fn load_pair<'a>(
    frames: &[Frame<'a>],
    offsets_id: u32,
    offsets_name: &'static str,
    blocks_id: u32,
    blocks_name: &'static str,
    entries: u64,
    wide: bool,
    required: bool,
    allowed: bool,
) -> Result<Option<(OffsetsView<'a>, &'a [u8])>, StoreError> {
    let sec_off = find_frame(frames, offsets_id, offsets_name, required, allowed)?;
    let sec_blk = find_frame(frames, blocks_id, blocks_name, required, allowed)?;
    match (sec_off, sec_blk) {
        (Some(off), Some(blk)) => {
            let offsets = if wide {
                OffsetsView::Wide(cast_frame::<u64>(off, entries)?)
            } else {
                OffsetsView::Narrow(cast_frame::<u32>(off, entries)?)
            };
            check_block_offsets(
                offsets_name,
                |i| offsets.get(i),
                offsets.len(),
                blk.payload.len() as u64,
            )?;
            Ok(Some((offsets, blk.payload)))
        }
        // One of the pair present without the other: find_frame's
        // required/allowed rules fired above unless both are optional
        // and only one exists — treat that as a missing section.
        (Some(_), None) => Err(StoreError::MissingSection { section: blocks_name }),
        (None, Some(_)) => Err(StoreError::MissingSection { section: offsets_name }),
        (None, None) => Ok(None),
    }
}

impl<'a> Cks2View<'a> {
    /// Parses and validates `bytes` as a CKS2 snapshot: framing and
    /// checksums via the shared [`crate::format`] walker, then
    /// permutation/offset structure. Blocks are *not* decoded here —
    /// each decodes (with full validation) when first touched.
    ///
    /// # Errors
    ///
    /// Every framing error of the shared section walker; the structural
    /// errors above; [`StoreError::NotZeroCopy`] on a big-endian host or
    /// a misaligned buffer (use [`crate::decode_snapshot`], which is
    /// portable, instead).
    pub fn parse(bytes: &'a [u8]) -> Result<Cks2View<'a>, StoreError> {
        if cfg!(target_endian = "big") {
            return Err(StoreError::NotZeroCopy { why: "big-endian host" });
        }
        let (header, frames) = parse_frames(&CKS2_SPEC, bytes)?;
        let n = header.node_count;
        if n > 1 << 32 {
            return Err(StoreError::OffsetOverflow { value: n });
        }
        let directed = header.directed();
        let has_groups = header.has_groups();
        let wide = is_wide(header.flags);

        let sec_perm = find_frame(&frames, SEC_PERMUTATION, "permutation", true, true)?
            .expect("required section present");
        let perm: &[u32] = cast_frame(sec_perm, n)?;

        let (out_offsets, out_blocks) = load_pair(
            &frames,
            SEC_OUT_OFFSETS,
            "out-offsets",
            SEC_OUT_BLOCKS,
            "out-adjacency",
            n + 1,
            wide,
            true,
            true,
        )?
        .expect("required pair present");

        let in_pair = load_pair(
            &frames,
            SEC_IN_OFFSETS,
            "in-offsets",
            SEC_IN_BLOCKS,
            "in-adjacency",
            n + 1,
            wide,
            directed,
            directed,
        )?;

        let group_pair = match find_frame(
            &frames,
            SEC_GROUP_OFFSETS,
            "group-offsets",
            has_groups,
            has_groups,
        )? {
            Some(off_frame) => {
                // Group count comes from the section length itself.
                let entry = if wide { 8 } else { 4 };
                if off_frame.payload.len() < entry || off_frame.payload.len() % entry != 0 {
                    return Err(StoreError::WrongSectionLen {
                        section: "group-offsets",
                        expected: entry as u64,
                        actual: off_frame.payload.len() as u64,
                    });
                }
                let entries = (off_frame.payload.len() / entry) as u64;
                load_pair(
                    &frames,
                    SEC_GROUP_OFFSETS,
                    "group-offsets",
                    SEC_GROUP_BLOCKS,
                    "group-members",
                    entries,
                    wide,
                    has_groups,
                    has_groups,
                )?
            }
            None => {
                // Only reachable when groups are not flagged; a stray
                // members section is UnexpectedSection via allowed=false.
                find_frame(&frames, SEC_GROUP_BLOCKS, "group-members", false, has_groups)?;
                None
            }
        };

        Ok(Cks2View {
            header,
            perm,
            out_offsets,
            out_blocks,
            in_offsets: in_pair.map(|(o, _)| o),
            in_blocks: in_pair.map(|(_, b)| b),
            group_offsets: group_pair.map(|(o, _)| o),
            group_blocks: group_pair.map(|(_, b)| b),
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.header.node_count as usize
    }

    /// `m`: arcs for directed snapshots, undirected edges otherwise.
    pub fn edge_count(&self) -> usize {
        self.header.edge_count as usize
    }

    /// Whether the stored graph is directed.
    pub fn is_directed(&self) -> bool {
        self.header.directed()
    }

    /// Whether offset sections are stored wide (u64).
    pub fn is_wide(&self) -> bool {
        is_wide(self.header.flags)
    }

    /// Number of stored groups (0 when packed without groups).
    pub fn group_count(&self) -> usize {
        self.group_offsets.map_or(0, |o| o.len() - 1)
    }

    /// The stored permutation: `permutation()[new] = old`.
    pub fn permutation(&self) -> &'a [u32] {
        self.perm
    }

    /// Compressed size in bytes of the out-adjacency blob (plus the
    /// in-adjacency blob when directed) — the `inspect` statistic.
    pub fn compressed_adjacency_bytes(&self) -> u64 {
        self.out_blocks.len() as u64 + self.in_blocks.map_or(0, |b| b.len() as u64)
    }

    /// Decodes the out-neighbour list of vertex `v` **in relabelled (new
    /// id) space** into `out`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Graph`] when `v` is out of range;
    /// [`StoreError::Codec`] when the block is corrupt.
    pub fn out_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) -> Result<(), StoreError> {
        self.decode_adjacency(self.out_offsets, self.out_blocks, "out-adjacency", v, out)
    }

    /// Decodes the in-neighbour list of `v` in relabelled space (for
    /// undirected snapshots, the out-list).
    ///
    /// # Errors
    ///
    /// As [`Cks2View::out_neighbors_into`].
    pub fn in_neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) -> Result<(), StoreError> {
        match (self.in_offsets, self.in_blocks) {
            (Some(offsets), Some(blocks)) => {
                self.decode_adjacency(offsets, blocks, "in-adjacency", v, out)
            }
            _ => self.out_neighbors_into(v, out),
        }
    }

    fn decode_adjacency(
        &self,
        offsets: OffsetsView<'a>,
        blocks: &'a [u8],
        section: &'static str,
        v: NodeId,
        out: &mut Vec<NodeId>,
    ) -> Result<(), StoreError> {
        let n = self.node_count();
        if v as usize >= n {
            return Err(StoreError::Graph(GraphError::NodeOutOfRange {
                node: v,
                node_count: n,
            }));
        }
        let (s, e) = (offsets.get(v as usize) as usize, offsets.get(v as usize + 1) as usize);
        decode_list_into(&blocks[s..e], n as u64, out)
            .map_err(|e| codec_err(section, v as u64, e))
    }

    /// Decodes the members of group `i` **in relabelled space** into
    /// `out`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] on a corrupt block.
    ///
    /// # Panics
    ///
    /// Panics if `i >= group_count()`.
    pub fn group_into(&self, i: usize, out: &mut Vec<NodeId>) -> Result<(), StoreError> {
        let offsets = self.group_offsets.expect("group_count() > 0 checked by caller");
        let blocks = self.group_blocks.expect("offsets and members coexist");
        let (s, e) = (offsets.get(i) as usize, offsets.get(i + 1) as usize);
        decode_list_into(&blocks[s..e], self.header.node_count, out)
            .map_err(|e| codec_err("group-members", i as u64, e))
    }

    /// All stored groups as vertex sets **in relabelled space** — useful
    /// for inspecting the on-disk layout. (Paged scoring via
    /// [`Cks2View::paged`] works in original-id space and takes the
    /// original groups, e.g. from [`Cks2View::to_groups`].)
    ///
    /// # Errors
    ///
    /// As [`Cks2View::group_into`].
    pub fn relabeled_groups(&self) -> Result<Vec<VertexSet>, StoreError> {
        let mut groups = Vec::with_capacity(self.group_count());
        let mut scratch = Vec::new();
        for i in 0..self.group_count() {
            self.group_into(i, &mut scratch)?;
            groups.push(VertexSet::from_sorted_unique(scratch.clone()));
        }
        Ok(groups)
    }

    /// Adapts this view to `AdjacencyAccess` for paged scoring, **in
    /// original-id space**: each neighbour access decodes one block into
    /// an internal scratch buffer, maps it back through the permutation,
    /// and re-sorts — touching only the mapped pages that block lives
    /// on. Because the served ids (and therefore every iteration order
    /// downstream) match the original graph exactly, paged scores are
    /// bit-identical to scoring the materialised graph — including
    /// order-sensitive floating-point accumulations like Avg-ODF.
    ///
    /// Costs `O(node_count)` memory for the inverse permutation; the
    /// adjacency itself stays compressed on disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPermutation`] when the stored permutation is not
    /// a bijection.
    pub fn paged(&self) -> Result<Cks2Paged<'a>, StoreError> {
        let new_of = invert_permutation(self.perm)?;
        Ok(Cks2Paged {
            view: *self,
            new_of,
            out_scratch: RefCell::new(Vec::new()),
            in_scratch: RefCell::new(Vec::new()),
        })
    }

    /// Materialises the stored graph **with original vertex ids**: every
    /// block is decoded, mapped through the permutation, and
    /// re-validated through the full CSR invariants — the result is
    /// bit-identical to the graph that was packed.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPermutation`], [`StoreError::Codec`],
    /// [`StoreError::Graph`] when an invariant fails.
    pub fn to_graph(&self) -> Result<Graph, StoreError> {
        let new_of = invert_permutation(self.perm)?;
        let out_offsets = self.out_offsets.to_vec();
        let (offsets, targets) =
            materialize_csr("out-adjacency", &out_offsets, self.out_blocks, self.perm, &new_of)?;
        let in_parts = match (self.in_offsets, self.in_blocks) {
            (Some(off), Some(blocks)) => {
                let off = off.to_vec();
                Some(materialize_csr("in-adjacency", &off, blocks, self.perm, &new_of)?)
            }
            _ => None,
        };
        Ok(Graph::try_from_csr_parts(
            self.is_directed(),
            self.edge_count(),
            offsets,
            targets,
            in_parts,
        )?)
    }

    /// Materialises the stored groups with original vertex ids.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPermutation`] and [`StoreError::Codec`].
    pub fn to_groups(&self) -> Result<Vec<VertexSet>, StoreError> {
        match (self.group_offsets, self.group_blocks) {
            (Some(offsets), Some(blocks)) => {
                let new_of = invert_permutation(self.perm)?;
                drop(new_of); // only the bijection check is needed here
                materialize_groups(
                    &offsets.to_vec(),
                    blocks,
                    self.header.node_count,
                    self.perm,
                )
            }
            _ => Ok(Vec::new()),
        }
    }

    /// Materialises the whole snapshot with original ids
    /// ([`Cks2View::to_graph`] + [`Cks2View::to_groups`]).
    ///
    /// # Errors
    ///
    /// As the two underlying conversions.
    pub fn to_snapshot(&self) -> Result<Snapshot, StoreError> {
        Ok(Snapshot { graph: self.to_graph()?, groups: self.to_groups()? })
    }
}

/// [`Cks2View`] adapted to `AdjacencyAccess`: neighbour lists decode
/// into reusable scratch buffers and are mapped back to **original
/// vertex ids** through the embedded permutation, so paged scoring sees
/// exactly the adjacency the original graph would serve. Built by
/// [`Cks2View::paged`].
#[derive(Debug)]
pub struct Cks2Paged<'a> {
    view: Cks2View<'a>,
    /// Inverse permutation: `new_of[old] = new` (validated bijection).
    new_of: Vec<u32>,
    out_scratch: RefCell<Vec<NodeId>>,
    in_scratch: RefCell<Vec<NodeId>>,
}

impl Cks2Paged<'_> {
    /// Maps an original vertex id to its relabelled id, bounds-checked.
    fn new_id(&self, v: NodeId) -> Result<NodeId, StoreError> {
        self.new_of.get(v as usize).copied().ok_or(StoreError::Graph(
            GraphError::NodeOutOfRange { node: v, node_count: self.new_of.len() },
        ))
    }

    /// Decodes one block (relabelled space), un-permutes the ids, and
    /// re-sorts so callers observe the original-id neighbour order.
    fn unpermute(&self, buf: &mut [NodeId]) {
        let old_of = self.view.perm;
        for t in buf.iter_mut() {
            *t = old_of[*t as usize];
        }
        buf.sort_unstable();
    }

    fn with_decoded<R>(
        &self,
        scratch: &RefCell<Vec<NodeId>>,
        decode: impl Fn(&mut Vec<NodeId>) -> Result<(), StoreError>,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, StoreError> {
        match scratch.try_borrow_mut() {
            Ok(mut buf) => {
                decode(&mut buf)?;
                Ok(f(&buf))
            }
            // Re-entrant access (e.g. nested iteration): fall back to a
            // fresh allocation rather than panicking on the RefCell.
            Err(_) => {
                let mut buf = Vec::new();
                decode(&mut buf)?;
                Ok(f(&buf))
            }
        }
    }
}

impl AdjacencyAccess for Cks2Paged<'_> {
    type Error = StoreError;

    fn node_count(&self) -> usize {
        self.view.node_count()
    }

    fn edge_count(&self) -> usize {
        self.view.edge_count()
    }

    fn is_directed(&self) -> bool {
        self.view.is_directed()
    }

    fn with_out_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error> {
        let new_v = self.new_id(v)?;
        self.with_decoded(
            &self.out_scratch,
            |buf| {
                self.view.out_neighbors_into(new_v, buf)?;
                self.unpermute(buf);
                Ok(())
            },
            f,
        )
    }

    fn with_in_neighbors<R>(
        &self,
        v: NodeId,
        f: impl FnOnce(&[NodeId]) -> R,
    ) -> Result<R, Self::Error> {
        let new_v = self.new_id(v)?;
        self.with_decoded(
            &self.in_scratch,
            |buf| {
                self.view.in_neighbors_into(new_v, buf)?;
                self.unpermute(buf);
                Ok(())
            },
            f,
        )
    }
}

/// The portable buffered CKS2 decode: explicit little-endian reads, any
/// host alignment/endianness — the reference path the zero-copy view is
/// tested against, mirroring CKS1's `decode_snapshot`.
pub(crate) fn decode_cks2(bytes: &[u8]) -> Result<Snapshot, StoreError> {
    let (header, frames) = parse_frames(&CKS2_SPEC, bytes)?;
    let n = header.node_count;
    if n > 1 << 32 {
        return Err(StoreError::OffsetOverflow { value: n });
    }
    let directed = header.directed();
    let has_groups = header.has_groups();
    let wide = is_wide(header.flags);

    let expect_len = |frame: &Frame<'_>, expected: u64| -> Result<(), StoreError> {
        if frame.payload.len() as u64 != expected {
            return Err(StoreError::WrongSectionLen {
                section: frame.name,
                expected,
                actual: frame.payload.len() as u64,
            });
        }
        Ok(())
    };
    let decode_offsets = |frame: &Frame<'_>, entries: u64| -> Result<Vec<u64>, StoreError> {
        let width = if wide { 8u64 } else { 4 };
        expect_len(
            frame,
            entries
                .checked_mul(width)
                .ok_or(StoreError::OffsetOverflow { value: entries })?,
        )?;
        Ok(if wide {
            frame
                .payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
                .collect()
        } else {
            frame
                .payload
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")) as u64)
                .collect()
        })
    };

    let sec_perm = find_frame(&frames, SEC_PERMUTATION, "permutation", true, true)?
        .expect("required section present");
    expect_len(sec_perm, n.checked_mul(4).ok_or(StoreError::OffsetOverflow { value: n })?)?;
    let old_of: Vec<u32> = sec_perm
        .payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect();
    let new_of = invert_permutation(&old_of)?;

    #[allow(clippy::type_complexity)]
    let load = |offsets_id: u32,
                offsets_name: &'static str,
                blocks_id: u32,
                blocks_name: &'static str,
                entries: u64,
                required: bool,
                allowed: bool|
     -> Result<Option<(Vec<u64>, &[u8])>, StoreError> {
        let sec_off = find_frame(&frames, offsets_id, offsets_name, required, allowed)?;
        let sec_blk = find_frame(&frames, blocks_id, blocks_name, required, allowed)?;
        match (sec_off, sec_blk) {
            (Some(off), Some(blk)) => {
                let offsets = decode_offsets(off, entries)?;
                check_block_offsets(
                    offsets_name,
                    |i| offsets[i],
                    offsets.len(),
                    blk.payload.len() as u64,
                )?;
                Ok(Some((offsets, blk.payload)))
            }
            (Some(_), None) => Err(StoreError::MissingSection { section: blocks_name }),
            (None, Some(_)) => Err(StoreError::MissingSection { section: offsets_name }),
            (None, None) => Ok(None),
        }
    };

    let (out_offsets, out_blocks) = load(
        SEC_OUT_OFFSETS,
        "out-offsets",
        SEC_OUT_BLOCKS,
        "out-adjacency",
        n + 1,
        true,
        true,
    )?
    .expect("required pair present");
    let (offsets, targets) =
        materialize_csr("out-adjacency", &out_offsets, out_blocks, &old_of, &new_of)?;

    let in_parts = match load(
        SEC_IN_OFFSETS,
        "in-offsets",
        SEC_IN_BLOCKS,
        "in-adjacency",
        n + 1,
        directed,
        directed,
    )? {
        Some((in_offsets, in_blocks)) => {
            Some(materialize_csr("in-adjacency", &in_offsets, in_blocks, &old_of, &new_of)?)
        }
        None => None,
    };

    let graph = Graph::try_from_csr_parts(
        directed,
        usize::try_from(header.edge_count)
            .map_err(|_| StoreError::OffsetOverflow { value: header.edge_count })?,
        offsets,
        targets,
        in_parts,
    )?;

    let groups = match find_frame(&frames, SEC_GROUP_OFFSETS, "group-offsets", has_groups, has_groups)? {
        Some(off_frame) => {
            let entry = if wide { 8 } else { 4 };
            if off_frame.payload.len() < entry || off_frame.payload.len() % entry != 0 {
                return Err(StoreError::WrongSectionLen {
                    section: "group-offsets",
                    expected: entry as u64,
                    actual: off_frame.payload.len() as u64,
                });
            }
            let entries = (off_frame.payload.len() / entry) as u64;
            let (group_offsets, group_blocks) = load(
                SEC_GROUP_OFFSETS,
                "group-offsets",
                SEC_GROUP_BLOCKS,
                "group-members",
                entries,
                has_groups,
                has_groups,
            )?
            .expect("offsets frame just found");
            materialize_groups(&group_offsets, group_blocks, n, &old_of)?
        }
        None => {
            find_frame(&frames, SEC_GROUP_BLOCKS, "group-members", false, has_groups)?;
            Vec::new()
        }
    };

    Ok(Snapshot { graph, groups })
}

/// Whether `bytes` begin with the CKS2 magic.
pub fn is_cks2(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[0..4] == MAGIC2
}
