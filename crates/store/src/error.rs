//! [`StoreError`]: every way a snapshot can fail to read or write.
//!
//! Corruption is an expected input class for an on-disk format, so each
//! detectable defect has its own variant — callers (the CLI, the
//! `reproduce` driver, CI's corruption smoke test) render them as
//! actionable messages, and nothing in this crate panics on bad bytes.

use circlekit_graph::GraphError;
use std::fmt;
use std::io;

/// Why reading or writing a snapshot (CKS1 or CKS2) failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file is smaller than the fixed header.
    TooShort {
        /// Actual file length in bytes.
        len: u64,
    },
    /// The file does not start with a known snapshot magic
    /// (`CKS1`/`CKS2`).
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The header carries flag bits this build does not know.
    UnknownFlags {
        /// The offending flag word.
        flags: u16,
    },
    /// The header checksum does not match the header bytes.
    HeaderChecksum {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum recomputed from the header bytes.
        actual: u32,
    },
    /// The file ends in the middle of the named structure.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's recorded length exceeds the bytes remaining in the
    /// file (truncation or a corrupted length field).
    SectionOversize {
        /// Raw section id.
        section: u32,
        /// Recorded payload length.
        len: u64,
        /// Bytes actually remaining after the section header.
        remaining: u64,
    },
    /// A section id this build does not know.
    UnknownSection {
        /// Raw section id.
        section: u32,
    },
    /// The same section appears twice.
    DuplicateSection {
        /// Section name.
        section: &'static str,
    },
    /// A section required by the header flags is absent.
    MissingSection {
        /// Section name.
        section: &'static str,
    },
    /// A section present in the file is not permitted by the header
    /// flags (e.g. in-adjacency in an undirected snapshot).
    UnexpectedSection {
        /// Section name.
        section: &'static str,
    },
    /// A section's payload does not match its recorded checksum.
    SectionChecksum {
        /// Section name.
        section: &'static str,
        /// Checksum recorded in the section header.
        expected: u32,
        /// Checksum recomputed from the payload.
        actual: u32,
    },
    /// A section's length disagrees with the counts in the header.
    WrongSectionLen {
        /// Section name.
        section: &'static str,
        /// Length implied by the header counts.
        expected: u64,
        /// Length recorded in the section header.
        actual: u64,
    },
    /// Bytes remain after the last section.
    TrailingData {
        /// Number of surplus bytes.
        extra: u64,
    },
    /// A stored 64-bit value does not fit this platform's `usize`.
    OffsetOverflow {
        /// The offending value.
        value: u64,
    },
    /// A stored group violates the `VertexSet` invariants.
    InvalidGroups {
        /// Index of the offending group.
        group: usize,
        /// What was wrong.
        why: String,
    },
    /// A compressed (varint/delta) adjacency or membership block does
    /// not decode: truncated or overlong varint, zero delta (duplicate
    /// value), or a value outside the graph (CKS2 only).
    Codec {
        /// Section name the block lives in.
        section: &'static str,
        /// Index of the offending block (vertex id or group index).
        item: u64,
        /// What was wrong.
        why: &'static str,
    },
    /// The CKS2 permutation section is not a bijection over the node ids
    /// (an entry out of range or repeated).
    BadPermutation {
        /// Index of the offending permutation entry.
        entry: u64,
        /// What was wrong.
        why: &'static str,
    },
    /// The shard-manifest section is malformed or inconsistent with the
    /// header (wrong length, zero shard count, index outside the count,
    /// parent node count disagreeing with the header, …).
    ShardManifest {
        /// What was wrong.
        why: String,
    },
    /// The CSR arrays decoded cleanly but violate a graph invariant.
    Graph(GraphError),
    /// The zero-copy view cannot be built on this host (big-endian
    /// target or a misaligned buffer); the buffered loader still works.
    NotZeroCopy {
        /// Why the view is unavailable.
        why: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            StoreError::TooShort { len } => {
                write!(f, "file is {len} bytes, smaller than the snapshot header")
            }
            StoreError::BadMagic { found } => write!(
                f,
                "not a CKS1/CKS2 snapshot (magic bytes {:02x} {:02x} {:02x} {:02x})",
                found[0], found[1], found[2], found[3]
            ),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            StoreError::UnknownFlags { flags } => {
                write!(f, "header carries unknown flag bits {flags:#06x}")
            }
            StoreError::HeaderChecksum { expected, actual } => write!(
                f,
                "header checksum mismatch: recorded {expected:#010x}, computed {actual:#010x}"
            ),
            StoreError::Truncated { context } => {
                write!(f, "file truncated while reading {context}")
            }
            StoreError::SectionOversize { section, len, remaining } => write!(
                f,
                "section {section} claims {len} payload bytes but only {remaining} remain \
                 (truncated file or corrupted length)"
            ),
            StoreError::UnknownSection { section } => write!(f, "unknown section id {section}"),
            StoreError::DuplicateSection { section } => {
                write!(f, "section {section} appears more than once")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
            StoreError::UnexpectedSection { section } => {
                write!(f, "section {section} is not permitted by the header flags")
            }
            StoreError::SectionChecksum { section, expected, actual } => write!(
                f,
                "section {section} checksum mismatch: recorded {expected:#010x}, \
                 computed {actual:#010x}"
            ),
            StoreError::WrongSectionLen { section, expected, actual } => write!(
                f,
                "section {section} is {actual} bytes, but the header counts imply {expected}"
            ),
            StoreError::TrailingData { extra } => {
                write!(f, "{extra} surplus bytes after the last section")
            }
            StoreError::OffsetOverflow { value } => {
                write!(f, "stored value {value} does not fit this platform's usize")
            }
            StoreError::InvalidGroups { group, why } => {
                write!(f, "group {group} is invalid: {why}")
            }
            StoreError::Codec { section, item, why } => {
                write!(f, "section {section}, block {item}: {why}")
            }
            StoreError::BadPermutation { entry, why } => {
                write!(f, "permutation entry {entry}: {why}")
            }
            StoreError::ShardManifest { why } => {
                write!(f, "shard manifest is invalid: {why}")
            }
            StoreError::Graph(e) => write!(f, "snapshot decodes to an invalid graph: {e}"),
            StoreError::NotZeroCopy { why } => {
                write!(f, "zero-copy view unavailable: {why} (use the buffered loader)")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> StoreError {
        StoreError::Graph(e)
    }
}
