//! Packing a graph (and optional group collections) into a CKS1 stream.

use crate::error::StoreError;
use crate::format::{
    padded_len, Header, SectionId, ShardManifest, FLAG_DIRECTED, FLAG_GROUPS, FLAG_SHARD,
    SECTION_HEADER_LEN,
};
use crate::{crc32::crc32, HEADER_LEN};
use circlekit_graph::{Graph, GraphError, NodeId, VertexSet};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

fn u64_bytes(values: impl ExactSizeIterator<Item = u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn u32_bytes(values: &[NodeId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn write_section<W: Write>(w: &mut W, id: SectionId, payload: &[u8]) -> io::Result<u64> {
    let mut head = [0u8; SECTION_HEADER_LEN];
    head[0..4].copy_from_slice(&(id as u32).to_le_bytes());
    head[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
    head[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    let pad = (padded_len(payload.len() as u64) - payload.len() as u64) as usize;
    if pad > 0 {
        w.write_all(&[0u8; 7][..pad])?;
    }
    Ok(SECTION_HEADER_LEN as u64 + padded_len(payload.len() as u64))
}

/// Serialises `graph` and `groups` as a CKS1 snapshot into `writer`,
/// returning the number of bytes written. Pass an empty `groups` slice
/// to pack the graph alone.
///
/// # Errors
///
/// [`StoreError::Io`] on write failure, and
/// [`StoreError::Graph`] (as [`GraphError::NodeOutOfRange`]) when a
/// group member is not a node of `graph` — the same rule text ingestion
/// enforces, checked *before* anything is written.
pub fn write_snapshot<W: Write>(
    graph: &Graph,
    groups: &[VertexSet],
    writer: &mut W,
) -> Result<u64, StoreError> {
    write_snapshot_with_manifest(graph, groups, None, writer)
}

/// [`write_snapshot`] for a shard sub-snapshot: sets [`FLAG_SHARD`] and
/// appends the shard-manifest section binding this file to its parent.
/// The graph must keep the parent's full node-id space (the manifest's
/// `parent_node_count` is validated against the header on every load).
///
/// # Errors
///
/// As [`write_snapshot`], plus [`StoreError::ShardManifest`] when the
/// manifest would not decode (zero count, index outside the count, or a
/// `parent_node_count` that disagrees with the graph).
pub fn write_shard_snapshot<W: Write>(
    graph: &Graph,
    groups: &[VertexSet],
    manifest: &ShardManifest,
    writer: &mut W,
) -> Result<u64, StoreError> {
    write_snapshot_with_manifest(graph, groups, Some(manifest), writer)
}

fn write_snapshot_with_manifest<W: Write>(
    graph: &Graph,
    groups: &[VertexSet],
    manifest: Option<&ShardManifest>,
    writer: &mut W,
) -> Result<u64, StoreError> {
    let n = graph.node_count();
    for set in groups {
        for v in set.iter() {
            if v as usize >= n {
                return Err(StoreError::Graph(GraphError::NodeOutOfRange {
                    node: v,
                    node_count: n,
                }));
            }
        }
    }

    let mut flags = 0u16;
    if graph.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    if !groups.is_empty() {
        flags |= FLAG_GROUPS;
    }
    if manifest.is_some() {
        flags |= FLAG_SHARD;
    }
    let section_count = 2
        + if graph.is_directed() { 2 } else { 0 }
        + if groups.is_empty() { 0 } else { 2 }
        + if manifest.is_some() { 1 } else { 0 };
    let header = Header {
        flags,
        node_count: n as u64,
        edge_count: graph.edge_count() as u64,
        section_count,
    };
    if let Some(manifest) = manifest {
        // Validate before writing anything: a manifest that would not
        // decode must not produce a file.
        ShardManifest::decode(&header, &manifest.encode())?;
    }
    writer.write_all(&header.encode())?;
    let mut written = HEADER_LEN as u64;

    let (out_offsets, out_targets) = graph.out_csr();
    written += write_section(
        writer,
        SectionId::OutOffsets,
        &u64_bytes(out_offsets.iter().map(|&o| o as u64)),
    )?;
    written += write_section(writer, SectionId::OutTargets, &u32_bytes(out_targets))?;
    if let Some((in_offsets, in_targets)) = graph.in_csr() {
        written += write_section(
            writer,
            SectionId::InOffsets,
            &u64_bytes(in_offsets.iter().map(|&o| o as u64)),
        )?;
        written += write_section(writer, SectionId::InTargets, &u32_bytes(in_targets))?;
    }
    if !groups.is_empty() {
        let mut offsets = Vec::with_capacity(groups.len() + 1);
        let mut members: Vec<NodeId> = Vec::new();
        offsets.push(0u64);
        for set in groups {
            members.extend(set.iter());
            offsets.push(members.len() as u64);
        }
        written += write_section(writer, SectionId::GroupOffsets, &u64_bytes(offsets.into_iter()))?;
        written += write_section(writer, SectionId::GroupMembers, &u32_bytes(&members))?;
    }
    if let Some(manifest) = manifest {
        written += write_section(writer, SectionId::ShardManifest, &manifest.encode())?;
    }
    writer.flush()?;
    Ok(written)
}

/// Packs `graph` and `groups` into the file at `path` (created or
/// truncated), returning the snapshot size in bytes.
///
/// # Errors
///
/// As [`write_snapshot`].
pub fn save_snapshot(
    path: impl AsRef<Path>,
    graph: &Graph,
    groups: &[VertexSet],
) -> Result<u64, StoreError> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_snapshot(graph, groups, &mut writer)
}

/// Packs a shard sub-snapshot into the file at `path`; see
/// [`write_shard_snapshot`].
///
/// # Errors
///
/// As [`write_shard_snapshot`].
pub fn save_shard_snapshot(
    path: impl AsRef<Path>,
    graph: &Graph,
    groups: &[VertexSet],
    manifest: &ShardManifest,
) -> Result<u64, StoreError> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_shard_snapshot(graph, groups, manifest, &mut writer)
}
