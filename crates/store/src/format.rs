//! The CKS1 byte layout: header and section framing.
//!
//! Everything is little-endian. The file is a 32-byte header followed by
//! `section_count` framed sections:
//!
//! ```text
//! header (32 bytes)
//!   0   4  magic  "CKS1"
//!   4   2  version          u16  (currently 1)
//!   6   2  flags            u16  (bit 0 directed, bit 1 has groups)
//!   8   8  node_count       u64
//!  16   8  edge_count       u64  (arcs if directed, undirected edges otherwise)
//!  24   4  section_count    u32
//!  28   4  header_crc32     u32  (CRC-32 of bytes 0..28)
//!
//! section (16-byte header + payload, repeated)
//!   0   4  section_id       u32
//!   4   4  payload_crc32    u32  (CRC-32 of the unpadded payload)
//!   8   8  payload_len      u64  (bytes, before padding)
//!  16   …  payload, zero-padded to the next multiple of 8
//! ```
//!
//! The 32-byte header, 16-byte section headers, and 8-byte payload
//! padding keep every payload 8-byte aligned relative to the start of the
//! file, so a page-aligned memory map can reinterpret `u64`/`u32`
//! payloads in place. Padding bytes are not covered by any checksum;
//! they carry no data.
//!
//! [`parse_sections`] performs every *framing* check (magic, version,
//! flags, both checksums, truncation, oversize lengths, duplicates,
//! trailing bytes). Semantic checks — section sizes against the header
//! counts, CSR and group invariants — live with the decoders in
//! [`crate::reader`] and [`crate::view`].

use crate::crc32::crc32;
use crate::error::StoreError;

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"CKS1";
/// Current (and only) format version.
pub const VERSION: u16 = 1;
/// Size of the fixed file header.
pub const HEADER_LEN: usize = 32;
/// Size of each section header.
pub const SECTION_HEADER_LEN: usize = 16;

/// Header flag: the graph is directed (in-adjacency sections present).
pub const FLAG_DIRECTED: u16 = 1 << 0;
/// Header flag: group sections present.
pub const FLAG_GROUPS: u16 = 1 << 1;
/// Header flag: this file is one shard of a partitioned snapshot (a
/// shard-manifest section is present). Builds that predate sharding
/// reject such files with `UnknownFlags` rather than silently scoring a
/// sub-graph as if it were the whole graph.
pub const FLAG_SHARD: u16 = 1 << 2;
const KNOWN_FLAGS: u16 = FLAG_DIRECTED | FLAG_GROUPS | FLAG_SHARD;

/// The framing parameters that vary between snapshot formats. CKS1 and
/// CKS2 share the 32-byte header layout and 16-byte section framing;
/// they differ in magic, the flag bits they accept, and the section-id
/// namespace. [`parse_frames`] and [`Header::encode_with`] are generic
/// over this, so both formats get the same checks in the same order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FormatSpec {
    /// Magic bytes at offset 0.
    pub magic: [u8; 4],
    /// The single accepted version.
    pub version: u16,
    /// Flag bits this format defines; anything else is `UnknownFlags`.
    pub known_flags: u16,
    /// Maps a raw section id to its name (`None` = unknown section).
    pub section_name: fn(u32) -> Option<&'static str>,
}

fn cks1_section_name(v: u32) -> Option<&'static str> {
    SectionId::from_u32(v).map(SectionId::name)
}

/// The CKS1 framing parameters.
pub(crate) const CKS1_SPEC: FormatSpec = FormatSpec {
    magic: MAGIC,
    version: VERSION,
    known_flags: KNOWN_FLAGS,
    section_name: cks1_section_name,
};

/// Identifies one section of a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// Out-adjacency offsets: `(node_count + 1)` × u64.
    OutOffsets = 1,
    /// Out-adjacency targets: one u32 per arc.
    OutTargets = 2,
    /// In-adjacency offsets (directed only).
    InOffsets = 3,
    /// In-adjacency targets (directed only).
    InTargets = 4,
    /// Group member-array offsets: `(group_count + 1)` × u64.
    GroupOffsets = 5,
    /// Concatenated group members: one u32 per membership.
    GroupMembers = 6,
    /// Shard manifest binding this sub-snapshot to its parent (shard
    /// count/index, parent counts, parent CRC); see [`ShardManifest`].
    ShardManifest = 7,
}

impl SectionId {
    /// Human-readable section name (used in errors and `inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::OutOffsets => "out-offsets",
            SectionId::OutTargets => "out-targets",
            SectionId::InOffsets => "in-offsets",
            SectionId::InTargets => "in-targets",
            SectionId::GroupOffsets => "group-offsets",
            SectionId::GroupMembers => "group-members",
            SectionId::ShardManifest => "shard-manifest",
        }
    }

    fn from_u32(v: u32) -> Option<SectionId> {
        match v {
            1 => Some(SectionId::OutOffsets),
            2 => Some(SectionId::OutTargets),
            3 => Some(SectionId::InOffsets),
            4 => Some(SectionId::InTargets),
            5 => Some(SectionId::GroupOffsets),
            6 => Some(SectionId::GroupMembers),
            7 => Some(SectionId::ShardManifest),
            _ => None,
        }
    }
}

/// The decoded fixed header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Flag word ([`FLAG_DIRECTED`], [`FLAG_GROUPS`]).
    pub flags: u16,
    /// Number of nodes `n`.
    pub node_count: u64,
    /// `m`: arcs for directed graphs, undirected edges otherwise.
    pub edge_count: u64,
    /// Number of sections that follow the header.
    pub section_count: u32,
}

impl Header {
    /// Whether the snapshot stores a directed graph.
    pub fn directed(&self) -> bool {
        self.flags & FLAG_DIRECTED != 0
    }

    /// Whether group sections are present.
    pub fn has_groups(&self) -> bool {
        self.flags & FLAG_GROUPS != 0
    }

    /// Whether this file is one shard of a partitioned snapshot (a
    /// shard-manifest section is required).
    pub fn is_shard(&self) -> bool {
        self.flags & FLAG_SHARD != 0
    }

    /// Encodes the header, computing its checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        self.encode_with(&CKS1_SPEC)
    }

    /// Encodes the header with another format's magic/version.
    pub(crate) fn encode_with(&self, spec: &FormatSpec) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..4].copy_from_slice(&spec.magic);
        buf[4..6].copy_from_slice(&spec.version.to_le_bytes());
        buf[6..8].copy_from_slice(&self.flags.to_le_bytes());
        buf[8..16].copy_from_slice(&self.node_count.to_le_bytes());
        buf[16..24].copy_from_slice(&self.edge_count.to_le_bytes());
        buf[24..28].copy_from_slice(&self.section_count.to_le_bytes());
        let crc = crc32(&buf[..28]);
        buf[28..32].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and fully validates a header from the start of `bytes`.
    ///
    /// # Errors
    ///
    /// [`StoreError::TooShort`], [`StoreError::BadMagic`],
    /// [`StoreError::UnsupportedVersion`], [`StoreError::UnknownFlags`],
    /// or [`StoreError::HeaderChecksum`].
    pub fn decode(bytes: &[u8]) -> Result<Header, StoreError> {
        Header::decode_with(&CKS1_SPEC, bytes)
    }

    /// [`Header::decode`] against another format's framing parameters.
    /// Check order (magic, version, header CRC, flags) is identical for
    /// every format.
    pub(crate) fn decode_with(spec: &FormatSpec, bytes: &[u8]) -> Result<Header, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::TooShort { len: bytes.len() as u64 });
        }
        let found: [u8; 4] = bytes[0..4].try_into().expect("length checked");
        if found != spec.magic {
            return Err(StoreError::BadMagic { found });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("length checked"));
        if version != spec.version {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let expected = u32::from_le_bytes(bytes[28..32].try_into().expect("length checked"));
        let actual = crc32(&bytes[..28]);
        if expected != actual {
            return Err(StoreError::HeaderChecksum { expected, actual });
        }
        let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("length checked"));
        if flags & !spec.known_flags != 0 {
            return Err(StoreError::UnknownFlags { flags });
        }
        Ok(Header {
            flags,
            node_count: u64::from_le_bytes(bytes[8..16].try_into().expect("length checked")),
            edge_count: u64::from_le_bytes(bytes[16..24].try_into().expect("length checked")),
            section_count: u32::from_le_bytes(bytes[24..28].try_into().expect("length checked")),
        })
    }
}

/// Byte length of an encoded [`ShardManifest`] payload.
pub const SHARD_MANIFEST_LEN: usize = 40;

/// The shard-manifest section payload: binds a sub-snapshot to the
/// partitioned parent it was packed from.
///
/// Layout (40 bytes, little-endian):
///
/// ```text
///   0   4  shard_count           u32  (>= 1)
///   4   4  shard_index           u32  (< shard_count)
///   8   8  parent_node_count     u64  (must equal the header's node_count)
///  16   8  parent_edge_count     u64  (global m — shards cannot derive it)
///  24   8  parent_median_degree  f64 bits (global FOMD threshold)
///  32   4  parent_crc32          u32  (CRC-32 of the parent snapshot file)
///  36   4  reserved              u32  (must be 0)
/// ```
///
/// A shard keeps the parent's full node-id space, so per-member
/// statistics computed on a shard line up index-for-index with the
/// single-node computation; `parent_edge_count` and
/// `parent_median_degree` carry the two graph-global inputs (`m` and
/// the FOMD median) that a sub-graph cannot recompute, and
/// `parent_crc32` lets a coordinator refuse to mix shards packed from
/// different parents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardManifest {
    /// Total number of shards the parent was split into (>= 1).
    pub shard_count: u32,
    /// Which shard this file is (`0..shard_count`).
    pub shard_index: u32,
    /// The parent snapshot's node count (shards keep the full id space).
    pub parent_node_count: u64,
    /// The parent snapshot's edge count (`m`: arcs if directed,
    /// undirected edges otherwise).
    pub parent_edge_count: u64,
    /// The parent graph's median total degree (the FOMD threshold).
    pub parent_median_degree: f64,
    /// CRC-32 of the complete parent snapshot file.
    pub parent_crc32: u32,
}

impl ShardManifest {
    /// Encodes the manifest as a section payload.
    pub fn encode(&self) -> [u8; SHARD_MANIFEST_LEN] {
        let mut buf = [0u8; SHARD_MANIFEST_LEN];
        buf[0..4].copy_from_slice(&self.shard_count.to_le_bytes());
        buf[4..8].copy_from_slice(&self.shard_index.to_le_bytes());
        buf[8..16].copy_from_slice(&self.parent_node_count.to_le_bytes());
        buf[16..24].copy_from_slice(&self.parent_edge_count.to_le_bytes());
        buf[24..32].copy_from_slice(&self.parent_median_degree.to_bits().to_le_bytes());
        buf[32..36].copy_from_slice(&self.parent_crc32.to_le_bytes());
        // bytes 36..40 are the reserved word, already zero
        buf
    }

    /// Decodes and validates a manifest payload against the snapshot's
    /// header.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShardManifest`] for a wrong payload length, a zero
    /// shard count, an index outside the count, a nonzero reserved
    /// word, or a `parent_node_count` that disagrees with the header
    /// (shards keep the parent's full id space).
    pub fn decode(header: &Header, payload: &[u8]) -> Result<ShardManifest, StoreError> {
        let bad = |why: String| Err(StoreError::ShardManifest { why });
        if payload.len() != SHARD_MANIFEST_LEN {
            return bad(format!(
                "payload is {} bytes, expected {SHARD_MANIFEST_LEN}",
                payload.len()
            ));
        }
        let manifest = ShardManifest {
            shard_count: u32::from_le_bytes(payload[0..4].try_into().expect("length checked")),
            shard_index: u32::from_le_bytes(payload[4..8].try_into().expect("length checked")),
            parent_node_count: u64::from_le_bytes(
                payload[8..16].try_into().expect("length checked"),
            ),
            parent_edge_count: u64::from_le_bytes(
                payload[16..24].try_into().expect("length checked"),
            ),
            parent_median_degree: f64::from_bits(u64::from_le_bytes(
                payload[24..32].try_into().expect("length checked"),
            )),
            parent_crc32: u32::from_le_bytes(payload[32..36].try_into().expect("length checked")),
        };
        let reserved = u32::from_le_bytes(payload[36..40].try_into().expect("length checked"));
        if manifest.shard_count == 0 {
            return bad("shard count is 0".to_string());
        }
        if manifest.shard_index >= manifest.shard_count {
            return bad(format!(
                "shard index {} is outside 0..{}",
                manifest.shard_index, manifest.shard_count
            ));
        }
        if reserved != 0 {
            return bad(format!("reserved word is {reserved:#010x}, expected 0"));
        }
        if manifest.parent_node_count != header.node_count {
            return bad(format!(
                "parent node count {} disagrees with the header's {} \
                 (shards keep the parent's full id space)",
                manifest.parent_node_count, header.node_count
            ));
        }
        if !manifest.parent_median_degree.is_finite() || manifest.parent_median_degree < 0.0 {
            return bad(format!(
                "parent median degree {} is not a finite non-negative value",
                manifest.parent_median_degree
            ));
        }
        Ok(manifest)
    }
}

/// One framed section, borrowing its (checksum-verified) payload.
#[derive(Clone, Copy, Debug)]
pub struct Section<'a> {
    /// Which section this is.
    pub id: SectionId,
    /// The unpadded payload bytes.
    pub payload: &'a [u8],
    /// The verified CRC-32 of the payload.
    pub checksum: u32,
}

/// Rounds `len` up to the next multiple of 8 (the payload padding rule).
/// Saturates near `u64::MAX` so a corrupted length field cannot overflow;
/// the saturated value always exceeds any real file and is rejected as
/// [`StoreError::SectionOversize`].
pub fn padded_len(len: u64) -> u64 {
    len.div_ceil(8).saturating_mul(8)
}

/// Decodes the header and walks every section, verifying all framing
/// invariants and checksums. Returns the sections in file order.
///
/// # Errors
///
/// Any header error from [`Header::decode`], plus
/// [`StoreError::Truncated`], [`StoreError::SectionOversize`],
/// [`StoreError::UnknownSection`], [`StoreError::DuplicateSection`],
/// [`StoreError::SectionChecksum`], or [`StoreError::TrailingData`].
pub fn parse_sections(bytes: &[u8]) -> Result<(Header, Vec<Section<'_>>), StoreError> {
    let (header, frames) = parse_frames(&CKS1_SPEC, bytes)?;
    let sections = frames
        .into_iter()
        .map(|f| Section {
            id: SectionId::from_u32(f.raw_id).expect("parse_frames verified the id"),
            payload: f.payload,
            checksum: f.checksum,
        })
        .collect();
    Ok((header, sections))
}

/// One framed section, format-agnostic: the raw id plus its verified
/// payload. [`parse_frames`] guarantees the id is known to the spec.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Frame<'a> {
    /// Raw section id (known to the spec's namespace).
    pub raw_id: u32,
    /// The spec's name for this section.
    pub name: &'static str,
    /// The unpadded payload bytes.
    pub payload: &'a [u8],
    /// The verified CRC-32 of the payload.
    pub checksum: u32,
}

/// The format-generic body of [`parse_sections`]: walks every section of
/// `bytes` under `spec`, verifying all framing invariants and checksums
/// in the same fixed order for every format (truncation → oversize →
/// unknown id → duplicate → checksum → trailing bytes).
pub(crate) fn parse_frames<'a>(
    spec: &FormatSpec,
    bytes: &'a [u8],
) -> Result<(Header, Vec<Frame<'a>>), StoreError> {
    let header = Header::decode_with(spec, bytes)?;
    let mut frames: Vec<Frame<'a>> = Vec::with_capacity(header.section_count as usize);
    let mut cursor = HEADER_LEN;
    for _ in 0..header.section_count {
        let remaining = bytes.len() - cursor;
        if remaining < SECTION_HEADER_LEN {
            return Err(StoreError::Truncated { context: "section header" });
        }
        let head = &bytes[cursor..cursor + SECTION_HEADER_LEN];
        let raw_id = u32::from_le_bytes(head[0..4].try_into().expect("length checked"));
        let expected_crc = u32::from_le_bytes(head[4..8].try_into().expect("length checked"));
        let len = u64::from_le_bytes(head[8..16].try_into().expect("length checked"));
        let after_header = (remaining - SECTION_HEADER_LEN) as u64;
        if padded_len(len) > after_header {
            return Err(StoreError::SectionOversize {
                section: raw_id,
                len,
                remaining: after_header,
            });
        }
        let Some(name) = (spec.section_name)(raw_id) else {
            return Err(StoreError::UnknownSection { section: raw_id });
        };
        if frames.iter().any(|f| f.raw_id == raw_id) {
            return Err(StoreError::DuplicateSection { section: name });
        }
        let start = cursor + SECTION_HEADER_LEN;
        let payload = &bytes[start..start + len as usize];
        let actual_crc = crc32(payload);
        if actual_crc != expected_crc {
            return Err(StoreError::SectionChecksum {
                section: name,
                expected: expected_crc,
                actual: actual_crc,
            });
        }
        frames.push(Frame { raw_id, name, payload, checksum: actual_crc });
        cursor = start + padded_len(len) as usize;
    }
    if cursor != bytes.len() {
        return Err(StoreError::TrailingData { extra: (bytes.len() - cursor) as u64 });
    }
    Ok((header, frames))
}

/// Looks up one frame by raw id with the same flag-driven presence rules
/// as [`find_section`].
pub(crate) fn find_frame<'a, 'b>(
    frames: &'b [Frame<'a>],
    raw_id: u32,
    name: &'static str,
    required: bool,
    allowed: bool,
) -> Result<Option<&'b Frame<'a>>, StoreError> {
    let found = frames.iter().find(|f| f.raw_id == raw_id);
    match found {
        Some(_) if !allowed => Err(StoreError::UnexpectedSection { section: name }),
        None if required => Err(StoreError::MissingSection { section: name }),
        other => Ok(other),
    }
}

/// Looks up one section by id, with flag-driven presence checks: a
/// section is `Err(MissingSection)` when `required`, `Ok(None)` when
/// legitimately absent, and `Err(UnexpectedSection)` when present but
/// not `allowed`.
pub fn find_section<'a, 'b>(
    sections: &'b [Section<'a>],
    id: SectionId,
    required: bool,
    allowed: bool,
) -> Result<Option<&'b Section<'a>>, StoreError> {
    let found = sections.iter().find(|s| s.id == id);
    match found {
        Some(_) if !allowed => Err(StoreError::UnexpectedSection { section: id.name() }),
        None if required => Err(StoreError::MissingSection { section: id.name() }),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            flags: FLAG_DIRECTED | FLAG_GROUPS,
            node_count: 12345,
            edge_count: 67890,
            section_count: 6,
        };
        let bytes = h.encode();
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn header_rejects_short_magic_version_crc() {
        assert!(matches!(
            Header::decode(&[0u8; 10]),
            Err(StoreError::TooShort { len: 10 })
        ));

        let mut bytes = Header {
            flags: 0,
            node_count: 0,
            edge_count: 0,
            section_count: 0,
        }
        .encode();

        let mut mangled = bytes;
        mangled[0] = b'X';
        assert!(matches!(Header::decode(&mangled), Err(StoreError::BadMagic { .. })));

        let mut mangled = bytes;
        mangled[4] = 9; // version — checksum is checked after magic/version
        assert!(matches!(
            Header::decode(&mangled),
            Err(StoreError::UnsupportedVersion { found: 9 })
        ));

        bytes[8] ^= 1; // node count no longer matches the checksum
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::HeaderChecksum { .. })
        ));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut h = Header { flags: 0x80, node_count: 0, edge_count: 0, section_count: 0 };
        let bytes = h.encode(); // encode recomputes a valid checksum
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::UnknownFlags { flags: 0x80 })
        ));
        h.flags = KNOWN_FLAGS;
        assert!(Header::decode(&h.encode()).is_ok());
    }

    #[test]
    fn shard_manifest_roundtrips_and_validates() {
        let header = Header { flags: FLAG_SHARD, node_count: 100, edge_count: 0, section_count: 1 };
        let m = ShardManifest {
            shard_count: 3,
            shard_index: 2,
            parent_node_count: 100,
            parent_edge_count: 2500,
            parent_median_degree: 7.5,
            parent_crc32: 0xdead_beef,
        };
        let payload = m.encode();
        assert_eq!(ShardManifest::decode(&header, &payload).unwrap(), m);

        // Every validated invariant is a typed refusal.
        let short = &payload[..SHARD_MANIFEST_LEN - 1];
        assert!(matches!(
            ShardManifest::decode(&header, short),
            Err(StoreError::ShardManifest { .. })
        ));
        let zero_count = ShardManifest { shard_count: 0, ..m }.encode();
        assert!(ShardManifest::decode(&header, &zero_count).is_err());
        let bad_index = ShardManifest { shard_index: 3, ..m }.encode();
        assert!(ShardManifest::decode(&header, &bad_index).is_err());
        let bad_nodes = ShardManifest { parent_node_count: 99, ..m }.encode();
        assert!(ShardManifest::decode(&header, &bad_nodes).is_err());
        let bad_median = ShardManifest { parent_median_degree: f64::NAN, ..m }.encode();
        assert!(ShardManifest::decode(&header, &bad_median).is_err());
        let mut bad_reserved = payload;
        bad_reserved[36] = 1;
        assert!(ShardManifest::decode(&header, &bad_reserved).is_err());
    }

    #[test]
    fn padding_rounds_up_to_eight() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 8);
        assert_eq!(padded_len(8), 8);
        assert_eq!(padded_len(9), 16);
    }
}
