//! The CKS2 block codec: delta + LEB128 varint compression of sorted
//! vertex lists.
//!
//! A CKS2 adjacency (or group-membership) block stores one strictly
//! increasing list of `u32` vertex ids as
//!
//! ```text
//! varint(v[0])  varint(v[1] - v[0])  varint(v[2] - v[1])  …
//! ```
//!
//! where `varint` is unsigned LEB128: 7 value bits per byte, low bits
//! first, high bit = continuation. A `u32` takes at most 5 bytes; after
//! degree-ordered relabelling (hubs get small ids, neighbours cluster)
//! most first values and deltas fit a single byte, which is where the
//! format's compression comes from. An empty list is an empty block —
//! list lengths are implied by the enclosing offsets, never stored.
//!
//! Encodings are **canonical**: the decoder rejects overlong varints
//! (a continuation chain ending in a zero byte), values past `u32`, and
//! zero deltas (a duplicate). One logical list therefore has exactly one
//! byte representation, so byte-level comparison of snapshots is
//! meaningful and every corrupt bit that survives the CRC still fails
//! decoding in a typed way.
//!
//! Decoding arbitrary bytes always terminates — every varint consumes at
//! least one byte — and never panics; every defect maps to a
//! [`CodecError`] (wrapped in [`StoreError::Codec`](crate::StoreError)
//! with section context by the callers in [`crate::cks2`]).

use std::fmt;

/// Why a compressed block failed to decode, with the byte offset inside
/// the block where decoding stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset within the block at which the defect was detected.
    pub offset: usize,
    /// What was wrong.
    pub why: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at block offset {}", self.why, self.offset)
    }
}

impl std::error::Error for CodecError {}

/// Appends the LEB128 encoding of `value` to `out`.
pub fn write_varint(mut value: u32, out: &mut Vec<u8>) {
    while value >= 0x80 {
        out.push((value as u8 & 0x7F) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Reads one canonical LEB128 `u32` from `bytes` starting at `*cursor`,
/// advancing the cursor past it.
///
/// # Errors
///
/// [`CodecError`] when the varint is truncated, overlong (non-canonical
/// trailing zero byte), or wider than 32 bits.
pub fn read_varint(bytes: &[u8], cursor: &mut usize) -> Result<u32, CodecError> {
    let start = *cursor;
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*cursor) else {
            return Err(CodecError { offset: start, why: "truncated varint" });
        };
        *cursor += 1;
        let payload = (byte & 0x7F) as u32;
        if shift == 28 && payload > 0x0F {
            return Err(CodecError { offset: start, why: "varint exceeds 32 bits" });
        }
        if shift > 28 {
            return Err(CodecError { offset: start, why: "varint exceeds 32 bits" });
        }
        if shift > 0 && byte == 0 {
            // "…0x80 0x00" encodes the same value as stopping a byte
            // earlier; only one spelling is legal.
            return Err(CodecError { offset: start, why: "overlong varint" });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Appends the delta+varint block encoding of `values` to `out`.
///
/// # Panics
///
/// Panics if `values` is not strictly increasing — blocks encode sorted
/// duplicate-free lists only (the invariant every `Graph` adjacency and
/// `VertexSet` already holds).
pub fn encode_list(values: &[u32], out: &mut Vec<u8>) {
    let mut prev: Option<u32> = None;
    for &v in values {
        match prev {
            None => write_varint(v, out),
            Some(p) => {
                assert!(v > p, "encode_list requires a strictly increasing list");
                write_varint(v - p, out);
            }
        }
        prev = Some(v);
    }
}

/// Decodes one complete block into `out` (cleared first). Every decoded
/// value must be `< limit` (pass the node count). Consumes the whole
/// block: trailing bytes after the last varint are impossible by
/// construction since decoding stops exactly at `bytes.len()`.
///
/// # Errors
///
/// [`CodecError`] on any truncated/overlong/oversized varint, a zero
/// delta (duplicate value), or a value reaching `limit`.
pub fn decode_list_into(
    bytes: &[u8],
    limit: u64,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    out.clear();
    let mut cursor = 0usize;
    let mut prev: Option<u32> = None;
    while cursor < bytes.len() {
        let offset = cursor;
        let raw = read_varint(bytes, &mut cursor)?;
        let value = match prev {
            None => raw as u64,
            Some(p) => {
                if raw == 0 {
                    return Err(CodecError { offset, why: "zero delta (duplicate value)" });
                }
                p as u64 + raw as u64
            }
        };
        if value >= limit {
            return Err(CodecError { offset, why: "value outside the graph" });
        }
        let value = value as u32; // limit <= 2^32, so value < 2^32
        out.push(value);
        prev = Some(value);
    }
    Ok(())
}

/// Convenience wrapper over [`decode_list_into`] returning a fresh
/// vector.
///
/// # Errors
///
/// As [`decode_list_into`].
pub fn decode_list(bytes: &[u8], limit: u64) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::new();
    decode_list_into(bytes, limit, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32], limit: u64) {
        let mut bytes = Vec::new();
        encode_list(values, &mut bytes);
        assert_eq!(decode_list(&bytes, limit).expect("decodes"), values);
        // Canonicality: re-encoding the decode gives the same bytes.
        let mut again = Vec::new();
        encode_list(&decode_list(&bytes, limit).unwrap(), &mut again);
        assert_eq!(bytes, again);
    }

    #[test]
    fn basic_roundtrips() {
        roundtrip(&[], 0);
        roundtrip(&[0], 1);
        roundtrip(&[7], 100);
        roundtrip(&[0, 1, 2, 3], 4);
        roundtrip(&[5, 127, 128, 300, 70_000, 3_000_000], 4_000_000);
        roundtrip(&[u32::MAX - 1, u32::MAX], 1 << 32);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u32, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX] {
            let mut bytes = Vec::new();
            write_varint(v, &mut bytes);
            assert!(bytes.len() <= 5);
            let mut cursor = 0;
            assert_eq!(read_varint(&bytes, &mut cursor).unwrap(), v);
            assert_eq!(cursor, bytes.len());
        }
    }

    #[test]
    fn rejects_truncated_overlong_and_oversized() {
        let mut cursor = 0;
        assert_eq!(read_varint(&[0x80], &mut cursor).unwrap_err().why, "truncated varint");
        let mut cursor = 0;
        assert_eq!(read_varint(&[0x80, 0x00], &mut cursor).unwrap_err().why, "overlong varint");
        let mut cursor = 0;
        // 6 continuation bytes: wider than any u32.
        assert_eq!(
            read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F], &mut cursor).unwrap_err().why,
            "varint exceeds 32 bits"
        );
        let mut cursor = 0;
        assert_eq!(
            read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01], &mut cursor).unwrap_err().why,
            "varint exceeds 32 bits"
        );
        // The largest canonical 5-byte varint decodes to exactly u32::MAX.
        let mut cursor = 0;
        assert_eq!(read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F], &mut cursor).unwrap(), u32::MAX);
    }

    #[test]
    fn rejects_zero_delta_and_out_of_range() {
        // [5, then delta 0] — a duplicate.
        let mut bytes = Vec::new();
        write_varint(5, &mut bytes);
        write_varint(0, &mut bytes);
        assert_eq!(decode_list(&bytes, 100).unwrap_err().why, "zero delta (duplicate value)");

        let mut bytes = Vec::new();
        encode_list(&[5, 9], &mut bytes);
        assert_eq!(decode_list(&bytes, 9).unwrap_err().why, "value outside the graph");
        assert!(decode_list(&bytes, 10).is_ok());

        // First value at the limit is rejected too.
        let mut bytes = Vec::new();
        encode_list(&[4], &mut bytes);
        assert_eq!(decode_list(&bytes, 4).unwrap_err().why, "value outside the graph");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn encode_panics_on_unsorted_input() {
        let mut out = Vec::new();
        encode_list(&[3, 3], &mut out);
    }
}
