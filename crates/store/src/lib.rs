//! `circlekit-store`: the CKS1/CKS2 binary graph snapshot formats.
//!
//! Text edge lists and circle files are convenient but slow to ingest:
//! every run re-parses, re-sorts, and re-deduplicates millions of lines.
//! This crate defines a versioned binary snapshot — magic `CKS1` — that
//! stores the *post-ingestion* state of a [`Graph`] (and optionally its
//! group collections) so every driver in the workspace can load a dataset
//! without repeating that work:
//!
//! * **Pack once** ([`save_snapshot`] / [`write_snapshot`]): serialise
//!   the exact CSR arrays `Csr::from_edges` produced, little-endian,
//!   each section framed with a length and CRC-32.
//! * **Load anywhere** ([`load_snapshot`]): a portable buffered read that
//!   decodes explicitly with `from_le_bytes` and re-validates every
//!   structural invariant — the reference path, correct on any
//!   endianness/alignment.
//! * **Load fast** ([`MappedSnapshot`] + [`SnapshotView`]): memory-map
//!   the file, validate header + checksums once, then borrow the CSR and
//!   group arrays straight out of the mapping — zero copies proportional
//!   to the graph (little-endian hosts; the buffered path remains the
//!   fallback elsewhere).
//!
//! Both load paths produce graphs **bit-identical** to text ingestion of
//! the same data, so downstream scores, figures, and checkpoints do not
//! depend on which path loaded the dataset.
//!
//! Alongside CKS1 there is the **CKS2 compressed format** (magic
//! `CKS2`): degree-ordered relabelling, delta+varint adjacency blocks,
//! and width-reduced (u32 where possible) offsets — typically a
//! fraction of the CKS1 size. Pack with [`save_cks2_snapshot`] (from a
//! built [`Graph`]) or [`stream_pack_cks2`] (straight from an edge-list
//! file in bounded memory, via an external sort); load through the same
//! [`decode_snapshot`] / [`MappedSnapshot::load`] entry points, which
//! dispatch on the magic, or score without materialising at all through
//! [`Cks2View::paged`]. The embedded permutation section maps ids back,
//! so a CKS2 load is bit-identical to the CKS1 load of the same data.
//! See [`cks2`](crate::Cks2View) and `DESIGN.md` §13.
//!
//! Corruption — truncation, bit flips, hand-crafted section tables — is
//! an expected input class: every defect is detected (checksums, length
//! framing, full invariant re-validation) and reported as a typed
//! [`StoreError`]; no input bytes can cause a panic or undefined
//! behaviour. See [`format`](crate::format) for the byte layout and
//! `DESIGN.md` §10 for the rationale.
//!
//! # Quick start
//!
//! ```
//! use circlekit_graph::{Graph, VertexSet};
//! use circlekit_store::{decode_snapshot, write_snapshot, SnapshotView};
//!
//! let g = Graph::from_edges(true, [(0u32, 1u32), (1, 2), (2, 0)]);
//! let circles = vec![VertexSet::from_iter([0u32, 1])];
//!
//! let mut bytes = Vec::new();
//! write_snapshot(&g, &circles, &mut bytes).expect("pack");
//!
//! // Portable buffered decode…
//! let snap = decode_snapshot(&bytes).expect("load");
//! assert_eq!(snap.graph, g);
//! assert_eq!(snap.groups, circles);
//!
//! // …and the zero-copy view over the same bytes (Vec<u8> from
//! // write_snapshot is not guaranteed 8-aligned; mmap/MappedSnapshot
//! // buffers are — fall back gracefully when it is not).
//! match SnapshotView::parse(&bytes) {
//!     Ok(view) => assert_eq!(view.node_count(), 3),
//!     Err(circlekit_store::StoreError::NotZeroCopy { .. }) => {}
//!     Err(e) => panic!("unexpected error: {e}"),
//! }
//! ```

#![warn(missing_docs)]

mod cks2;
pub mod codec;
mod crc32;
mod error;
pub mod format;
mod mmap;
mod reader;
mod view;
mod writer;
mod writer2;

pub use cks2::{is_cks2, Cks2Paged, Cks2View, FLAG_WIDE, MAGIC2, VERSION2};
pub use crc32::{crc32, file_crc32, Crc32};
pub use error::StoreError;
pub use format::{
    Header, SectionId, ShardManifest, FLAG_SHARD, HEADER_LEN, MAGIC, SECTION_HEADER_LEN,
    SHARD_MANIFEST_LEN, VERSION,
};
pub use mmap::MappedSnapshot;
pub use reader::{
    decode_snapshot, file_is_snapshot, file_snapshot_format, is_snapshot, load_snapshot,
    read_shard_manifest, snapshot_format, Snapshot, SnapshotFormat,
};
pub use view::{section_infos, SectionInfo, SnapshotView};
pub use writer::{save_shard_snapshot, save_snapshot, write_shard_snapshot, write_snapshot};
pub use writer2::{
    save_cks2_snapshot, stream_pack_cks2, write_cks2_snapshot, Cks2PackOptions, StreamPackOptions,
    StreamPackReport,
};
