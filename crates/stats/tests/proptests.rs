//! Property tests for the distribution toolkit.

use circlekit_stats::{ks_two_sample, Ecdf, Histogram, LogHistogram, Summary};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(sample in finite_sample(), probes in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let e = Ecdf::new(sample);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted_probes {
            let f = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert_eq!(e.eval(f64::MAX), 1.0);
    }

    #[test]
    fn ecdf_quantile_inverts_eval(sample in finite_sample(), q in 0.0f64..=1.0) {
        let e = Ecdf::new(sample);
        let x = e.quantile(q);
        // At least a q-fraction of the sample is <= quantile(q).
        prop_assert!(e.eval(x) + 1e-12 >= q);
    }

    #[test]
    fn ks_two_sample_in_unit_interval(a in finite_sample(), b in finite_sample()) {
        let d = ks_two_sample(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - ks_two_sample(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_is_zero(a in finite_sample()) {
        prop_assert_eq!(ks_two_sample(&a, &a), 0.0);
    }

    #[test]
    fn summary_orderings_hold(sample in finite_sample()) {
        let s = Summary::from_slice(&sample);
        prop_assert!(s.min <= s.q25);
        prop_assert!(s.q25 <= s.median);
        prop_assert!(s.median <= s.q75);
        prop_assert!(s.q75 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn histogram_conserves_observations(sample in finite_sample()) {
        let mut h = Histogram::new(-1e6, 1e6, 32);
        for &v in &sample {
            h.add(v);
        }
        prop_assert_eq!(h.total() as usize, sample.len());
    }

    #[test]
    fn log_histogram_conserves_observations(sample in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = LogHistogram::new(2.0);
        for &v in &sample {
            h.add(v);
        }
        prop_assert_eq!(h.total() as usize, sample.len());
        // Bin lower bounds are powers of the base, strictly increasing.
        let bins = h.bins();
        prop_assert!(bins.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn ecdf_steps_end_at_one(sample in finite_sample()) {
        let e = Ecdf::new(sample);
        let steps = e.steps();
        prop_assert!(!steps.is_empty());
        prop_assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12);
        prop_assert!(steps.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    }
}
