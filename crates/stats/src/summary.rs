//! Moment and quantile summaries.

use crate::Ecdf;

/// A compact numeric summary of a sample: count, moments, and quartiles.
///
/// Used throughout the reproduction for the per-table "mean" entries
/// (e.g. the paper's clustering-coefficient average of 0.4901, or the Ratio
/// Cut means of 34 for Google+ and 6 for Twitter).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of finite observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; `0.0` when `n < 2`).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (nearest rank).
    pub q25: f64,
    /// Median (nearest rank).
    pub median: f64,
    /// Third quartile (nearest rank).
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice, ignoring non-finite values.
    ///
    /// Returns an all-zero summary for an empty (or all-non-finite) input.
    pub fn from_slice(values: &[f64]) -> Summary {
        let ecdf = Ecdf::new(values.to_vec());
        if ecdf.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                q25: 0.0,
                median: 0.0,
                q75: 0.0,
                max: 0.0,
            };
        }
        let data = ecdf.sorted_values();
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary {
            n,
            mean,
            std_dev,
            min: data[0],
            q25: ecdf.quantile(0.25),
            median: ecdf.quantile(0.5),
            q75: ecdf.quantile(0.75),
            max: data[n - 1],
        }
    }

}

impl FromIterator<f64> for Summary {
    /// Summarises an iterator of values.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let values: Vec<f64> = iter.into_iter().collect();
        Summary::from_slice(&values)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} q25={:.4} med={:.4} q75={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.q25, self.median, self.q75, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn summary_skips_nan() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn display_never_empty() {
        let s = Summary::from_slice(&[1.0]);
        assert!(s.to_string().contains("n=1"));
    }
}
