//! Empirical-distribution toolkit for the `circlekit` workspace.
//!
//! Every figure in *"Are Circles Communities?"* is a CDF or a log-binned
//! distribution plot; this crate provides the shared machinery:
//!
//! * [`Ecdf`] — empirical cumulative distribution functions (Figures 4–6),
//! * [`Histogram`] / [`LogHistogram`] — linear and logarithmic binning
//!   (Figures 2–3),
//! * [`Summary`] — five-number-plus-moments summaries used in the tables,
//! * [`ks_two_sample`] / [`ks_statistic`] — Kolmogorov–Smirnov distances
//!   used both for distribution fitting and for comparing score CDFs.
//!
//! ```
//! use circlekit_stats::{Ecdf, Summary};
//!
//! let scores = vec![0.2, 0.9, 0.4, 0.4, 1.0];
//! let ecdf = Ecdf::new(scores.clone());
//! assert_eq!(ecdf.eval(0.4), 0.6);     // 3 of 5 values <= 0.4
//! assert_eq!(ecdf.quantile(0.5), 0.4); // median
//!
//! let s = Summary::from_slice(&scores);
//! assert!((s.mean - 0.58).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod ecdf;
mod histogram;
mod ks;
mod summary;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, ConfidenceInterval};
pub use ecdf::Ecdf;
pub use histogram::{Histogram, LogHistogram};
pub use ks::{ks_statistic, ks_statistic_discrete, ks_two_sample};
pub use summary::Summary;

/// Relative deviation `|a - b| / max(|a|, |b|)`, or `0.0` when both are zero.
///
/// Used for the paper's §IV-B directed-vs-undirected robustness figure
/// ("minimal deviation of about 2.38 %").
pub fn relative_deviation(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Pearson correlation of two equal-length samples; `None` when either is
/// constant or shorter than 2.
///
/// # Panics
///
/// Panics if the samples have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation: the Pearson correlation of the
/// (tie-averaged) ranks — the robust companion Yang–Leskovec use
/// alongside Pearson for grouping scoring functions. `None` when either
/// sample is constant or shorter than 2.
///
/// # Panics
///
/// Panics if the samples have different lengths.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    pearson(&ranks(xs), &ranks(ys))
}

/// Tie-averaged ranks (1-based) of a sample.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut out = vec![0.0f64; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && values[order[j]] == values[order[i]] {
            j += 1;
        }
        // Average rank for the tie run [i, j).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            out[idx] = avg;
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod correlation_tests {
    use super::*;

    #[test]
    fn pearson_perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
    }

    #[test]
    fn spearman_is_invariant_to_monotone_transform() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is not 1 for the same data.
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.5, 2.5, 4.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_deviation_basics() {
        assert_eq!(relative_deviation(0.0, 0.0), 0.0);
        assert!((relative_deviation(1.0, 0.9) - 0.1).abs() < 1e-12);
        assert_eq!(relative_deviation(2.0, 1.0), 0.5);
        assert_eq!(relative_deviation(-1.0, 1.0), 2.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
