//! Nonparametric bootstrap confidence intervals.

use rand::Rng;

/// A bootstrap percentile confidence interval for a sample statistic.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfidenceInterval {
    /// The statistic evaluated on the original sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Confidence level (e.g. `0.95`).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        (self.lower..=self.upper).contains(&value)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Resamples `sample` with replacement `replicates` times, evaluates
/// `statistic` on each replicate, and takes the `(1 ± level)/2`
/// percentiles.
///
/// # Panics
///
/// Panics if the sample is empty, `replicates == 0`, or `level` is not in
/// `(0, 1)`.
pub fn bootstrap_ci<R, F>(
    sample: &[f64],
    statistic: F,
    replicates: usize,
    level: f64,
    rng: &mut R,
) -> ConfidenceInterval
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    assert!(!sample.is_empty(), "bootstrap of empty sample");
    assert!(replicates > 0, "need at least one replicate");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level in (0, 1)");
    let point = statistic(sample);
    let mut stats: Vec<f64> = Vec::with_capacity(replicates);
    let mut scratch = vec![0.0f64; sample.len()];
    for _ in 0..replicates {
        for slot in scratch.iter_mut() {
            *slot = sample[rng.gen_range(0..sample.len())];
        }
        stats.push(statistic(&scratch));
    }
    let ecdf = crate::Ecdf::new(stats);
    let alpha = (1.0 - level) / 2.0;
    ConfidenceInterval {
        point,
        lower: ecdf.quantile(alpha),
        upper: ecdf.quantile(1.0 - alpha),
        level,
    }
}

/// Convenience: bootstrap CI for the mean.
pub fn bootstrap_mean_ci<R: Rng + ?Sized>(
    sample: &[f64],
    replicates: usize,
    level: f64,
    rng: &mut R,
) -> ConfidenceInterval {
    bootstrap_ci(sample, crate::mean, replicates, level, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mean_ci_brackets_true_mean() {
        // Sample from a known uniform grid with mean 5.0.
        let sample: Vec<f64> = (0..500).map(|i| (i % 11) as f64).collect();
        let true_mean = sample.iter().sum::<f64>() / sample.len() as f64;
        let mut rng = SmallRng::seed_from_u64(1);
        let ci = bootstrap_mean_ci(&sample, 400, 0.95, &mut rng);
        assert!(ci.contains(true_mean), "{ci:?}");
        assert!((ci.point - true_mean).abs() < 1e-12);
        assert!(ci.width() < 1.0, "suspiciously wide: {ci:?}");
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let large: Vec<f64> = (0..3_000).map(|i| (i % 7) as f64).collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let ci_small = bootstrap_mean_ci(&small, 300, 0.95, &mut rng);
        let ci_large = bootstrap_mean_ci(&large, 300, 0.95, &mut rng);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn custom_statistic_median() {
        let sample: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let ci = bootstrap_ci(
            &sample,
            |s| crate::Ecdf::new(s.to_vec()).quantile(0.5),
            200,
            0.9,
            &mut rng,
        );
        assert_eq!(ci.point, 50.0);
        assert!(ci.lower <= 50.0 && 50.0 <= ci.upper);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        bootstrap_mean_ci(&[], 10, 0.9, &mut rng);
    }

    #[test]
    fn degenerate_sample_has_zero_width() {
        let mut rng = SmallRng::seed_from_u64(5);
        let ci = bootstrap_mean_ci(&[2.0, 2.0, 2.0], 50, 0.95, &mut rng);
        assert_eq!(ci.lower, 2.0);
        assert_eq!(ci.upper, 2.0);
    }
}
