//! Linear and logarithmic histograms.

/// A fixed-width linear histogram over `[lo, hi)`.
///
/// Values outside the range are counted in saturating edge bins (below → bin
/// 0, at-or-above `hi` → last bin), so no observation is silently lost.
///
/// ```
/// use circlekit_stats::Histogram;
/// let mut h = Histogram::new(0.0, 1.0, 4);
/// for v in [0.1, 0.3, 0.3, 0.9] {
///     h.add(v);
/// }
/// assert_eq!(h.counts(), &[1, 2, 0, 1]);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or the bounds are non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Records one observation; non-finite values are ignored.
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let idx = ((value - self.lo) / w).floor();
        let idx = if idx < 0.0 {
            0
        } else {
            (idx as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }

    /// `(bin_center, density)` pairs normalised so densities sum to one.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total = self.total().max(1) as f64;
        self.centers()
            .into_iter()
            .map(|(x, c)| (x, c as f64 / total))
            .collect()
    }
}

/// A logarithmically binned histogram over positive integers, the standard
/// presentation for heavy-tailed degree distributions (the paper's Figures
/// 2–3 are log / log-log plots).
///
/// Bin `i` covers `[base^i, base^(i+1))`.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogHistogram {
    base: f64,
    counts: Vec<u64>,
    zeros: u64,
}

impl LogHistogram {
    /// Creates a log-binned histogram with the given base (> 1).
    ///
    /// # Panics
    ///
    /// Panics if `base <= 1.0` or `base` is not finite.
    pub fn new(base: f64) -> LogHistogram {
        assert!(base.is_finite() && base > 1.0, "log base must exceed 1");
        LogHistogram {
            base,
            counts: Vec::new(),
            zeros: 0,
        }
    }

    /// Records one non-negative integer observation (zeros are tallied
    /// separately, since they have no logarithm).
    pub fn add(&mut self, value: u64) {
        if value == 0 {
            self.zeros += 1;
            return;
        }
        let idx = (value as f64).log(self.base).floor() as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Number of zero-valued observations.
    pub fn zero_count(&self) -> u64 {
        self.zeros
    }

    /// Total observations including zeros.
    pub fn total(&self) -> u64 {
        self.zeros + self.counts.iter().sum::<u64>()
    }

    /// `(bin_lower_bound, count)` pairs for non-empty bins.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.base.powi(i as i32), c))
            .collect()
    }

    /// `(bin_geometric_center, density per unit)` pairs: counts divided by
    /// bin width, the normalisation used for log-log degree plots.
    pub fn densities(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = self.base.powi(i as i32);
                let hi = self.base.powi(i as i32 + 1);
                let center = (lo * hi).sqrt();
                (center, c as f64 / (hi - lo))
            })
            .collect()
    }
}

impl FromIterator<u64> for LogHistogram {
    /// Collects with the conventional base 2.
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> LogHistogram {
        let mut h = LogHistogram::new(2.0);
        for v in iter {
            h.add(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_bins_values() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.9] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn linear_histogram_saturates_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(42.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn linear_histogram_ignores_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for v in [0.1, 0.2, 0.6, 0.8] {
            h.add(v);
        }
        let total: f64 = h.normalized().iter().map(|&(_, d)| d).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_base2_bins() {
        let h: LogHistogram = [1u64, 2, 3, 4, 7, 8].into_iter().collect();
        // bins: [1,2): {1}, [2,4): {2,3}, [4,8): {4,7}, [8,16): {8}
        assert_eq!(h.bins(), vec![(1.0, 1), (2.0, 2), (4.0, 2), (8.0, 1)]);
    }

    #[test]
    fn log_histogram_counts_zeros_separately() {
        let mut h = LogHistogram::new(10.0);
        h.add(0);
        h.add(0);
        h.add(5);
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins(), vec![(1.0, 1)]);
    }

    #[test]
    fn log_histogram_densities_divide_by_width() {
        let mut h = LogHistogram::new(2.0);
        h.add(4);
        h.add(5);
        let d = h.densities();
        assert_eq!(d.len(), 1);
        let (center, density) = d[0];
        assert!((center - (4.0f64 * 8.0).sqrt()).abs() < 1e-12);
        assert!((density - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
