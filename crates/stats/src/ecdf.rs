//! Empirical cumulative distribution functions.

/// An empirical CDF over a sample of `f64` values.
///
/// Non-finite input values (NaN, ±∞) are dropped at construction, so every
/// query operates on a totally ordered sample.
///
/// ```
/// use circlekit_stats::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 5.0]);
/// assert_eq!(e.len(), 4);
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(10.0), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, dropping non-finite values.
    pub fn new(mut values: Vec<f64>) -> Ecdf {
        values.retain(|v| v.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ecdf { sorted: values }
    }

    /// Number of (finite) sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of sample values `<= x`. Returns `0.0` on an
    /// empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]`, using the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0, 1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Smallest sample value; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The sorted sample underlying the ECDF.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// The CDF as `(x, F(x))` step points — one per distinct sample value —
    /// ready for plotting (the format of the paper's Figures 4–6).
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut points = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            points.push((x, j as f64 / n));
            i = j;
        }
        points
    }

    /// Samples `F` at `count` evenly spaced points over `[min, max]`,
    /// yielding a fixed-size series suitable for tabular figure output.
    ///
    /// Returns an empty vector for an empty sample or `count == 0`.
    pub fn sampled(&self, count: usize) -> Vec<(f64, f64)> {
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        if count == 0 {
            return Vec::new();
        }
        if count == 1 || lo == hi {
            return vec![(hi, self.eval(hi))];
        }
        (0..count)
            .map(|i| {
                // Pin the endpoint: `lo + (hi - lo)` can round below `hi`,
                // which would leave the sampled CDF short of 1.0.
                let x = if i == count - 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (count - 1) as f64
                };
                (x, self.eval(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Ecdf {
        Ecdf::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_right_continuous_step() {
        let e = Ecdf::new(vec![1.0, 3.0]);
        assert_eq!(e.eval(0.999), 0.0);
        assert_eq!(e.eval(1.0), 0.5);
        assert_eq!(e.eval(2.9), 0.5);
        assert_eq!(e.eval(3.0), 1.0);
    }

    #[test]
    fn non_finite_values_dropped() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.max(), Some(2.0));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(0.75), 30.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_of_empty_panics() {
        Ecdf::new(vec![]).quantile(0.5);
    }

    #[test]
    fn steps_collapse_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(e.steps(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn sampled_series_has_requested_len_and_monotone() {
        let e = Ecdf::new(vec![0.0, 1.0, 2.0, 5.0, 9.0]);
        let s = e.sampled(11);
        assert_eq!(s.len(), 11);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn sampled_degenerate_cases() {
        assert!(Ecdf::new(vec![]).sampled(5).is_empty());
        let constant = Ecdf::new(vec![2.0, 2.0]);
        assert_eq!(constant.sampled(5), vec![(2.0, 1.0)]);
    }
}
