//! Kolmogorov–Smirnov distances.

use crate::Ecdf;

/// One-sample KS statistic: `sup_x |F_n(x) - F(x)|` between the empirical
/// CDF of `sample` and a model CDF.
///
/// The supremum over a step function is attained at a sample point, checked
/// from both sides of each step. Returns `0.0` for an empty sample.
///
/// ```
/// use circlekit_stats::ks_statistic;
/// // Uniform[0,1] sample vs its own CDF: small distance.
/// let sample: Vec<f64> = (1..=100).map(|i| i as f64 / 101.0).collect();
/// let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
/// assert!(d < 0.05);
/// ```
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &[f64], model_cdf: F) -> f64 {
    let ecdf = Ecdf::new(sample.to_vec());
    let sorted = ecdf.sorted_values();
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let mut sup: f64 = 0.0;
    let mut below = 0usize; // number of samples strictly below current x
    let mut i = 0usize;
    while i < n {
        let x = sorted[i];
        let mut j = i;
        while j < n && sorted[j] == x {
            j += 1;
        }
        let f = model_cdf(x);
        let emp_before = below as f64 / n as f64;
        let emp_at = j as f64 / n as f64;
        sup = sup.max((emp_before - f).abs()).max((emp_at - f).abs());
        below = j;
        i = j;
    }
    sup
}

/// One-sample KS statistic for **discrete** models: compares the empirical
/// CDF with the model CDF only *at* the observed atoms (right limits).
///
/// The two-sided continuous check in [`ks_statistic`] would charge the full
/// probability mass of each atom as error against a discrete model, which
/// is wrong — both CDFs jump at the same points.
pub fn ks_statistic_discrete<F: Fn(f64) -> f64>(sample: &[f64], model_cdf: F) -> f64 {
    let ecdf = Ecdf::new(sample.to_vec());
    let sorted = ecdf.sorted_values();
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let mut sup: f64 = 0.0;
    let mut i = 0usize;
    while i < n {
        let x = sorted[i];
        let mut j = i;
        while j < n && sorted[j] == x {
            j += 1;
        }
        let emp_at = j as f64 / n as f64;
        sup = sup.max((emp_at - model_cdf(x)).abs());
        i = j;
    }
    sup
}

/// Two-sample KS statistic: `sup_x |F_a(x) - F_b(x)|`.
///
/// Returns `1.0` when exactly one sample is empty (maximal disagreement) and
/// `0.0` when both are empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    let ea = Ecdf::new(a.to_vec());
    let eb = Ecdf::new(b.to_vec());
    match (ea.is_empty(), eb.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        _ => {}
    }
    let mut sup: f64 = 0.0;
    for &x in ea.sorted_values().iter().chain(eb.sorted_values()) {
        sup = sup.max((ea.eval(x) - eb.eval(x)).abs());
    }
    sup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(ks_two_sample(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = vec![1.0, 2.0];
        let b = vec![10.0, 20.0];
        assert_eq!(ks_two_sample(&a, &b), 1.0);
    }

    #[test]
    fn empty_sample_conventions() {
        assert_eq!(ks_two_sample(&[], &[]), 0.0);
        assert_eq!(ks_two_sample(&[1.0], &[]), 1.0);
    }

    #[test]
    fn two_sample_is_symmetric() {
        let a = vec![1.0, 3.0, 5.0];
        let b = vec![2.0, 3.0, 8.0, 9.0];
        assert_eq!(ks_two_sample(&a, &b), ks_two_sample(&b, &a));
    }

    #[test]
    fn one_sample_against_degenerate_model() {
        // Model puts all mass below the sample: distance -> 1 at the top.
        let sample = vec![1.0, 2.0];
        let d = ks_statistic(&sample, |_| 1.0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn one_sample_exact_small_case() {
        // Sample {0.5}, model uniform[0,1]: |F_n - F| max is 0.5 at x=0.5
        // (checking both sides of the step: |0 - 0.5| and |1 - 0.5|).
        let d = ks_statistic(&[0.5], |x| x.clamp(0.0, 1.0));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_handles_ties() {
        // Sample {0.5, 0.5} vs continuous uniform[0,1]: the step at 0.5 goes
        // 0 -> 1, so the distance is |1 - 0.5| = |0 - 0.5| = 0.5.
        let d = ks_statistic(&[0.5, 0.5], |x| x.clamp(0.0, 1.0));
        assert!((d - 0.5).abs() < 1e-12);
    }
}
