//! Shared fixtures for the `circlekit` benchmark harness.
//!
//! Every bench regenerates one of the paper's tables/figures on seeded
//! synthetic data; this module centralises the scales and seeds so the
//! benches and the `reproduce` binary agree.

use circlekit::synth::{presets, SynthDataset};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Seed used across the harness (the paper's publication year).
pub const SEED: u64 = 2014;

/// Scale used by the Criterion benches (small: benches measure harness
/// cost, the `reproduce` binary produces the figures at a larger scale).
pub const BENCH_SCALE: f64 = 0.004;

/// Scale used by the `reproduce` binary by default.
pub const REPRODUCE_SCALE: f64 = 0.02;

/// Generates the Google+ fixture at the given scale.
pub fn gplus(scale: f64) -> SynthDataset {
    presets::google_plus()
        .scaled(scale)
        .generate(&mut SmallRng::seed_from_u64(SEED))
}

/// Generates the Twitter fixture at the given scale.
pub fn twitter(scale: f64) -> SynthDataset {
    presets::twitter()
        .scaled(scale)
        .generate(&mut SmallRng::seed_from_u64(SEED + 1))
}

/// Generates the LiveJournal fixture at the given scale.
pub fn livejournal(scale: f64) -> SynthDataset {
    presets::livejournal()
        .scaled(scale)
        .generate(&mut SmallRng::seed_from_u64(SEED + 2))
}

/// Generates the Orkut fixture at the given scale.
pub fn orkut(scale: f64) -> SynthDataset {
    presets::orkut()
        .scaled(scale)
        .generate(&mut SmallRng::seed_from_u64(SEED + 3))
}

/// Generates the Magno-style BFS-crawl fixture at the given scale.
pub fn magno(scale: f64) -> SynthDataset {
    presets::magno()
        .scaled(scale)
        .generate(&mut SmallRng::seed_from_u64(SEED + 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(gplus(0.003).graph, gplus(0.003).graph);
        assert_eq!(twitter(0.003).graph, twitter(0.003).graph);
    }
}
