//! Regenerates every table and figure of the paper on seeded synthetic
//! data.
//!
//! ```text
//! reproduce [EXPERIMENT] [--scale F] [--seed N] [--json] [--threads N]
//!           [--data FILE [--groups FILE]]
//!           [--checkpoint FILE | --resume FILE] [--deadline SECS]
//!
//! EXPERIMENT: all (default) | table2 | table3 | fig1 | fig2 | fig3 | fig4 |
//!             fig5 | fig6 | robustness | categorize | correlations | egoview | detect | sharing
//! --scale F   data-set scale relative to the paper's corpora (default 0.02)
//! --seed N    RNG seed (default 2014)
//! --json      additionally emit machine-readable JSON rows
//! --data FILE score a real data set instead of the synthetic Google+
//!             fixture (fig5, fig6, and table3 only). FILE is a text edge
//!             list or a CKS1 binary snapshot, auto-detected by magic; a
//!             snapshot carries its own directedness and groups, a text
//!             edge list is read as directed and takes its groups from
//!             --groups FILE. Both forms of the same data produce
//!             bit-identical output, and --threads / --checkpoint /
//!             --resume / --deadline compose unchanged.
//! --sampled   use sampled (Viger-Latapy) modularity expectations in fig5
//! --threads N score fig5/fig6 on N worker threads (seeded per-set RNG
//!             streams keep the output identical for every N; fig5 then
//!             always uses closed-form modularity)
//! --checkpoint FILE  score fig5/fig6 through a sidecar checkpoint: every
//!             completed chunk of scores is flushed to FILE, and a later
//!             run with the same seed skips the cached chunks bit-identically
//! --resume FILE      like --checkpoint but requires FILE to exist (guards
//!             against resuming from a mistyped path)
//! --deadline SECS    soft deadline for fig5/fig6 scoring; an interrupted
//!             run exits with status 75 and, when checkpointed, can be
//!             resumed with --resume FILE
//!
//! Checkpointed runs print exactly the same stdout as plain runs with the
//! same --threads value; resume/interruption notes go to stderr.
//! ```

use circlekit::categorize::{categorize_circles, CircleCategory};
use circlekit::checkpoint::{CheckpointStore, RunError};
use circlekit::experiments::{
    characterize, circles_vs_random, circles_vs_random_checkpointed, circles_vs_random_parallel,
    clustering_report, compare_datasets, compare_datasets_checkpointed, compare_datasets_parallel,
    degree_fit, directed_vs_undirected, ego_overlap_report, summarize_datasets, ModularityMode,
};
use circlekit::graph::{parse_edge_list, parse_groups_with_policy, Graph, IngestPolicy, RunControl};
use circlekit::metrics::DegreeKind;
use circlekit::render;
use circlekit::store::{file_is_snapshot, MappedSnapshot};
use circlekit::synth::{presets, GroupKind, SynthDataset};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// BSD `EX_TEMPFAIL`: the conventional "try again later" exit status,
/// used here for interrupted-but-resumable runs.
const EX_TEMPFAIL: u8 = 75;

struct Options {
    experiment: String,
    scale: f64,
    seed: u64,
    json: bool,
    sampled_modularity: bool,
    threads: Option<usize>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    deadline: Option<f64>,
    data: Option<PathBuf>,
    groups: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        experiment: "all".into(),
        scale: 0.02,
        seed: 2014,
        json: false,
        sampled_modularity: false,
        threads: None,
        checkpoint: None,
        resume: false,
        deadline: None,
        data: None,
        groups: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--json" => opts.json = true,
            "--sampled" => opts.sampled_modularity = true,
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = Some(circlekit::scoring::parse_thread_count(&v)?);
            }
            "--checkpoint" => {
                let v = args.next().ok_or("--checkpoint needs a file path")?;
                opts.checkpoint = Some(PathBuf::from(v));
            }
            "--resume" => {
                let v = args.next().ok_or("--resume needs a file path")?;
                opts.checkpoint = Some(PathBuf::from(v));
                opts.resume = true;
            }
            "--data" => {
                let v = args.next().ok_or("--data needs a file path")?;
                opts.data = Some(PathBuf::from(v));
            }
            "--groups" => {
                let v = args.next().ok_or("--groups needs a file path")?;
                opts.groups = Some(PathBuf::from(v));
            }
            "--deadline" => {
                let v = args.next().ok_or("--deadline needs a value in seconds")?;
                let secs: f64 = v.parse().map_err(|_| format!("bad deadline {v:?}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("bad deadline {v:?}"));
                }
                opts.deadline = Some(secs);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: reproduce [EXPERIMENT] [--scale F] [--seed N] [--json] [--threads N]\n\
                     \x20                [--data FILE [--groups FILE]]\n\
                     \x20                [--checkpoint FILE | --resume FILE] [--deadline SECS]"
                        .into(),
                )
            }
            other if !other.starts_with('-') => opts.experiment = other.to_string(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let run = |name: &str| opts.experiment == "all" || opts.experiment == name;
    let mut matched = false;

    // External data replaces the synthetic Google+ fixture; only the
    // group-scoring experiments (and their data-set table) interpret a
    // graph-plus-groups file meaningfully.
    if opts.data.is_some() && !matches!(opts.experiment.as_str(), "fig5" | "fig6" | "table3") {
        eprintln!("error: --data applies to fig5, fig6, and table3 (got {:?})", opts.experiment);
        return ExitCode::FAILURE;
    }
    if opts.groups.is_some() && opts.data.is_none() {
        eprintln!("error: --groups needs --data");
        return ExitCode::FAILURE;
    }

    // Run control + checkpointing apply to the chunked scoring experiments
    // (fig5, fig6); everything else is quick enough to just rerun.
    let checkpointed = opts.checkpoint.is_some() || opts.deadline.is_some();
    let control = match opts.deadline {
        Some(secs) => RunControl::new().with_deadline(Duration::from_secs_f64(secs)),
        None => RunControl::new(),
    };
    let mut store: Option<CheckpointStore> = if checkpointed {
        if !(run("fig5") || run("fig6")) {
            eprintln!("note: --checkpoint/--resume/--deadline only affect fig5 and fig6");
        }
        match &opts.checkpoint {
            Some(path) => {
                if opts.resume && !path.exists() {
                    eprintln!("error: --resume {}: no such checkpoint", path.display());
                    return ExitCode::FAILURE;
                }
                match CheckpointStore::at_path(path, opts.seed) {
                    Ok(s) => {
                        if !s.is_empty() {
                            eprintln!(
                                "note: resuming from {} ({} cached chunks)",
                                path.display(),
                                s.len()
                            );
                        }
                        Some(s)
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => Some(CheckpointStore::in_memory(opts.seed)),
        }
    } else {
        None
    };

    // Shared fixtures (generated lazily so single-figure runs stay fast).
    // With --data the Google+ slot is loaded from disk instead.
    let mut gplus: Option<SynthDataset> = None;
    if let Some(path) = &opts.data {
        match load_external(path, opts.groups.as_deref()) {
            Ok(ds) => gplus = Some(ds),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let gplus_ds = |seed: u64, scale: f64| -> SynthDataset {
        presets::google_plus()
            .scaled(scale)
            .generate(&mut SmallRng::seed_from_u64(seed))
    };
    let ensure_gplus = |gplus: &mut Option<SynthDataset>| {
        if gplus.is_none() {
            *gplus = Some(gplus_ds(opts.seed, opts.scale));
        }
    };

    if run("table2") {
        matched = true;
        ensure_gplus(&mut gplus);
        let ego = gplus.as_ref().expect("fixture");
        let bfs = presets::magno()
            .scaled(opts.scale * 0.01)
            .generate(&mut SmallRng::seed_from_u64(opts.seed + 4));
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let rows = vec![
            characterize(&bfs, 24, &mut rng),
            characterize(ego, 24, &mut rng),
        ];
        println!("== Table II: crawl comparison (BFS crawl vs ego crawl) ==");
        print!("{}", render::render_table2(&rows));
        if opts.json {
            for r in &rows {
                println!(
                    "{}",
                    serde_json::json!({
                        "experiment": "table2", "dataset": r.name,
                        "vertices": r.vertices, "edges": r.edges,
                        "diameter": r.diameter, "asp": r.average_shortest_path,
                        "in_family": r.in_degree_family.map(|m| m.to_string()),
                        "out_family": r.out_degree_family.map(|m| m.to_string()),
                        "avg_in": r.average_in_degree, "avg_out": r.average_out_degree,
                    })
                );
            }
        }
        println!();
    }

    if run("table3") || run("fig6") {
        matched = true;
        ensure_gplus(&mut gplus);
        let gp = gplus.as_ref().expect("fixture");
        let tw = presets::twitter()
            .scaled(opts.scale)
            .generate(&mut SmallRng::seed_from_u64(opts.seed + 1));
        let lj = presets::livejournal()
            .scaled(opts.scale * 0.25)
            .generate(&mut SmallRng::seed_from_u64(opts.seed + 2));
        let ok = presets::orkut()
            .scaled(opts.scale * 0.25)
            .generate(&mut SmallRng::seed_from_u64(opts.seed + 3));
        let all = [gp, &tw, &lj, &ok];

        if run("table3") {
            println!("== Table III: evaluated data sets ==");
            print!("{}", render::render_table3(&summarize_datasets(&all)));
            println!();
        }
        if run("fig6") {
            let scores = if let Some(store) = store.as_mut() {
                match compare_datasets_checkpointed(
                    &all,
                    opts.threads.unwrap_or(1),
                    &control,
                    store,
                ) {
                    Ok(s) => s,
                    Err(e) => return run_failed(e, opts.checkpoint.as_deref()),
                }
            } else {
                match opts.threads {
                    Some(t) => compare_datasets_parallel(&all, t),
                    None => compare_datasets(&all),
                }
            };
            println!("== Figure 6: circles vs communities across data sets ==");
            print!("{}", render::render_fig6(&scores));
            if opts.json {
                for ds in &scores {
                    for (f, _, s) in &ds.per_function {
                        println!(
                            "{}",
                            serde_json::json!({
                                "experiment": "fig6", "dataset": ds.name,
                                "function": f.name(), "mean": s.mean,
                                "median": s.median, "max": s.max,
                            })
                        );
                    }
                }
            }
            println!();
        }
    }

    if run("fig1") {
        matched = true;
        ensure_gplus(&mut gplus);
        let m = circlekit::experiments::ego_overlap_matrix(gplus.as_ref().expect("fixture"));
        println!("== Figure 1 (quantified): ego-network overlap structure ==");
        print!("{}", circlekit::render::render_fig1(&m));
        println!();
    }

    if run("fig2") {
        matched = true;
        ensure_gplus(&mut gplus);
        let stats = ego_overlap_report(gplus.as_ref().expect("fixture"));
        println!("== Figure 2: ego-network membership counts ==");
        print!("{}", render::render_fig2(&stats));
        if opts.json {
            println!(
                "{}",
                serde_json::json!({
                    "experiment": "fig2",
                    "overlap_fraction": stats.overlap_fraction,
                    "series": stats.membership_series(),
                })
            );
        }
        println!();
    }

    if run("fig3") {
        matched = true;
        ensure_gplus(&mut gplus);
        println!("== Figure 3: in-degree distribution of the ego crawl ==");
        match degree_fit(gplus.as_ref().expect("fixture"), DegreeKind::In) {
            Ok(report) => {
                print!("{}", render::render_fig3(&report));
                if opts.json {
                    println!(
                        "{}",
                        serde_json::json!({
                            "experiment": "fig3",
                            "family": report.family().to_string(),
                            "alpha": report.fit.scanned.alpha,
                            "lognormal_mu": report.fit.log_normal.mu,
                            "lognormal_sigma": report.fit.log_normal.sigma,
                        })
                    );
                }
            }
            Err(e) => println!("degree fit failed: {e}"),
        }
        println!();
    }

    if run("fig4") {
        matched = true;
        ensure_gplus(&mut gplus);
        let report = clustering_report(gplus.as_ref().expect("fixture"));
        println!("== Figure 4: clustering-coefficient CDF ==");
        print!("{}", render::render_fig4(&report));
        println!();
    }

    if run("fig5") {
        matched = true;
        ensure_gplus(&mut gplus);
        let ds = gplus.as_ref().expect("fixture");
        let sampled = opts.sampled_modularity && opts.threads.is_none() && store.is_none();
        let result = if let Some(store) = store.as_mut() {
            if opts.sampled_modularity {
                eprintln!(
                    "note: checkpointed runs use closed-form modularity; ignoring --sampled"
                );
            }
            match circles_vs_random_checkpointed(
                ds,
                opts.seed,
                opts.threads.unwrap_or(1),
                &control,
                store,
            ) {
                Ok(r) => r,
                Err(e) => return run_failed(e, opts.checkpoint.as_deref()),
            }
        } else {
            match opts.threads {
                Some(t) => {
                    if opts.sampled_modularity {
                        eprintln!(
                            "note: --threads uses closed-form modularity; ignoring --sampled"
                        );
                    }
                    circles_vs_random_parallel(ds, opts.seed, t)
                }
                None => {
                    let mut rng = SmallRng::seed_from_u64(opts.seed);
                    let mode = if opts.sampled_modularity {
                        // The paper's procedure: Viger-Latapy sampled null graphs.
                        ModularityMode::Sampled { samples: 5, quality: 2.0 }
                    } else {
                        ModularityMode::ClosedForm
                    };
                    circles_vs_random(ds, mode, &mut rng)
                }
            }
        };
        println!(
            "== Figure 5: circles vs random-walk sets (modularity: {}) ==",
            if sampled { "sampled null model" } else { "closed form" }
        );
        print!("{}", render::render_fig5(&result, 11));
        if opts.json {
            for pair in &result.per_function {
                println!(
                    "{}",
                    serde_json::json!({
                        "experiment": "fig5", "function": pair.function.name(),
                        "circle_mean": pair.circles.mean,
                        "random_mean": pair.random.mean,
                        "ks_separation": pair.ks_separation,
                    })
                );
            }
        }
        println!();
    }

    if run("robustness") {
        matched = true;
        ensure_gplus(&mut gplus);
        println!("== Robustness: directed vs undirected scoring (SIV-B) ==");
        print!(
            "{}",
            render::render_robustness(&directed_vs_undirected(gplus.as_ref().expect("fixture")))
        );
        println!();
    }

    if run("categorize") {
        matched = true;
        ensure_gplus(&mut gplus);
        let cats = categorize_circles(gplus.as_ref().expect("fixture"));
        let community = cats
            .iter()
            .filter(|c| c.category == CircleCategory::CommunityLike)
            .count();
        println!("== Extension: Fang-style circle categorisation ==");
        println!(
            "circles: {}   community-like: {}   celebrity-like: {}",
            cats.len(),
            community,
            cats.len() - community
        );
        println!();
    }

    if run("sharing") {
        matched = true;
        ensure_gplus(&mut gplus);
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let r = circlekit::experiments::circle_sharing_densification(
            gplus.as_ref().expect("fixture"),
            0.3,
            &mut rng,
        );
        println!("== Extension: Fang circle-sharing densification ==");
        print!("{}", circlekit::render::render_sharing(&r));
        println!();
    }

    if run("detect") {
        matched = true;
        ensure_gplus(&mut gplus);
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let results =
            circlekit::experiments::detection_comparison(gplus.as_ref().expect("fixture"), &mut rng);
        println!("== Extension: detected groups vs labelled circles ==");
        print!("{}", circlekit::render::render_detection(&results));
        println!();
    }

    if run("egoview") {
        matched = true;
        ensure_gplus(&mut gplus);
        let cmp = circlekit::experiments::ego_view_comparison(gplus.as_ref().expect("fixture"));
        println!("== Extension: global vs ego-centred circle scoring ==");
        print!("{}", circlekit::render::render_ego_view(&cmp));
        println!();
    }

    if run("correlations") {
        matched = true;
        ensure_gplus(&mut gplus);
        let corr = circlekit::experiments::function_correlations(gplus.as_ref().expect("fixture"));
        println!("== Extension: Yang-Leskovec 13-function correlations ==");
        print!("{}", circlekit::render::render_correlations(&corr));
        println!();
    }

    if !matched {
        eprintln!("unknown experiment {:?}", opts.experiment);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Loads a `--data` file as a dataset: a CKS1 snapshot (auto-detected by
/// magic, carrying its own directedness and groups) or a directed text
/// edge list with groups from `--groups`. The data-set name is the file
/// stem, so the snapshot and text forms of the same data render
/// identically.
fn load_external(path: &Path, groups_path: Option<&Path>) -> Result<SynthDataset, String> {
    let name = path
        .file_stem()
        .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned());
    let is_snapshot =
        file_is_snapshot(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let (graph, embedded) = if is_snapshot {
        let mapped =
            MappedSnapshot::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let snap = mapped.load().map_err(|e| format!("{}: {e}", path.display()))?;
        (snap.graph, snap.groups)
    } else {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let edges = parse_edge_list(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        (Graph::from_edges(true, edges), Vec::new())
    };
    let groups = match groups_path {
        Some(gp) => {
            let text = std::fs::read_to_string(gp)
                .map_err(|e| format!("reading {}: {e}", gp.display()))?;
            parse_groups_with_policy(&text, Some(graph.node_count()), IngestPolicy::FailFast)
                .map_err(|e| format!("{}: {e}", gp.display()))?
                .0
        }
        None => embedded,
    };
    if groups.is_empty() {
        return Err(format!(
            "{}: no groups to score (pack the snapshot with --groups, or pass --groups FILE)",
            path.display()
        ));
    }
    Ok(SynthDataset {
        name,
        graph,
        groups,
        egos: Vec::new(),
        ego_owners: Vec::new(),
        kind: GroupKind::Circles,
    })
}

/// Maps a scoring-run failure to an exit status: interruptions are
/// resumable (`EX_TEMPFAIL`), everything else is a plain failure.
fn run_failed(err: RunError, checkpoint: Option<&Path>) -> ExitCode {
    match err {
        RunError::Interrupted(why) => {
            match checkpoint {
                // Nothing may have been flushed yet (e.g. a deadline that
                // fires before the first chunk) — only advertise --resume
                // once the sidecar actually exists.
                Some(path) if path.exists() => eprintln!(
                    "interrupted: {why}; completed chunks are saved — rerun with \
                     --resume {} to continue",
                    path.display()
                ),
                _ => eprintln!("interrupted: {why}"),
            }
            ExitCode::from(EX_TEMPFAIL)
        }
        other => {
            eprintln!("error: {other}");
            ExitCode::FAILURE
        }
    }
}
