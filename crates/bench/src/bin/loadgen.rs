//! Load generator for `circlekit-serve`.
//!
//! ```text
//! loadgen [--connections N] [--requests N] [--scale F] [--workers N]
//!         [--addr HOST:PORT] [--snapshot FILE.cks] [--out FILE.json]
//!         [--kill-replica] [--mix] [--shards N] [--rate R]
//! ```
//!
//! Drives `--connections` concurrent clients, each issuing `--requests`
//! group-scoring requests, and writes throughput plus latency
//! percentiles to `BENCH_serve.json` at the repo root (or `--out`).
//! By default the harness starts an in-process server over the seeded
//! synthetic Google+ fixture so the run is self-contained; `--addr`
//! points it at an external daemon instead, and `--snapshot` serves a
//! packed `.cks` file rather than the fixture.
//!
//! Failures are tallied by category — `refused` (connect refused),
//! `reset` (peer closed mid-exchange), `timeout` (client deadline),
//! `typed_error` (a protocol-level refusal), `other` — so a run's
//! failure mode is visible at a glance, not just its count.
//!
//! `--mix` switches each connection to mixed traffic — group scoring,
//! `suggest_circles` discovery, and small `apply_mutations` batches
//! interleaved — so cache invalidation and re-discovery run under
//! concurrent load. The resulting `serve_loadgen_mix` row replaces only
//! itself in the report file, leaving the plain row in place.
//!
//! `--rate R` switches to the open-loop drill: `--connections` (up to
//! 10k) nonblocking CKP1 connections multiplexed on one epoll poller,
//! with arrivals drawn from a Poisson process at `R` requests/second
//! aggregate. Open loop means arrivals never wait for responses, so
//! queueing delay is charged to latency — each sample runs from the
//! *scheduled* arrival instant to response receipt, making coordinated
//! omission impossible. The `serve_loadgen_async` row is appended
//! alongside the closed-loop row (replacing only itself); the gates are
//! zero failed requests and p99 ≤ 10 ms.
//!
//! `--kill-replica` runs the availability drill instead: an in-process
//! primary plus one read replica, failover clients preferring the
//! replica, and a controller that takes the replica down mid-run and
//! restarts it on the same port. The acceptance bar is read
//! availability ≥ 99% while the replica bounces; the resulting
//! `serve_loadgen_failover` row is *appended* to the report file
//! (JSON lines), leaving the plain `serve_loadgen` row in place.
//!
//! `--shards N` runs the sharded-cluster drill: the fixture is split
//! into `N` halo sub-snapshots served by `N` in-process shard daemons
//! behind a coordinator, and the same workload is driven twice — once
//! against a single-node server and once through the coordinator — so
//! the `serve_loadgen_shard` row records the scatter-gather overhead
//! directly. The gates are zero failed requests and a coordinator p99
//! overhead under 50 ms over the single-node p99.
//!
//! In plain mode the process exits non-zero if *any* request fails —
//! the acceptance bar for the serve subsystem is zero failed requests
//! under ≥ 8 concurrent connections.

use circlekit::live::Mutation;
use circlekit_bench::gplus;
use circlekit_serve::{
    Client, ClientError, FailoverClient, FailoverOptions, FrameError, ServeConfig, Server,
    SnapshotRegistry,
};
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    connections: usize,
    requests: usize,
    scale: f64,
    workers: usize,
    addr: Option<String>,
    snapshot: Option<String>,
    out: Option<String>,
    kill_replica: bool,
    mix: bool,
    shards: Option<usize>,
    rate: Option<f64>,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        connections: 8,
        requests: 50,
        scale: 0.01,
        workers: 2,
        addr: None,
        snapshot: None,
        out: None,
        kill_replica: false,
        mix: false,
        shards: None,
        rate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--connections" => {
                let v = value("--connections")?;
                opts.connections = v.parse().map_err(|_| format!("bad --connections {v:?}"))?;
            }
            "--requests" => {
                let v = value("--requests")?;
                opts.requests = v.parse().map_err(|_| format!("bad --requests {v:?}"))?;
            }
            "--scale" => {
                let v = value("--scale")?;
                opts.scale = v.parse().map_err(|_| format!("bad --scale {v:?}"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--addr" => opts.addr = Some(value("--addr")?),
            "--snapshot" => opts.snapshot = Some(value("--snapshot")?),
            "--out" => opts.out = Some(value("--out")?),
            "--kill-replica" => opts.kill_replica = true,
            "--mix" => opts.mix = true,
            "--shards" => {
                opts.shards = Some(circlekit::shard::parse_shard_count(&value("--shards")?)?)
            }
            "--rate" => {
                let v = value("--rate")?;
                let rate: f64 = v.parse().map_err(|_| format!("bad --rate {v:?}"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("--rate must be a positive finite number, got {v:?}"));
                }
                opts.rate = Some(rate);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.connections == 0 || opts.requests == 0 {
        return Err("--connections and --requests must be at least 1".to_string());
    }
    Ok(opts)
}

/// Buckets a failure for the per-category tally.
fn classify(error: &ClientError) -> &'static str {
    match error {
        ClientError::Io(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => "refused",
        ClientError::Io(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
            ) =>
        {
            "reset"
        }
        ClientError::Frame(FrameError::Closed | FrameError::Truncated) => "reset",
        ClientError::Timeout { .. } => "timeout",
        ClientError::Server { .. } | ClientError::NoPrimary { .. } => "typed_error",
        _ => "other",
    }
}

const CATEGORIES: [&str; 5] = ["refused", "reset", "timeout", "typed_error", "other"];

/// Renders the per-category failure counts as a JSON object.
fn failure_fields(failures: &[&(&'static str, String)]) -> serde_json::Value {
    serde_json::Value::Map(
        CATEGORIES
            .iter()
            .map(|&cat| {
                let n = failures.iter().filter(|(c, _)| *c == cat).count();
                (cat.to_string(), serde_json::json!(n))
            })
            .collect(),
    )
}

/// Latency percentile over a sorted sample, by nearest-rank.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct ConnReport {
    latencies_us: Vec<u64>,
    failures: Vec<(&'static str, String)>,
}

fn drive_connection(
    addr: &str,
    snapshot: &str,
    conn: usize,
    requests: usize,
    group_count: usize,
) -> ConnReport {
    let mut report = ConnReport { latencies_us: Vec::with_capacity(requests), failures: Vec::new() };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            report.failures.push((classify(&e), format!("connection {conn}: connect: {e}")));
            return report;
        }
    };
    for r in 0..requests {
        // Spread requests over groups and both function sets so the run
        // exercises cache hits, misses, and different batch shapes.
        let group = (conn * 31 + r * 7) % group_count;
        let functions = if r % 3 == 0 { Some("all") } else { None };
        let started = Instant::now();
        match client.score_group(snapshot, group, functions, None) {
            Ok(_) => report.latencies_us.push(started.elapsed().as_micros() as u64),
            Err(e) => {
                report.failures.push((classify(&e), format!("connection {conn}, request {r}: {e}")))
            }
        }
    }
    report
}

/// The `--kill-replica` variant of [`drive_connection`]: reads go
/// through a [`FailoverClient`] preferring the replica, so a bounce
/// mid-run exercises failover instead of failing the run.
fn drive_failover(
    endpoints: &[String],
    snapshot: &str,
    conn: usize,
    requests: usize,
    group_count: usize,
) -> ConnReport {
    let mut report = ConnReport { latencies_us: Vec::with_capacity(requests), failures: Vec::new() };
    let options = FailoverOptions { seed: conn as u64 + 1, ..FailoverOptions::default() };
    let mut client = FailoverClient::new(endpoints.iter().cloned(), options);
    for r in 0..requests {
        let group = (conn * 31 + r * 7) % group_count;
        let functions = if r % 3 == 0 { Some("all") } else { None };
        let started = Instant::now();
        match client.read(|c| c.score_group(snapshot, group, functions, None)) {
            Ok(_) => report.latencies_us.push(started.elapsed().as_micros() as u64),
            Err(e) => {
                report.failures.push((classify(&e), format!("connection {conn}, request {r}: {e}")))
            }
        }
    }
    report
}

/// Per-op latency samples for a `--mix` connection.
struct MixReport {
    score_us: Vec<u64>,
    suggest_us: Vec<u64>,
    mutate_us: Vec<u64>,
    failures: Vec<(&'static str, String)>,
}

/// The `--mix` variant of [`drive_connection`]: interleaves group
/// scoring, circle discovery, and single-edge mutation batches so the
/// server juggles score-cache hits, suggestion invalidation, and
/// re-discovery concurrently. Mutation rejections (duplicate edge,
/// missing edge) are normal traffic, not failures — the server reports
/// them inside an `ok` response.
fn drive_mix(
    addr: &str,
    snapshot: &str,
    conn: usize,
    requests: usize,
    group_count: usize,
    node_count: usize,
) -> MixReport {
    let mut report = MixReport {
        score_us: Vec::new(),
        suggest_us: Vec::new(),
        mutate_us: Vec::new(),
        failures: Vec::new(),
    };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            report.failures.push((classify(&e), format!("connection {conn}: connect: {e}")));
            return report;
        }
    };
    for r in 0..requests {
        let started = Instant::now();
        let (bucket, outcome): (&mut Vec<u64>, Result<_, ClientError>) = match r % 5 {
            0 => {
                // Toggle one edge per batch; alternating add/remove keeps
                // the delta overlay churning without growing unboundedly.
                let u = ((conn * 7919 + r * 13) % node_count) as u32;
                let v = ((conn * 7919 + r * 13 + 1 + r % 11) % node_count) as u32;
                let mutation = if (r / 5) % 2 == 0 {
                    Mutation::AddEdge { u, v }
                } else {
                    Mutation::RemoveEdge { u, v }
                };
                (&mut report.mutate_us, client.apply_mutations(snapshot, &[mutation]))
            }
            1 | 3 => {
                let ego = ((conn * 31 + r * 17) % node_count) as u32;
                (&mut report.suggest_us, client.suggest_circles(snapshot, ego, 2014, 3, 10))
            }
            _ => {
                let group = (conn * 31 + r * 7) % group_count;
                let functions = if r % 3 == 0 { Some("all") } else { None };
                (&mut report.score_us, client.score_group(snapshot, group, functions, None))
            }
        };
        match outcome {
            Ok(_) => bucket.push(started.elapsed().as_micros() as u64),
            Err(e) => {
                report.failures.push((classify(&e), format!("connection {conn}, request {r}: {e}")))
            }
        }
    }
    report
}

/// Asks a running server which snapshot to drive: the first listed one,
/// with its group count from `list_groups`.
fn discover_target(addr: &str) -> Result<(String, usize), String> {
    let mut client = Client::connect_with_patience(addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let listing = client.list_snapshots().map_err(|e| e.to_string())?;
    let wire = circlekit_serve::protocol::wire::get;
    let Some(serde_json::Value::Seq(snapshots)) = wire(&listing, "snapshots") else {
        return Err("list_snapshots response lacks a snapshot array".to_string());
    };
    let Some(first) = snapshots.first() else {
        return Err("the server has no snapshots loaded".to_string());
    };
    let Some(serde_json::Value::Str(id)) = wire(first, "id") else {
        return Err("snapshot entry lacks an id".to_string());
    };
    let groups = client.list_groups(id).map_err(|e| e.to_string())?;
    match wire(&groups, "groups") {
        Some(serde_json::Value::UInt(n)) => Ok((id.clone(), *n as usize)),
        _ => Err("list_groups response lacks a group count".to_string()),
    }
}

fn run() -> Result<(), String> {
    let opts = parse_options()?;
    if opts.rate.is_some() {
        return run_async(&opts);
    }
    if opts.kill_replica {
        return run_kill_replica(&opts);
    }
    if opts.mix {
        return run_mix(&opts);
    }
    if opts.shards.is_some() {
        return run_shards(&opts);
    }

    // Either attach to an external daemon or host one in-process.
    let mut local_server = None;
    let (addr, snapshot_id, group_count) = match &opts.addr {
        Some(addr) => {
            let (id, groups) = discover_target(addr)?;
            (addr.clone(), id, groups)
        }
        None => {
            let mut registry = SnapshotRegistry::new();
            let groups = match &opts.snapshot {
                Some(path) => {
                    registry.load(path, Some("loadgen"))?;
                    registry.get("loadgen").expect("just loaded").groups.len()
                }
                None => {
                    let data = gplus(opts.scale);
                    let groups = data.groups.len();
                    registry.insert("loadgen", data.graph, data.groups)?;
                    groups
                }
            };
            let config = ServeConfig {
                workers: opts.workers,
                ..ServeConfig::default()
            };
            let server = Server::start(registry, config, ("127.0.0.1", 0))
                .map_err(|e| format!("starting server: {e}"))?;
            let addr = server.local_addr().to_string();
            local_server = Some(server);
            (addr, "loadgen".to_string(), groups)
        }
    };
    if group_count == 0 {
        return Err("the served snapshot has no groups to score".to_string());
    }

    println!(
        "loadgen: {} connections x {} requests over {} groups at {addr}",
        opts.connections, opts.requests, group_count
    );
    let started = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let snapshot_id = snapshot_id.as_str();
        let requests = opts.requests;
        let handles: Vec<_> = (0..opts.connections)
            .map(|conn| {
                scope.spawn(move || drive_connection(addr, snapshot_id, conn, requests, group_count))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = reports.iter().flat_map(|r| r.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let failures: Vec<&(&'static str, String)> = reports.iter().flat_map(|r| &r.failures).collect();
    let total = opts.connections * opts.requests;
    let ok = latencies.len();
    let throughput = ok as f64 / wall.as_secs_f64();
    let (p50, p90, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
    );

    let server_stats = local_server.map(|server| {
        let mut client = Client::connect(addr).expect("stats connection");
        client.shutdown().expect("shutdown request");
        server.join()
    });

    let mut fields = vec![
        ("bench".to_string(), serde_json::json!("serve_loadgen")),
        ("connections".to_string(), serde_json::json!(opts.connections)),
        ("requests_per_connection".to_string(), serde_json::json!(opts.requests)),
        ("total_requests".to_string(), serde_json::json!(total)),
        ("failed_requests".to_string(), serde_json::json!(failures.len())),
        ("failures".to_string(), failure_fields(&failures)),
        ("availability".to_string(), serde_json::json!(ok as f64 / total as f64)),
        ("wall_ms".to_string(), serde_json::json!(wall.as_millis() as u64)),
        ("throughput_rps".to_string(), serde_json::json!(throughput)),
        (
            "latency_us".to_string(),
            serde_json::json!({
                "p50": p50,
                "p90": p90,
                "p99": p99,
                "max": latencies.last().copied().unwrap_or(0),
            }),
        ),
    ];
    if let Some(stats) = server_stats {
        fields.push((
            "server".to_string(),
            serde_json::json!({
                "batches": stats.batches,
                "batched_jobs": stats.batched_jobs,
                "max_batch": stats.max_batch,
                "cache_hits": stats.cache.hits,
                "cache_misses": stats.cache.misses,
                "overloaded": stats.overloaded,
            }),
        ));
    }
    let report = serde_json::Value::Map(fields);
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    let default_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let out_path = opts.out.as_deref().map(Path::new).unwrap_or(&default_out);
    // The file is JSON lines, one row per bench mode: replace this
    // mode's row, keep the others (e.g. serve_loadgen_failover).
    let kept: String = std::fs::read_to_string(out_path)
        .unwrap_or_default()
        .lines()
        .filter(|line| !line.contains("\"bench\":\"serve_loadgen\","))
        .map(|line| format!("{line}\n"))
        .collect();
    std::fs::write(out_path, json + "\n" + &kept)
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;

    println!(
        "{ok}/{total} ok in {:.2}s ({throughput:.0} req/s)   p50 {p50}us  p90 {p90}us  p99 {p99}us",
        wall.as_secs_f64()
    );
    println!("wrote {}", out_path.display());
    for (category, detail) in failures.iter().map(|f| (f.0, &f.1)) {
        eprintln!("FAILED [{category}]: {detail}");
    }
    if !failures.is_empty() {
        return Err(format!("{} of {total} requests failed", failures.len()));
    }
    Ok(())
}

/// The `--rate` drill: open-loop Poisson arrivals over `--connections`
/// nonblocking CKP1 connections multiplexed on one [`Poller`]. Arrivals
/// fire on schedule whether or not earlier responses have landed, and
/// each latency sample runs from the *scheduled* arrival instant to
/// response receipt, so server queueing is charged to the tail instead
/// of being silently absorbed (no coordinated omission). Gates: zero
/// failed requests and p99 at or under 10 ms. Appends a
/// `serve_loadgen_async` row that replaces only itself.
fn run_async(opts: &Options) -> Result<(), String> {
    use circlekit::scoring::ScoringFunction;
    use circlekit_net::{Event, Interest, Poller};
    use circlekit_serve::{binary, Request};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::VecDeque;
    use std::io::{ErrorKind, Read, Write};
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;

    const P99_BUDGET_US: u64 = 10_000;

    let rate = opts.rate.expect("mode guard");
    if opts.kill_replica || opts.mix || opts.shards.is_some() {
        return Err("--rate does not combine with --kill-replica/--mix/--shards".to_string());
    }

    // Host or attach, exactly as the closed-loop mode does.
    let mut local_server = None;
    let (addr, snapshot_id, group_count) = match &opts.addr {
        Some(addr) => {
            let (id, groups) = discover_target(addr)?;
            (addr.clone(), id, groups)
        }
        None => {
            let mut registry = SnapshotRegistry::new();
            let groups = match &opts.snapshot {
                Some(path) => {
                    registry.load(path, Some("loadgen"))?;
                    registry.get("loadgen").expect("just loaded").groups.len()
                }
                None => {
                    let data = gplus(opts.scale);
                    let groups = data.groups.len();
                    registry.insert("loadgen", data.graph, data.groups)?;
                    groups
                }
            };
            let config = ServeConfig { workers: opts.workers, ..ServeConfig::default() };
            let server = Server::start(registry, config, ("127.0.0.1", 0))
                .map_err(|e| format!("starting server: {e}"))?;
            let addr = server.local_addr().to_string();
            local_server = Some(server);
            (addr, "loadgen".to_string(), groups)
        }
    };
    if group_count == 0 {
        return Err("the served snapshot has no groups to score".to_string());
    }

    let total = opts.connections * opts.requests;
    println!(
        "loadgen --rate {rate}: open loop, {} connections, {total} Poisson arrivals \
         over {group_count} groups at {addr}",
        opts.connections
    );

    struct AsyncConn {
        stream: TcpStream,
        outbuf: Vec<u8>,
        inbuf: Vec<u8>,
        /// Scheduled arrival instants of in-flight requests. CKP1
        /// responses come back in request order, so the front is always
        /// the next response's arrival time.
        pending: VecDeque<Instant>,
        writable_interest: bool,
        dead: bool,
    }

    /// Takes a connection out of the run, charging every unanswered
    /// request on it as a `reset` failure.
    fn kill(
        poller: &Poller,
        index: usize,
        conn: &mut AsyncConn,
        failures: &mut Vec<(&'static str, String)>,
        why: &str,
    ) {
        if conn.dead {
            return;
        }
        conn.dead = true;
        let _ = poller.deregister(conn.stream.as_raw_fd());
        for _ in conn.pending.drain(..) {
            failures.push(("reset", format!("connection {index}: {why}")));
        }
    }

    /// Drains as much of the write buffer as the socket accepts, then
    /// keeps poller interest in sync with whether bytes remain.
    fn pump_writes(
        poller: &Poller,
        index: usize,
        conn: &mut AsyncConn,
        failures: &mut Vec<(&'static str, String)>,
    ) {
        if conn.dead {
            return;
        }
        while !conn.outbuf.is_empty() {
            match conn.stream.write(&conn.outbuf) {
                Ok(0) => {
                    kill(poller, index, conn, failures, "write returned 0");
                    return;
                }
                Ok(n) => {
                    conn.outbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    kill(poller, index, conn, failures, &format!("write: {e}"));
                    return;
                }
            }
        }
        let want_write = !conn.outbuf.is_empty();
        if want_write != conn.writable_interest {
            let interest = if want_write { Interest::BOTH } else { Interest::READ };
            if poller.reregister(conn.stream.as_raw_fd(), index as u64, interest).is_ok() {
                conn.writable_interest = want_write;
            }
        }
    }

    let poller = Poller::new().map_err(|e| format!("epoll: {e}"))?;
    let mut conns: Vec<AsyncConn> = Vec::with_capacity(opts.connections);
    for index in 0..opts.connections {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| format!("connection {index}: connect: {e}"))?;
        circlekit_net::tune_stream(&stream)
            .map_err(|e| format!("connection {index}: nodelay: {e}"))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("connection {index}: nonblocking: {e}"))?;
        poller
            .register(stream.as_raw_fd(), index as u64, Interest::READ)
            .map_err(|e| format!("connection {index}: register: {e}"))?;
        conns.push(AsyncConn {
            stream,
            outbuf: Vec::new(),
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            writable_interest: false,
            dead: false,
        });
    }

    let wire = circlekit_serve::protocol::wire::get;
    let mut failures: Vec<(&'static str, String)> = Vec::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut rng = SmallRng::seed_from_u64(2014);
    let mut events: Vec<Event> = Vec::new();
    let started = Instant::now();
    let mut next_due = started;
    let mut issued = 0usize;
    // The schedule's own length plus a generous drain window; anything
    // unanswered past this is a timeout failure, not a hang.
    let drain_deadline =
        started + Duration::from_secs_f64(total as f64 / rate) + Duration::from_secs(30);

    loop {
        let now = Instant::now();
        let inflight: usize = conns.iter().map(|c| c.pending.len()).sum();
        if issued >= total && inflight == 0 {
            break;
        }
        if now >= drain_deadline {
            for (index, conn) in conns.iter_mut().enumerate() {
                for _ in conn.pending.drain(..) {
                    failures.push((
                        "timeout",
                        format!("connection {index}: unanswered at the drain deadline"),
                    ));
                }
            }
            break;
        }

        // Fire every due arrival; the open loop never waits for
        // responses, that is the point.
        while issued < total && now >= next_due {
            let preferred = issued % conns.len();
            let live = (0..conns.len())
                .map(|probe| (preferred + probe) % conns.len())
                .find(|&i| !conns[i].dead);
            let Some(index) = live else {
                return Err("every connection died mid-run".to_string());
            };
            let request = Request::ScoreGroup {
                snapshot: snapshot_id.clone(),
                group: issued % group_count,
                functions: ScoringFunction::PAPER.to_vec(),
                deadline_ms: None,
            };
            let (op, payload) = binary::encode_request(&request);
            let conn = &mut conns[index];
            conn.pending.push_back(next_due);
            conn.outbuf
                .extend_from_slice(&binary::encode_frame(binary::KIND_REQUEST, op, &payload));
            pump_writes(&poller, index, conn, &mut failures);
            issued += 1;
            // Exponential inter-arrival gap: a Poisson process at `rate`.
            let uniform: f64 = rng.gen();
            next_due += Duration::from_secs_f64(-(1.0 - uniform).ln() / rate);
        }

        let timeout = if issued < total {
            next_due.saturating_duration_since(Instant::now()).min(Duration::from_millis(100))
        } else {
            Duration::from_millis(100)
        };
        poller.wait(&mut events, Some(timeout)).map_err(|e| format!("epoll wait: {e}"))?;
        for event in &events {
            let index = event.token as usize;
            let Some(conn) = conns.get_mut(index) else { continue };
            if conn.dead {
                continue;
            }
            if event.error {
                kill(&poller, index, conn, &mut failures, "socket error");
                continue;
            }
            if event.writable {
                pump_writes(&poller, index, conn, &mut failures);
            }
            if !(event.readable || event.hangup) || conn.dead {
                continue;
            }
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        kill(&poller, index, conn, &mut failures, "peer closed");
                        break;
                    }
                    Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        kill(&poller, index, conn, &mut failures, &format!("read: {e}"));
                        break;
                    }
                }
            }
            while !conn.dead {
                match binary::try_parse(&conn.inbuf) {
                    Ok(None) => break,
                    Ok(Some((frame, consumed))) => {
                        conn.inbuf.drain(..consumed);
                        let Some(scheduled) = conn.pending.pop_front() else {
                            kill(&poller, index, conn, &mut failures, "unsolicited response");
                            break;
                        };
                        let ok = binary::decode_response_payload(&frame.payload)
                            .ok()
                            .and_then(|value| match wire(&value, "ok") {
                                Some(serde_json::Value::Bool(ok)) => Some(*ok),
                                _ => None,
                            })
                            .unwrap_or(false);
                        if ok {
                            let waited = Instant::now().saturating_duration_since(scheduled);
                            latencies.push(waited.as_micros() as u64);
                        } else {
                            failures.push((
                                "typed_error",
                                format!("connection {index}: server refusal"),
                            ));
                        }
                    }
                    Err(defect) => {
                        kill(
                            &poller,
                            index,
                            conn,
                            &mut failures,
                            &format!("malformed response: {defect}"),
                        );
                        break;
                    }
                }
            }
        }
    }
    let wall = started.elapsed();

    // Close every client socket before asking the server to drain.
    drop(conns);
    drop(poller);
    let server_stats = match local_server {
        Some(server) => {
            let mut client =
                Client::connect(&addr).map_err(|e| format!("stats connection: {e}"))?;
            client.shutdown().map_err(|e| format!("shutdown request: {e}"))?;
            Some(server.join())
        }
        None => None,
    };

    latencies.sort_unstable();
    let ok = latencies.len();
    let throughput = ok as f64 / wall.as_secs_f64();
    let failure_refs: Vec<&(&'static str, String)> = failures.iter().collect();
    let (p50, p90, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
    );

    let mut fields = vec![
        ("bench".to_string(), serde_json::json!("serve_loadgen_async")),
        ("open_loop".to_string(), serde_json::json!(true)),
        ("connections".to_string(), serde_json::json!(opts.connections)),
        ("rate_rps".to_string(), serde_json::json!(rate)),
        ("total_requests".to_string(), serde_json::json!(total)),
        ("failed_requests".to_string(), serde_json::json!(failures.len())),
        ("failures".to_string(), failure_fields(&failure_refs)),
        ("availability".to_string(), serde_json::json!(ok as f64 / total as f64)),
        ("wall_ms".to_string(), serde_json::json!(wall.as_millis() as u64)),
        ("throughput_rps".to_string(), serde_json::json!(throughput)),
        (
            "latency_us".to_string(),
            serde_json::json!({
                "p50": p50,
                "p90": p90,
                "p99": p99,
                "max": latencies.last().copied().unwrap_or(0),
            }),
        ),
        ("p99_budget_us".to_string(), serde_json::json!(P99_BUDGET_US)),
    ];
    if let Some(stats) = server_stats {
        fields.push((
            "server".to_string(),
            serde_json::json!({
                "binary_connections": stats.binary_connections,
                "pipelined_peak": stats.pipelined_peak,
                "batches": stats.batches,
                "batched_jobs": stats.batched_jobs,
                "cache_hits": stats.cache.hits,
                "cache_misses": stats.cache.misses,
                "overloaded": stats.overloaded,
            }),
        ));
    }
    let report = serde_json::Value::Map(fields);
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    let default_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let out_path = opts.out.as_deref().map(Path::new).unwrap_or(&default_out);
    let kept: String = std::fs::read_to_string(out_path)
        .unwrap_or_default()
        .lines()
        .filter(|line| !line.contains("\"bench\":\"serve_loadgen_async\""))
        .map(|line| format!("{line}\n"))
        .collect();
    std::fs::write(out_path, kept + &json + "\n")
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;

    println!(
        "{ok}/{total} ok in {:.2}s ({throughput:.0} req/s achieved vs {rate:.0} offered)   \
         p50 {p50}us  p90 {p90}us  p99 {p99}us",
        wall.as_secs_f64()
    );
    println!("wrote {}", out_path.display());
    for (category, detail) in failures.iter().map(|f| (f.0, &f.1)) {
        eprintln!("FAILED [{category}]: {detail}");
    }
    if !failures.is_empty() {
        return Err(format!("{} of {total} requests failed", failures.len()));
    }
    if p99 > P99_BUDGET_US {
        return Err(format!("open-loop p99 {p99}us exceeds the {P99_BUDGET_US}us budget"));
    }
    Ok(())
}

/// The `--mix` mode: hosts an in-process server (fixture or packed
/// `--snapshot`) and drives the mixed score / suggest / mutate workload,
/// appending a `serve_loadgen_mix` row that replaces only itself.
fn run_mix(opts: &Options) -> Result<(), String> {
    if opts.addr.is_some() {
        return Err("--mix hosts its own server; drop --addr".to_string());
    }
    let mut registry = SnapshotRegistry::new();
    let (group_count, node_count) = match &opts.snapshot {
        Some(path) => {
            registry.load(path, Some("loadgen"))?;
            let snap = registry.get("loadgen").expect("just loaded");
            (snap.groups.len(), snap.graph.node_count())
        }
        None => {
            let data = gplus(opts.scale);
            let counts = (data.groups.len(), data.graph.node_count());
            registry.insert("loadgen", data.graph, data.groups)?;
            counts
        }
    };
    if group_count == 0 || node_count == 0 {
        return Err("the served snapshot needs both groups and nodes for mixed load".to_string());
    }
    let config = ServeConfig { workers: opts.workers, ..ServeConfig::default() };
    let server = Server::start(registry, config, ("127.0.0.1", 0))
        .map_err(|e| format!("starting server: {e}"))?;
    let addr = server.local_addr().to_string();

    println!(
        "loadgen --mix: {} connections x {} requests (score/suggest/mutate) over {} groups, \
         {} nodes at {addr}",
        opts.connections, opts.requests, group_count, node_count
    );
    let started = Instant::now();
    let reports: Vec<MixReport> = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let requests = opts.requests;
        let handles: Vec<_> = (0..opts.connections)
            .map(|conn| {
                scope.spawn(move || {
                    drive_mix(addr, "loadgen", conn, requests, group_count, node_count)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });
    let wall = started.elapsed();

    let collect = |pick: fn(&MixReport) -> &Vec<u64>| -> Vec<u64> {
        let mut all: Vec<u64> = reports.iter().flat_map(|r| pick(r).iter().copied()).collect();
        all.sort_unstable();
        all
    };
    let (score, suggest, mutate) = (
        collect(|r| &r.score_us),
        collect(|r| &r.suggest_us),
        collect(|r| &r.mutate_us),
    );
    let failures: Vec<&(&'static str, String)> = reports.iter().flat_map(|r| &r.failures).collect();
    let total = opts.connections * opts.requests;
    let ok = score.len() + suggest.len() + mutate.len();
    let throughput = ok as f64 / wall.as_secs_f64();

    let mut client = Client::connect(&addr).map_err(|e| format!("stats connection: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown request: {e}"))?;
    let stats = server.join();

    let op_latency = |sorted: &[u64]| {
        serde_json::json!({
            "p50": percentile(sorted, 50.0),
            "p90": percentile(sorted, 90.0),
            "p99": percentile(sorted, 99.0),
            "max": sorted.last().copied().unwrap_or(0),
        })
    };
    let report = serde_json::Value::Map(vec![
        ("bench".to_string(), serde_json::json!("serve_loadgen_mix")),
        ("connections".to_string(), serde_json::json!(opts.connections)),
        ("requests_per_connection".to_string(), serde_json::json!(opts.requests)),
        ("total_requests".to_string(), serde_json::json!(total)),
        ("failed_requests".to_string(), serde_json::json!(failures.len())),
        ("failures".to_string(), failure_fields(&failures)),
        ("availability".to_string(), serde_json::json!(ok as f64 / total as f64)),
        ("wall_ms".to_string(), serde_json::json!(wall.as_millis() as u64)),
        ("throughput_rps".to_string(), serde_json::json!(throughput)),
        (
            "ops".to_string(),
            serde_json::json!({
                "score_group": score.len(),
                "suggest_circles": suggest.len(),
                "apply_mutations": mutate.len(),
            }),
        ),
        (
            "latency_us".to_string(),
            serde_json::Value::Map(vec![
                ("score_group".to_string(), op_latency(&score)),
                ("suggest_circles".to_string(), op_latency(&suggest)),
                ("apply_mutations".to_string(), op_latency(&mutate)),
            ]),
        ),
        (
            "server".to_string(),
            serde_json::json!({
                "batches": stats.batches,
                "batched_jobs": stats.batched_jobs,
                "cache_hits": stats.cache.hits,
                "cache_misses": stats.cache.misses,
                "overloaded": stats.overloaded,
            }),
        ),
    ]);
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    let default_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let out_path = opts.out.as_deref().map(Path::new).unwrap_or(&default_out);
    let kept: String = std::fs::read_to_string(out_path)
        .unwrap_or_default()
        .lines()
        .filter(|line| !line.contains("\"bench\":\"serve_loadgen_mix\""))
        .map(|line| format!("{line}\n"))
        .collect();
    std::fs::write(out_path, kept + &json + "\n")
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;

    println!(
        "{ok}/{total} ok in {:.2}s ({throughput:.0} req/s)   score {}  suggest {}  mutate {}",
        wall.as_secs_f64(),
        score.len(),
        suggest.len(),
        mutate.len()
    );
    println!("wrote {}", out_path.display());
    for (category, detail) in failures.iter().map(|f| (f.0, &f.1)) {
        eprintln!("FAILED [{category}]: {detail}");
    }
    if !failures.is_empty() {
        return Err(format!("{} of {total} requests failed", failures.len()));
    }
    Ok(())
}

/// The `--shards N` drill: the fixture split into `N` halo
/// sub-snapshots behind `N` in-process shard daemons and a coordinator,
/// with the identical workload also driven against a single-node server
/// so the row records the coordinator's scatter-gather overhead. Gates:
/// zero failures and coordinator p99 within [`SHARD_OVERHEAD_BUDGET_US`]
/// of the single-node p99. Writes a `serve_loadgen_shard` row that
/// replaces only itself.
fn run_shards(opts: &Options) -> Result<(), String> {
    const SHARD_OVERHEAD_BUDGET_US: u64 = 50_000;
    if opts.addr.is_some() || opts.snapshot.is_some() {
        return Err("--shards hosts its own cluster; drop --addr/--snapshot".to_string());
    }
    let shard_count = opts.shards.expect("mode guard");
    let shard_count =
        u32::try_from(shard_count).map_err(|_| format!("--shards {shard_count} is too large"))?;
    let dir = std::env::temp_dir().join(format!("circlekit-loadgen-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let data = gplus(opts.scale);
    let group_count = data.groups.len();
    if group_count == 0 {
        return Err("the fixture has no groups to score".to_string());
    }
    let median = circlekit::scoring::Scorer::new(&data.graph).median_degree();

    // Pack and boot the shard fleet, then the coordinator in front.
    let mut shard_servers = Vec::new();
    let mut shard_addrs = Vec::new();
    for index in 0..shard_count {
        let path = dir.join(format!("loadgen.shard{index}.cks"));
        let manifest =
            circlekit::shard::manifest_for(&data.graph, median, 0, shard_count, index);
        let sub = circlekit::shard::shard_graph(&data.graph, shard_count, index);
        circlekit::store::save_shard_snapshot(&path, &sub, &data.groups, &manifest)
            .map_err(|e| format!("packing shard {index}: {e}"))?;
        let mut registry = SnapshotRegistry::new();
        registry.load(&path.to_string_lossy(), None)?;
        let config = ServeConfig { workers: opts.workers, ..ServeConfig::default() };
        let server = Server::start(registry, config, ("127.0.0.1", 0))
            .map_err(|e| format!("starting shard {index}: {e}"))?;
        shard_addrs.push(server.local_addr().to_string());
        shard_servers.push(server);
    }
    let coordinator = Server::start(
        SnapshotRegistry::new(),
        ServeConfig {
            coordinator: Some(circlekit_serve::CoordinatorConfig::new(shard_addrs.clone())),
            ..ServeConfig::default()
        },
        ("127.0.0.1", 0),
    )
    .map_err(|e| format!("starting coordinator: {e}"))?;
    let coord_addr = coordinator.local_addr().to_string();

    // The single-node reference serving the unsplit fixture.
    let mut registry = SnapshotRegistry::new();
    registry.insert("loadgen", data.graph.clone(), data.groups.clone())?;
    let single = Server::start(
        registry,
        ServeConfig { workers: opts.workers, ..ServeConfig::default() },
        ("127.0.0.1", 0),
    )
    .map_err(|e| format!("starting single-node server: {e}"))?;
    let single_addr = single.local_addr().to_string();

    println!(
        "loadgen --shards {shard_count}: {} connections x {} requests over {} groups, \
         coordinator {coord_addr} vs single node {single_addr}",
        opts.connections, opts.requests, group_count
    );
    let drive = |addr: &str| -> (Vec<u64>, Vec<(&'static str, String)>, Duration) {
        let started = Instant::now();
        let reports: Vec<ConnReport> = std::thread::scope(|scope| {
            let requests = opts.requests;
            let handles: Vec<_> = (0..opts.connections)
                .map(|conn| {
                    scope.spawn(move || {
                        drive_connection(addr, "loadgen", conn, requests, group_count)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
        });
        let wall = started.elapsed();
        let mut latencies: Vec<u64> =
            reports.iter().flat_map(|r| r.latencies_us.iter().copied()).collect();
        latencies.sort_unstable();
        let failures = reports.into_iter().flat_map(|r| r.failures).collect();
        (latencies, failures, wall)
    };
    let (single_lat, single_failures, _) = drive(&single_addr);
    let (coord_lat, coord_failures, wall) = drive(&coord_addr);

    for server in shard_servers.into_iter().chain([coordinator, single]) {
        server.shutdown_handle().trigger();
        server.join();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let total = opts.connections * opts.requests;
    let ok = coord_lat.len();
    let throughput = ok as f64 / wall.as_secs_f64();
    let failures: Vec<(&'static str, String)> =
        single_failures.into_iter().chain(coord_failures).collect();
    let failure_refs: Vec<&(&'static str, String)> = failures.iter().collect();
    let (coord_p99, single_p99) = (percentile(&coord_lat, 99.0), percentile(&single_lat, 99.0));
    let overhead_p99 = coord_p99.saturating_sub(single_p99);

    let latency_of = |sorted: &[u64]| {
        serde_json::json!({
            "p50": percentile(sorted, 50.0),
            "p90": percentile(sorted, 90.0),
            "p99": percentile(sorted, 99.0),
            "max": sorted.last().copied().unwrap_or(0),
        })
    };
    let report = serde_json::Value::Map(vec![
        ("bench".to_string(), serde_json::json!("serve_loadgen_shard")),
        ("shards".to_string(), serde_json::json!(shard_count)),
        ("connections".to_string(), serde_json::json!(opts.connections)),
        ("requests_per_connection".to_string(), serde_json::json!(opts.requests)),
        ("total_requests".to_string(), serde_json::json!(total)),
        ("failed_requests".to_string(), serde_json::json!(failures.len())),
        ("failures".to_string(), failure_fields(&failure_refs)),
        ("availability".to_string(), serde_json::json!(ok as f64 / total as f64)),
        ("wall_ms".to_string(), serde_json::json!(wall.as_millis() as u64)),
        ("throughput_rps".to_string(), serde_json::json!(throughput)),
        ("latency_us".to_string(), latency_of(&coord_lat)),
        ("single_node_latency_us".to_string(), latency_of(&single_lat)),
        ("coordinator_overhead_p99_us".to_string(), serde_json::json!(overhead_p99)),
        (
            "coordinator_overhead_budget_us".to_string(),
            serde_json::json!(SHARD_OVERHEAD_BUDGET_US),
        ),
    ]);
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    let default_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let out_path = opts.out.as_deref().map(Path::new).unwrap_or(&default_out);
    let kept: String = std::fs::read_to_string(out_path)
        .unwrap_or_default()
        .lines()
        .filter(|line| !line.contains("\"bench\":\"serve_loadgen_shard\""))
        .map(|line| format!("{line}\n"))
        .collect();
    std::fs::write(out_path, kept + &json + "\n")
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;

    println!(
        "{ok}/{total} ok through the coordinator in {:.2}s ({throughput:.0} req/s)   \
         p99 {coord_p99}us vs single-node {single_p99}us (overhead {overhead_p99}us)",
        wall.as_secs_f64()
    );
    println!("wrote {}", out_path.display());
    for (category, detail) in failure_refs.iter().map(|f| (f.0, &f.1)) {
        eprintln!("FAILED [{category}]: {detail}");
    }
    if !failures.is_empty() {
        return Err(format!("{} of {} requests failed", failures.len(), 2 * total));
    }
    if overhead_p99 > SHARD_OVERHEAD_BUDGET_US {
        return Err(format!(
            "coordinator p99 overhead {overhead_p99}us exceeds the \
             {SHARD_OVERHEAD_BUDGET_US}us budget"
        ));
    }
    Ok(())
}

/// The availability drill: primary + replica over the same packed
/// fixture, failover readers preferring the replica, and a mid-run
/// replica bounce. Appends a `serve_loadgen_failover` row.
fn run_kill_replica(opts: &Options) -> Result<(), String> {
    if opts.addr.is_some() || opts.snapshot.is_some() {
        return Err("--kill-replica hosts its own servers; drop --addr/--snapshot".to_string());
    }
    let dir = std::env::temp_dir().join(format!("circlekit-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let primary_cks = dir.join("primary.cks");
    let replica_cks = dir.join("replica.cks");
    let data = gplus(opts.scale);
    let group_count = data.groups.len();
    if group_count == 0 {
        return Err("the fixture has no groups to score".to_string());
    }
    circlekit::store::save_snapshot(&primary_cks, &data.graph, &data.groups)
        .map_err(|e| format!("packing fixture: {e}"))?;
    // Same bytes → same base CRC, the identity replication checks.
    std::fs::copy(&primary_cks, &replica_cks).map_err(|e| format!("copying fixture: {e}"))?;

    let start_server = |path: &Path, replica_of: Option<String>, listen: (&str, u16)| {
        let mut registry = SnapshotRegistry::new();
        registry.load(&path.to_string_lossy(), Some("loadgen"))?;
        let config = ServeConfig {
            workers: opts.workers,
            replica_of,
            ..ServeConfig::default()
        };
        Server::start(registry, config, listen).map_err(|e| format!("starting server: {e}"))
    };
    let primary = start_server(&primary_cks, None, ("127.0.0.1", 0))?;
    let primary_addr = primary.local_addr().to_string();
    let replica = start_server(&replica_cks, Some(primary_addr.clone()), ("127.0.0.1", 0))?;
    let replica_addr = replica.local_addr().to_string();
    let replica_port = replica.local_addr().port();
    wait_caught_up(&replica_addr)?;

    println!(
        "loadgen --kill-replica: {} connections x {} requests, replica {replica_addr} \
         bouncing, primary {primary_addr}",
        opts.connections, opts.requests
    );
    let endpoints = vec![replica_addr.clone(), primary_addr.clone()];
    let started = Instant::now();
    let (reports, restarted) = std::thread::scope(|scope| {
        let endpoints = &endpoints;
        let snapshot_id = "loadgen";
        let requests = opts.requests;
        let handles: Vec<_> = (0..opts.connections)
            .map(|conn| {
                scope.spawn(move || {
                    drive_failover(endpoints, snapshot_id, conn, requests, group_count)
                })
            })
            .collect();
        // Bounce the replica while the readers run: drain it, then
        // rebind the same port so the failover clients reconnect to it.
        let controller = scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            replica.shutdown_handle().trigger();
            replica.join();
            let listen = ("127.0.0.1", replica_port);
            for _ in 0..100 {
                match start_server(&replica_cks, Some(primary_addr.clone()), listen) {
                    Ok(server) => return Ok(server),
                    Err(_) => std::thread::sleep(Duration::from_millis(50)),
                }
            }
            Err(format!("replica could not rebind 127.0.0.1:{replica_port}"))
        });
        let reports: Vec<ConnReport> =
            handles.into_iter().map(|h| h.join().expect("connection thread")).collect();
        (reports, controller.join().expect("controller thread"))
    });
    let wall = started.elapsed();
    let restarted = restarted?;
    wait_caught_up(&replica_addr)?;

    let mut latencies: Vec<u64> =
        reports.iter().flat_map(|r| r.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let failures: Vec<&(&'static str, String)> = reports.iter().flat_map(|r| &r.failures).collect();
    let total = opts.connections * opts.requests;
    let ok = latencies.len();
    let availability = ok as f64 / total as f64;

    for server in [restarted, primary] {
        server.shutdown_handle().trigger();
        server.join();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let report = serde_json::Value::Map(vec![
        ("bench".to_string(), serde_json::json!("serve_loadgen_failover")),
        ("connections".to_string(), serde_json::json!(opts.connections)),
        ("requests_per_connection".to_string(), serde_json::json!(opts.requests)),
        ("total_requests".to_string(), serde_json::json!(total)),
        ("failed_requests".to_string(), serde_json::json!(failures.len())),
        ("failures".to_string(), failure_fields(&failures)),
        ("availability".to_string(), serde_json::json!(availability)),
        ("replica_bounced".to_string(), serde_json::json!(true)),
        ("wall_ms".to_string(), serde_json::json!(wall.as_millis() as u64)),
        (
            "latency_us".to_string(),
            serde_json::json!({
                "p50": percentile(&latencies, 50.0),
                "p90": percentile(&latencies, 90.0),
                "p99": percentile(&latencies, 99.0),
                "max": latencies.last().copied().unwrap_or(0),
            }),
        ),
    ]);
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    let default_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let out_path = opts.out.as_deref().map(Path::new).unwrap_or(&default_out);
    let mut existing = std::fs::read_to_string(out_path).unwrap_or_default();
    // Drop any stale failover row before appending the fresh one.
    existing = existing
        .lines()
        .filter(|line| !line.contains("\"bench\":\"serve_loadgen_failover\""))
        .map(|line| format!("{line}\n"))
        .collect();
    std::fs::write(out_path, existing + &json + "\n")
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;

    println!(
        "{ok}/{total} ok in {:.2}s, availability {:.4} (replica bounced mid-run)",
        wall.as_secs_f64(),
        availability
    );
    for (category, detail) in failures.iter().map(|f| (f.0, &f.1)) {
        eprintln!("failed [{category}]: {detail}");
    }
    println!("wrote {}", out_path.display());
    if availability < 0.99 {
        return Err(format!("availability {availability:.4} is below the 99% bar"));
    }
    Ok(())
}

/// Polls the replica's `repl_status` until every tracked snapshot
/// reports `caught_up`, or ~10 s pass.
fn wait_caught_up(replica_addr: &str) -> Result<(), String> {
    let wire = circlekit_serve::protocol::wire::get;
    let mut client = Client::connect_with_patience(replica_addr, Duration::from_secs(5))
        .map_err(|e| format!("connecting to replica {replica_addr}: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.repl_status().map_err(|e| e.to_string())?;
        if let Some(serde_json::Value::Seq(entries)) = wire(&status, "replication") {
            let caught_up = !entries.is_empty()
                && entries.iter().all(|entry| {
                    matches!(wire(entry, "caught_up"), Some(serde_json::Value::Bool(true)))
                });
            if caught_up {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("replica {replica_addr} did not catch up within 10s"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
