//! Load generator for `circlekit-serve`.
//!
//! ```text
//! loadgen [--connections N] [--requests N] [--scale F] [--workers N]
//!         [--addr HOST:PORT] [--snapshot FILE.cks] [--out FILE.json]
//! ```
//!
//! Drives `--connections` concurrent clients, each issuing `--requests`
//! group-scoring requests, and writes throughput plus latency
//! percentiles to `BENCH_serve.json` at the repo root (or `--out`).
//! By default the harness starts an in-process server over the seeded
//! synthetic Google+ fixture so the run is self-contained; `--addr`
//! points it at an external daemon instead, and `--snapshot` serves a
//! packed `.cks` file rather than the fixture.
//!
//! The process exits non-zero if *any* request fails — the acceptance
//! bar for the serve subsystem is zero failed requests under ≥ 8
//! concurrent connections.

use circlekit_bench::gplus;
use circlekit_serve::{Client, ServeConfig, Server, SnapshotRegistry};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    connections: usize,
    requests: usize,
    scale: f64,
    workers: usize,
    addr: Option<String>,
    snapshot: Option<String>,
    out: Option<String>,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        connections: 8,
        requests: 50,
        scale: 0.01,
        workers: 2,
        addr: None,
        snapshot: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--connections" => {
                let v = value("--connections")?;
                opts.connections = v.parse().map_err(|_| format!("bad --connections {v:?}"))?;
            }
            "--requests" => {
                let v = value("--requests")?;
                opts.requests = v.parse().map_err(|_| format!("bad --requests {v:?}"))?;
            }
            "--scale" => {
                let v = value("--scale")?;
                opts.scale = v.parse().map_err(|_| format!("bad --scale {v:?}"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--addr" => opts.addr = Some(value("--addr")?),
            "--snapshot" => opts.snapshot = Some(value("--snapshot")?),
            "--out" => opts.out = Some(value("--out")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.connections == 0 || opts.requests == 0 {
        return Err("--connections and --requests must be at least 1".to_string());
    }
    Ok(opts)
}

/// Latency percentile over a sorted sample, by nearest-rank.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct ConnReport {
    latencies_us: Vec<u64>,
    failures: Vec<String>,
}

fn drive_connection(
    addr: &str,
    snapshot: &str,
    conn: usize,
    requests: usize,
    group_count: usize,
) -> ConnReport {
    let mut report = ConnReport { latencies_us: Vec::with_capacity(requests), failures: Vec::new() };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            report.failures.push(format!("connection {conn}: connect: {e}"));
            return report;
        }
    };
    for r in 0..requests {
        // Spread requests over groups and both function sets so the run
        // exercises cache hits, misses, and different batch shapes.
        let group = (conn * 31 + r * 7) % group_count;
        let functions = if r % 3 == 0 { Some("all") } else { None };
        let started = Instant::now();
        match client.score_group(snapshot, group, functions, None) {
            Ok(_) => report.latencies_us.push(started.elapsed().as_micros() as u64),
            Err(e) => report.failures.push(format!("connection {conn}, request {r}: {e}")),
        }
    }
    report
}

/// Asks a running server which snapshot to drive: the first listed one,
/// with its group count from `list_groups`.
fn discover_target(addr: &str) -> Result<(String, usize), String> {
    let mut client = Client::connect_with_patience(addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let listing = client.list_snapshots().map_err(|e| e.to_string())?;
    let wire = circlekit_serve::protocol::wire::get;
    let Some(serde_json::Value::Seq(snapshots)) = wire(&listing, "snapshots") else {
        return Err("list_snapshots response lacks a snapshot array".to_string());
    };
    let Some(first) = snapshots.first() else {
        return Err("the server has no snapshots loaded".to_string());
    };
    let Some(serde_json::Value::Str(id)) = wire(first, "id") else {
        return Err("snapshot entry lacks an id".to_string());
    };
    let groups = client.list_groups(id).map_err(|e| e.to_string())?;
    match wire(&groups, "groups") {
        Some(serde_json::Value::UInt(n)) => Ok((id.clone(), *n as usize)),
        _ => Err("list_groups response lacks a group count".to_string()),
    }
}

fn run() -> Result<(), String> {
    let opts = parse_options()?;

    // Either attach to an external daemon or host one in-process.
    let mut local_server = None;
    let (addr, snapshot_id, group_count) = match &opts.addr {
        Some(addr) => {
            let (id, groups) = discover_target(addr)?;
            (addr.clone(), id, groups)
        }
        None => {
            let mut registry = SnapshotRegistry::new();
            let groups = match &opts.snapshot {
                Some(path) => {
                    registry.load(path, Some("loadgen"))?;
                    registry.get("loadgen").expect("just loaded").groups.len()
                }
                None => {
                    let data = gplus(opts.scale);
                    let groups = data.groups.len();
                    registry.insert("loadgen", data.graph, data.groups)?;
                    groups
                }
            };
            let config = ServeConfig {
                workers: opts.workers,
                ..ServeConfig::default()
            };
            let server = Server::start(registry, config, ("127.0.0.1", 0))
                .map_err(|e| format!("starting server: {e}"))?;
            let addr = server.local_addr().to_string();
            local_server = Some(server);
            (addr, "loadgen".to_string(), groups)
        }
    };
    if group_count == 0 {
        return Err("the served snapshot has no groups to score".to_string());
    }

    println!(
        "loadgen: {} connections x {} requests over {} groups at {addr}",
        opts.connections, opts.requests, group_count
    );
    let started = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let snapshot_id = snapshot_id.as_str();
        let requests = opts.requests;
        let handles: Vec<_> = (0..opts.connections)
            .map(|conn| {
                scope.spawn(move || drive_connection(addr, snapshot_id, conn, requests, group_count))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = reports.iter().flat_map(|r| r.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let failures: Vec<&String> = reports.iter().flat_map(|r| &r.failures).collect();
    let total = opts.connections * opts.requests;
    let ok = latencies.len();
    let throughput = ok as f64 / wall.as_secs_f64();
    let (p50, p90, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
    );

    let server_stats = local_server.map(|server| {
        let mut client = Client::connect(addr).expect("stats connection");
        client.shutdown().expect("shutdown request");
        server.join()
    });

    let mut fields = vec![
        ("bench".to_string(), serde_json::json!("serve_loadgen")),
        ("connections".to_string(), serde_json::json!(opts.connections)),
        ("requests_per_connection".to_string(), serde_json::json!(opts.requests)),
        ("total_requests".to_string(), serde_json::json!(total)),
        ("failed_requests".to_string(), serde_json::json!(failures.len())),
        ("wall_ms".to_string(), serde_json::json!(wall.as_millis() as u64)),
        ("throughput_rps".to_string(), serde_json::json!(throughput)),
        (
            "latency_us".to_string(),
            serde_json::json!({
                "p50": p50,
                "p90": p90,
                "p99": p99,
                "max": latencies.last().copied().unwrap_or(0),
            }),
        ),
    ];
    if let Some(stats) = server_stats {
        fields.push((
            "server".to_string(),
            serde_json::json!({
                "batches": stats.batches,
                "batched_jobs": stats.batched_jobs,
                "max_batch": stats.max_batch,
                "cache_hits": stats.cache.hits,
                "cache_misses": stats.cache.misses,
                "overloaded": stats.overloaded,
            }),
        ));
    }
    let report = serde_json::Value::Map(fields);
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    let default_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let out_path = opts.out.as_deref().map(Path::new).unwrap_or(&default_out);
    std::fs::write(out_path, json + "\n")
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;

    println!(
        "{ok}/{total} ok in {:.2}s ({throughput:.0} req/s)   p50 {p50}us  p90 {p90}us  p99 {p99}us",
        wall.as_secs_f64()
    );
    println!("wrote {}", out_path.display());
    for failure in &failures {
        eprintln!("FAILED: {failure}");
    }
    if !failures.is_empty() {
        return Err(format!("{} of {total} requests failed", failures.len()));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
