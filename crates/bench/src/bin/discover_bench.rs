//! Latency bench for `circlekit-discover`.
//!
//! ```text
//! discover_bench [--runs N] [--out FILE.json]
//! ```
//!
//! Builds one synthetic ego network per degree bucket (~10 / ~100 /
//! ~1000 alters, planted circle structure), runs `discover` over it
//! `--runs` times, and writes one JSON-lines row per bucket to
//! `BENCH_discover.json` at the repo root (or `--out`). Each row carries
//! the median / p90 / max wall time plus the candidate count, so a
//! regression in either speed or output shape shows up in the diff.
//!
//! The fixtures are seeded and the discovery pipeline is deterministic,
//! so `candidates` is stable across runs and machines; only the timings
//! move.

use circlekit::discover::{discover, DiscoverConfig, EgoView};
use circlekit::graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    runs: usize,
    out: Option<String>,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options { runs: 9, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--runs" => {
                let v = value("--runs")?;
                opts.runs = v.parse().map_err(|_| format!("bad --runs {v:?}"))?;
            }
            "--out" => opts.out = Some(value("--out")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.runs == 0 {
        return Err("--runs must be at least 1".to_string());
    }
    Ok(opts)
}

/// Builds an ego network where vertex 0 watches `degree` alters carved
/// into circles of ~`degree/5` members: dense inside each circle, sparse
/// across, the planted structure discovery is meant to recover.
fn ego_fixture(degree: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let circle_size = (degree / 5).max(3);
    let mut edges: Vec<(u32, u32)> = (1..=degree as u32).map(|a| (0, a)).collect();
    for u in 1..=degree as u32 {
        for v in (u + 1)..=degree as u32 {
            let same_circle = (u as usize - 1) / circle_size == (v as usize - 1) / circle_size;
            let p = if same_circle { 0.35 } else { 0.01 };
            if rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(false, edges)
}

fn run() -> Result<(), String> {
    let opts = parse_options()?;
    let mut rows = Vec::new();
    for &degree in &[10usize, 100, 1000] {
        let graph = ego_fixture(degree, 2014 + degree as u64);
        let view = EgoView::from_graph(&graph, 0);
        let config = DiscoverConfig::default();
        // Warm-up run also pins the output shape we report.
        let suggestion = discover(&view, &config);
        let mut samples_us: Vec<u64> = (0..opts.runs)
            .map(|_| {
                let started = Instant::now();
                let again = discover(&view, &config);
                assert_eq!(again, suggestion, "discovery must be deterministic");
                started.elapsed().as_micros() as u64
            })
            .collect();
        samples_us.sort_unstable();
        let pick = |p: f64| samples_us[((p * (samples_us.len() - 1) as f64).round()) as usize];
        let row = serde_json::json!({
            "bench": "discover_suggest",
            "ego_degree": degree,
            "alters": view.alters.len(),
            "local_edges": view.local.edge_count(),
            "candidates": suggestion.candidates.len(),
            "runs": opts.runs,
            "median_us": pick(0.5),
            "p90_us": pick(0.9),
            "max_us": *samples_us.last().expect("runs >= 1"),
        });
        println!(
            "degree {degree:>5}: {} candidates, median {}us, p90 {}us",
            suggestion.candidates.len(),
            pick(0.5),
            pick(0.9)
        );
        rows.push(serde_json::to_string(&row).map_err(|e| e.to_string())?);
    }

    let default_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_discover.json");
    let out_path = opts.out.as_deref().map(Path::new).unwrap_or(&default_out);
    std::fs::write(out_path, rows.join("\n") + "\n")
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!("wrote {}", out_path.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("discover_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
