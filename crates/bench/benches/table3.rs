//! Table III: data-set summary rows (including generation cost, which
//! dominates the pipeline at paper scale).

use circlekit::experiments::summarize_datasets;
use circlekit::synth::presets;
use circlekit_bench::{gplus, livejournal, orkut, twitter, BENCH_SCALE, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);

    group.bench_function("generate_google_plus", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(presets::google_plus().scaled(BENCH_SCALE).generate(&mut rng))
        })
    });
    group.bench_function("generate_livejournal", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(presets::livejournal().scaled(0.001).generate(&mut rng))
        })
    });

    let datasets = [
        gplus(BENCH_SCALE),
        twitter(BENCH_SCALE),
        livejournal(0.001),
        orkut(0.001),
    ];
    let refs: Vec<_> = datasets.iter().collect();
    group.bench_function("summarize_four_datasets", |b| {
        b.iter(|| black_box(summarize_datasets(black_box(&refs))))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
