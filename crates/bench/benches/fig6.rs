//! Figure 6: the four scoring functions across circle-type and
//! community-type data sets.

use circlekit::experiments::compare_datasets;
use circlekit_bench::{gplus, livejournal, orkut, twitter, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let datasets = [
        gplus(BENCH_SCALE),
        twitter(BENCH_SCALE),
        livejournal(0.001),
        orkut(0.001),
    ];
    let refs: Vec<_> = datasets.iter().collect();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("compare_four_datasets", |b| {
        b.iter(|| black_box(compare_datasets(black_box(&refs))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
