//! Paper-scale CKS2 gate: generate, pack, and score a 10M+-arc graph
//! end-to-end, proving the three tentpole claims with numbers:
//!
//! * the **streaming packer** builds the snapshot from the raw edge-list
//!   file in bounded memory (external sort; peak RSS recorded);
//! * **CKS2 is measurably smaller** than the CKS1 pack of the same data;
//! * **mmap-paged scoring** over the compressed file is bit-identical to
//!   the offline scorer over the materialised graph.
//!
//! The run appends a `store_scale` row to `BENCH_store.json` (JSONL; the
//! `ingest_vs_snapshot` row is preserved), so the full-scale trajectory
//! is tracked as numbers, not claims.
//!
//! Defaults write ~12M arcs; tune with
//! `cargo bench --bench store_scale -- --arcs N --nodes N --budget-mb N`.

use circlekit::graph::{parse_edge_list, Graph, VertexSet};
use circlekit::scoring::{PagedScorer, Scorer, ScoringFunction};
use circlekit::store::{
    save_snapshot, stream_pack_cks2, MappedSnapshot, StreamPackOptions,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::Instant;

struct Config {
    arcs: u64,
    nodes: u32,
    groups: usize,
    budget_mb: usize,
    seed: u64,
}

impl Config {
    /// Reads `--arcs/--nodes/--groups/--budget-mb/--seed`, ignoring the
    /// harness flags cargo-bench forwards (`--bench`, filters, ...).
    fn from_args() -> Config {
        let mut cfg = Config {
            arcs: 12_000_000,
            nodes: 250_000,
            groups: 32,
            budget_mb: 64,
            seed: 2014,
        };
        let args: Vec<String> = std::env::args().collect();
        for pair in args.windows(2) {
            let (flag, value) = (pair[0].as_str(), pair[1].as_str());
            match flag {
                "--arcs" => cfg.arcs = value.parse().expect("--arcs"),
                "--nodes" => cfg.nodes = value.parse().expect("--nodes"),
                "--groups" => cfg.groups = value.parse().expect("--groups"),
                "--budget-mb" => cfg.budget_mb = value.parse().expect("--budget-mb"),
                "--seed" => cfg.seed = value.parse().expect("--seed"),
                _ => {}
            }
        }
        cfg
    }
}

/// Streams a deterministic directed edge list to disk without ever
/// materialising it: skewed sources (hubs), uniform targets — enough
/// structure for the degree relabelling to have real work to do.
fn generate_edge_file(path: &Path, cfg: &Config) -> u64 {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut w = BufWriter::with_capacity(1 << 20, fs::File::create(path).expect("create edges"));
    let n = cfg.nodes as u64;
    let mut lines = 0u64;
    while lines < cfg.arcs {
        // Square a uniform draw to skew sources toward small ids.
        let r = rng.gen::<u64>() % (n * n);
        let u = (r as f64).sqrt() as u64 % n;
        let v = rng.gen::<u64>() % n;
        if u == v {
            continue;
        }
        writeln!(w, "{u} {v}").expect("write edge");
        lines += 1;
    }
    w.flush().expect("flush edges");
    lines
}

/// Deterministic groups: random members, sorted + deduplicated.
fn generate_groups(cfg: &Config) -> Vec<VertexSet> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E37);
    (0..cfg.groups)
        .map(|_| {
            let size = 50 + (rng.gen::<u32>() % 400) as usize;
            let mut members: Vec<u32> =
                (0..size).map(|_| rng.gen::<u32>() % cfg.nodes).collect();
            members.sort_unstable();
            members.dedup();
            VertexSet::from_sorted_unique(members)
        })
        .collect()
}

/// Peak resident set size of this process so far, in MiB (`VmHWM`).
fn peak_rss_mb() -> Option<f64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let cfg = Config::from_args();
    let dir = std::env::temp_dir().join(format!("circlekit-store-scale-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    let edges_path = dir.join("scale.edges");
    let cks2_path = dir.join("scale.cks2");
    let cks1_path = dir.join("scale.cks1");

    eprintln!("generating {} arcs over {} nodes...", cfg.arcs, cfg.nodes);
    let start = Instant::now();
    let lines = generate_edge_file(&edges_path, &cfg);
    let edges_text_bytes = fs::metadata(&edges_path).expect("edges stat").len();
    eprintln!(
        "  {lines} lines, {edges_text_bytes} bytes in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    let groups = generate_groups(&cfg);

    // 1. Streaming pack FIRST, so the recorded peak RSS reflects the
    //    bounded-memory path, not the in-memory baseline below.
    let start = Instant::now();
    let report = stream_pack_cks2(
        &edges_path,
        &groups,
        &cks2_path,
        &StreamPackOptions {
            directed: true,
            memory_budget_bytes: cfg.budget_mb << 20,
            ..StreamPackOptions::default()
        },
    )
    .expect("streaming pack");
    let stream_pack_s = start.elapsed().as_secs_f64();
    let stream_peak_rss_mb = peak_rss_mb();
    eprintln!(
        "  streamed pack: {:.1}s, {} bytes, {} runs spilled, peak RSS {:?} MiB",
        stream_pack_s, report.bytes_written, report.runs_spilled, stream_peak_rss_mb
    );
    assert!(report.edge_count >= 10_000_000, "the gate is a 10M+-arc graph");
    assert!(report.runs_spilled > 0, "the budget must engage the external sort");

    // 2. In-memory CKS1 baseline: full text ingestion + pack.
    let start = Instant::now();
    let text = fs::read_to_string(&edges_path).expect("read edges");
    let edges = parse_edge_list(&text).expect("parse edges");
    let graph = Graph::from_edges(true, edges);
    drop(text);
    let ingest_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let cks1_bytes = save_snapshot(&cks1_path, &graph, &groups).expect("cks1 pack");
    let cks1_pack_s = start.elapsed().as_secs_f64();
    let ratio = report.bytes_written as f64 / cks1_bytes as f64;
    eprintln!(
        "  cks1: ingest {ingest_s:.1}s, pack {cks1_pack_s:.1}s, {cks1_bytes} bytes \
         (cks2/cks1 = {ratio:.3})"
    );
    assert_eq!(graph.edge_count() as u64, report.edge_count, "both paths see the same graph");
    assert!(
        (report.bytes_written as f64) < 0.8 * cks1_bytes as f64,
        "CKS2 must be measurably smaller than CKS1"
    );

    // 3. Paged scoring over the compressed mmap vs the offline scorer.
    let mapped = MappedSnapshot::open(&cks2_path).expect("mmap cks2");
    let view = mapped.view2().expect("cks2 view");
    let paged = view.paged().expect("paged adapter");
    let start = Instant::now();
    let paged_table = PagedScorer::new(&paged)
        .expect("paged median pass")
        .score_table(&ScoringFunction::ALL, &groups)
        .expect("paged scoring");
    let paged_score_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let offline_table = Scorer::new(&graph).score_table(&ScoringFunction::ALL, &groups);
    let offline_score_s = start.elapsed().as_secs_f64();
    for i in 0..offline_table.set_count() {
        let (a, b) = (offline_table.row(i), paged_table.row(i));
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "paged scoring must be bit-identical");
        }
    }
    eprintln!("  scoring: paged {paged_score_s:.1}s vs offline {offline_score_s:.1}s, bit-identical");

    // 4. Append the row, preserving every other bench's line.
    let dataset = serde_json::json!({
        "nodes": report.nodes,
        "arc_lines": lines,
        "edges": report.edge_count,
        "groups": groups.len(),
        "edges_text_bytes": edges_text_bytes,
    });
    let streaming = serde_json::json!({
        "seconds": stream_pack_s,
        "budget_mb": cfg.budget_mb,
        "runs_spilled": report.runs_spilled,
        "peak_rss_mb": stream_peak_rss_mb,
        "duplicates_dropped": report.duplicates_dropped,
        "self_loops_dropped": report.self_loops_dropped,
        "cks2_bytes": report.bytes_written,
        "wide": report.wide,
    });
    let cks1 = serde_json::json!({
        "text_ingest_seconds": ingest_s,
        "pack_seconds": cks1_pack_s,
        "bytes": cks1_bytes,
    });
    let scoring = serde_json::json!({
        "functions": ScoringFunction::ALL.len(),
        "paged_mmap_seconds": paged_score_s,
        "offline_seconds": offline_score_s,
        "bit_identical": true,
    });
    let row = serde_json::json!({
        "bench": "store_scale",
        "dataset": dataset,
        "streaming_pack": streaming,
        "cks1": cks1,
        "cks2_over_cks1_size": ratio,
        "scoring": scoring,
    });
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json");
    let mut lines: Vec<String> = fs::read_to_string(&out_path)
        .unwrap_or_default()
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.contains("\"bench\":\"store_scale\""))
        .map(|l| l.to_string())
        .collect();
    lines.push(serde_json::to_string(&row).expect("row serialises"));
    fs::write(&out_path, lines.join("\n") + "\n").expect("write BENCH_store.json");
    println!("wrote {}", out_path.display());

    let _ = fs::remove_dir_all(&dir);
}
