//! Ablation benches for the design choices DESIGN.md calls out:
//! closed-form vs sampled modularity expectations, random-walk vs uniform
//! baselines, and the full 13-function suite vs the paper's four.

use circlekit::experiments::{circles_vs_random, ModularityMode};
use circlekit::sampling::{size_matched_random_walk_sets, uniform_set};
use circlekit::scoring::{Scorer, ScoringFunction};
use circlekit_bench::{gplus, BENCH_SCALE, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_modularity_modes(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("ablation_modularity");
    group.sample_size(10);
    group.bench_function("closed_form", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(circles_vs_random(&ds, ModularityMode::ClosedForm, &mut rng))
        })
    });
    group.bench_function("sampled_viger_latapy", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(circles_vs_random(
                &ds,
                ModularityMode::Sampled { samples: 2, quality: 1.0 },
                &mut rng,
            ))
        })
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let sizes = ds.group_sizes();
    let mut group = c.benchmark_group("ablation_baseline");
    group.sample_size(10);
    group.bench_function("random_walk_sets", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(size_matched_random_walk_sets(&ds.graph, &sizes, &mut rng))
        })
    });
    group.bench_function("uniform_sets", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            let sets: Vec<_> = sizes
                .iter()
                .map(|&s| uniform_set(&ds.graph, s, &mut rng))
                .collect();
            black_box(sets)
        })
    });
    group.finish();
}

fn bench_function_suites(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("ablation_suite");
    group.sample_size(10);
    group.bench_function("paper_four_functions", |b| {
        b.iter(|| {
            let mut scorer = Scorer::new(&ds.graph);
            black_box(scorer.score_table(&ScoringFunction::PAPER, &ds.groups))
        })
    });
    group.bench_function("full_thirteen_functions", |b| {
        b.iter(|| {
            let mut scorer = Scorer::new(&ds.graph);
            black_box(scorer.score_table(&ScoringFunction::ALL, &ds.groups))
        })
    });
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("ablation_detection");
    group.sample_size(10);
    group.bench_function("louvain", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(circlekit::detect::louvain(&ds.graph, &mut rng))
        })
    });
    group.bench_function("label_propagation", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(circlekit::detect::label_propagation(&ds.graph, 20, &mut rng))
        })
    });
    group.finish();
}

fn bench_parallel_scoring(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    group.bench_function("score_table_sequential", |b| {
        b.iter(|| {
            let mut scorer = Scorer::new(&ds.graph);
            black_box(scorer.score_table(&ScoringFunction::ALL, &ds.groups))
        })
    });
    group.bench_function("score_table_parallel_4", |b| {
        b.iter(|| {
            let scorer = Scorer::new(&ds.graph);
            black_box(scorer.score_table_parallel(&ScoringFunction::ALL, &ds.groups, 4))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_modularity_modes,
    bench_baselines,
    bench_function_suites,
    bench_detection,
    bench_parallel_scoring
);
criterion_main!(benches);
