//! Figure 2: ego-network membership counts and overlap fraction.

use circlekit::experiments::ego_overlap_report;
use circlekit_bench::{gplus, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("ego_overlap_report", |b| {
        b.iter(|| black_box(ego_overlap_report(black_box(&ds))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
