//! Serial vs parallel batch scoring on a ≥1k-set corpus.
//!
//! The batch mirrors the paper's workload shape — thousands of
//! size-matched vertex sets scored against one graph (Figures 5–6) — and
//! compares the sequential `Scorer` against `ParallelScorer` at 1, 2, 4
//! and 8 worker threads. On a single-core host the parallel variants pay
//! only their spawn overhead; the speedup materialises with the core
//! count.

use circlekit::sampling::size_matched_random_walk_sets_seeded;
use circlekit::scoring::{ParallelScorer, Scorer, ScoringFunction};
use circlekit::synth::presets;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_parallel_scoring(c: &mut Criterion) {
    let dataset = presets::google_plus()
        .scaled(0.01)
        .generate(&mut SmallRng::seed_from_u64(2014));
    let graph = &dataset.graph;
    // 1024 size-matched sets: the Figure 5 baseline at paper-like scale.
    let sizes: Vec<usize> = (0..1024).map(|i| 4 + i % 28).collect();
    let sets = size_matched_random_walk_sets_seeded(graph, &sizes, 7);

    let mut group = c.benchmark_group("score_table_1024_sets");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        let mut scorer = Scorer::new(graph);
        b.iter(|| black_box(scorer.score_table(&ScoringFunction::PAPER, black_box(&sets))));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("parallel_{threads}_threads"), |b| {
            let scorer = ParallelScorer::with_threads(graph, threads);
            b.iter(|| black_box(scorer.score_table(&ScoringFunction::PAPER, black_box(&sets))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scoring);
criterion_main!(benches);
