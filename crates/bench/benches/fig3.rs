//! Figure 3: in-degree distribution fitting (log-normal vs power law).

use circlekit::experiments::in_degree_fit;
use circlekit_bench::{gplus, magno, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let ego = gplus(BENCH_SCALE);
    let bfs = magno(0.0002);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("in_degree_fit_ego_crawl", |b| {
        b.iter(|| black_box(in_degree_fit(black_box(&ego))))
    });
    group.bench_function("in_degree_fit_bfs_crawl", |b| {
        b.iter(|| black_box(in_degree_fit(black_box(&bfs))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
