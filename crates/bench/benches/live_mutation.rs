//! Incremental score maintenance vs full rescore.
//!
//! The live subsystem exists so a mutation does not force a from-scratch
//! `score_table` pass: per-group aggregates are maintained in lock-step
//! with each mutation, and the paper's four scores are read back in O(1)
//! per group. This bench measures, at several graph sizes —
//!
//! * `incremental_apply`  one in-memory mutation (edge toggle) through
//!   [`LiveSnapshot::apply`], aggregates maintained for every group,
//!   plus one O(1) score read
//! * `wal_apply`          the same mutation committed durably: CKW1
//!   append + fsync per batch
//! * `full_rescore`       what the offline path pays instead: a fresh
//!   [`Scorer`] (median-degree precompute) and a full PAPER
//!   `score_table` over every group of the materialized graph
//!
//! — and writes the medians to `BENCH_live.json` at the repo root so the
//! per-mutation speedup is tracked as a number, not a claim.

use circlekit::graph::VertexSet;
use circlekit::live::{wal_path_for, LiveSnapshot, Mutation};
use circlekit::scoring::{Scorer, ScoringFunction};
use circlekit::store::save_snapshot;
use circlekit::synth::presets;
use criterion::{black_box, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fs;
use std::path::Path;
use std::time::Instant;

const SCALES: [f64; 3] = [0.01, 0.02, 0.04];

struct Fixture {
    live: LiveSnapshot,
    groups: Vec<VertexSet>,
    nodes: usize,
    edges: usize,
    /// The two appended vertices whose edge the bench toggles: every
    /// timed apply is valid regardless of the generated topology.
    toggle: (u32, u32),
    present: bool,
}

fn build_fixture(scale: f64) -> Fixture {
    let dataset =
        presets::google_plus().scaled(scale).generate(&mut SmallRng::seed_from_u64(2014));
    let nodes = dataset.graph.node_count();
    let edges = dataset.graph.edge_count();
    let mut live = LiveSnapshot::in_memory(dataset.graph, dataset.groups.clone());
    live.apply(&[Mutation::AddVertex, Mutation::AddVertex]).expect("in-memory apply");
    Fixture {
        live,
        groups: dataset.groups,
        nodes,
        edges,
        toggle: (nodes as u32, nodes as u32 + 1),
        present: false,
    }
}

impl Fixture {
    /// Applies one always-valid mutation and reads one group's scores.
    fn step(&mut self) {
        let (u, v) = self.toggle;
        let m = if self.present {
            Mutation::RemoveEdge { u, v }
        } else {
            Mutation::AddEdge { u, v }
        };
        let outcome = self.live.apply(&[m]).expect("apply succeeds");
        assert_eq!(outcome.applied, 1);
        self.present = !self.present;
        black_box(self.live.paper_scores(0));
    }
}

/// The same edge toggle against an on-disk snapshot, so every apply pays
/// the CKW1 append + fsync.
fn build_durable_fixture(scale: f64, dir: &Path) -> Fixture {
    let dataset =
        presets::google_plus().scaled(scale).generate(&mut SmallRng::seed_from_u64(2014));
    let path = dir.join(format!("live_mutation_{scale}.cks"));
    let _ = fs::remove_file(wal_path_for(&path));
    save_snapshot(&path, &dataset.graph, &dataset.groups).expect("pack snapshot");
    let mut live = LiveSnapshot::open(&path).expect("open snapshot");
    live.apply(&[Mutation::AddVertex, Mutation::AddVertex]).expect("durable apply");
    let nodes = dataset.graph.node_count();
    Fixture {
        live,
        groups: dataset.groups,
        nodes,
        edges: dataset.graph.edge_count(),
        toggle: (nodes as u32, nodes as u32 + 1),
        present: false,
    }
}

fn full_rescore(scorer_input: &circlekit::graph::Graph, groups: &[VertexSet]) {
    let mut scorer = Scorer::new(scorer_input);
    black_box(scorer.score_table(&ScoringFunction::PAPER, groups));
}

/// Median wall-clock nanoseconds per call over `samples` timed calls.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f(); // untimed warm-up
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let dir = std::env::temp_dir().join("circlekit-bench-live");
    fs::create_dir_all(&dir).expect("create temp dir");
    let mut criterion = Criterion::default();
    let mut rows = Vec::new();

    for &scale in &SCALES {
        let mut group = criterion.benchmark_group(&format!("live_mutation/{scale}"));
        group.sample_size(10);
        let mut fx = build_fixture(scale);
        group.bench_function("incremental_apply", |b| b.iter(|| fx.step()));
        let graph = fx.live.materialize();
        group.bench_function("full_rescore", |b| b.iter(|| full_rescore(&graph, &fx.groups)));
        group.finish();

        // The compact measurement pass that feeds BENCH_live.json (the
        // vendored criterion stand-in prints but does not export).
        let incremental = median_ns(301, || fx.step());
        let mut durable = build_durable_fixture(scale, &dir);
        let wal = median_ns(101, || durable.step());
        let full = median_ns(11, || full_rescore(&graph, &fx.groups));
        rows.push(serde_json::Value::Map(vec![
            ("preset".to_string(), serde_json::json!("google+")),
            ("scale".to_string(), serde_json::json!(scale)),
            ("nodes".to_string(), serde_json::json!(fx.nodes)),
            ("edges".to_string(), serde_json::json!(fx.edges)),
            ("groups".to_string(), serde_json::json!(fx.groups.len())),
            (
                "median_ns".to_string(),
                serde_json::Value::Map(vec![
                    ("incremental_apply".to_string(), serde_json::json!(incremental)),
                    ("wal_apply".to_string(), serde_json::json!(wal)),
                    ("full_rescore".to_string(), serde_json::json!(full)),
                ]),
            ),
            (
                "speedup_incremental_vs_full".to_string(),
                serde_json::json!(full as f64 / incremental.max(1) as f64),
            ),
        ]));
    }

    let report = serde_json::Value::Map(vec![
        ("bench".to_string(), serde_json::json!("live_mutation")),
        ("rows".to_string(), serde_json::Value::Seq(rows)),
    ]);
    let json = serde_json::to_string(&report).expect("report serialises");
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_live.json");
    fs::write(&out_path, json + "\n").expect("write BENCH_live.json");
    println!("wrote {}", out_path.display());
}
