//! Figure 4: clustering-coefficient CDF.

use circlekit::experiments::clustering_report;
use circlekit_bench::{gplus, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("clustering_report", |b| {
        b.iter(|| black_box(clustering_report(black_box(&ds))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
