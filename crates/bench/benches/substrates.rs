//! Micro-benches of the substrate crates: graph construction, scoring
//! statistics, null-model randomisation, and heavy-tail fitting.

use circlekit::graph::Graph;
use circlekit::nullmodel::{randomize, randomize_connected};
use circlekit::scoring::Scorer;
use circlekit::statfit::analyze_tail;
use circlekit_bench::{gplus, BENCH_SCALE, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let edges: Vec<(u32, u32)> = ds.graph.edges().collect();
    let mut group = c.benchmark_group("substrate_graph");
    group.sample_size(10);
    group.bench_function("csr_build_from_edges", |b| {
        b.iter(|| black_box(Graph::from_edges(true, edges.iter().copied())))
    });
    group.bench_function("to_undirected", |b| {
        b.iter(|| black_box(ds.graph.to_undirected()))
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("substrate_scoring");
    group.sample_size(10);
    group.bench_function("set_stats_all_circles", |b| {
        b.iter(|| {
            let mut scorer = Scorer::new(&ds.graph);
            let stats: Vec<_> = ds.groups.iter().map(|g| scorer.stats(g)).collect();
            black_box(stats)
        })
    });
    group.finish();
}

fn bench_nullmodel(c: &mut Criterion) {
    let ds = gplus(0.002);
    let mut group = c.benchmark_group("substrate_nullmodel");
    group.sample_size(10);
    group.bench_function("edge_swaps_q1", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(randomize(&ds.graph, 1.0, &mut rng))
        })
    });
    group.bench_function("edge_swaps_connected_q1", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(randomize_connected(&ds.graph, 1.0, &mut rng))
        })
    });
    group.finish();
}

fn bench_statfit(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let degrees: Vec<f64> = (0..ds.graph.node_count() as u32)
        .map(|v| ds.graph.in_degree(v) as f64)
        .filter(|&d| d >= 1.0)
        .collect();
    let mut group = c.benchmark_group("substrate_statfit");
    group.sample_size(10);
    group.bench_function("csn_analyze_tail", |b| {
        b.iter(|| black_box(analyze_tail(black_box(&degrees))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_scoring,
    bench_nullmodel,
    bench_statfit
);
criterion_main!(benches);
