//! Figure 5: circles vs size-matched random-walk sets under the four
//! scoring functions.

use circlekit::experiments::{circles_vs_random, ModularityMode};
use circlekit_bench::{gplus, BENCH_SCALE, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let ds = gplus(BENCH_SCALE);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("circles_vs_random_closed_form", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(circles_vs_random(
                black_box(&ds),
                ModularityMode::ClosedForm,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
