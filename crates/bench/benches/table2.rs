//! Table II: statistical comparison of the ego-crawl (McAuley–Leskovec)
//! and BFS-crawl (Magno et al.) data sets.

use circlekit::experiments::characterize;
use circlekit_bench::{gplus, magno, BENCH_SCALE, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let ego_crawl = gplus(BENCH_SCALE);
    let bfs_crawl = magno(0.0002);
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("characterize_ego_crawl", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(characterize(black_box(&ego_crawl), 8, &mut rng))
        })
    });
    group.bench_function("characterize_bfs_crawl", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            black_box(characterize(black_box(&bfs_crawl), 8, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
