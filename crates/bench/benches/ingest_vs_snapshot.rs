//! Text ingestion vs CKS1 snapshot loading.
//!
//! The snapshot store exists to amortise ingestion: text parsing
//! re-tokenises, re-sorts, and re-deduplicates the edge list on every
//! run, while a snapshot stores the finished CSR arrays. This bench
//! measures the same dataset through all four load paths —
//!
//! * `text_ingest`         parse edge list + groups, build the graph
//! * `snapshot_buffered`   portable explicit-LE decode (`load_snapshot`)
//! * `snapshot_mmap_full`  mmap, validate, materialise owned graph+groups
//! * `snapshot_mmap_view`  mmap + zero-copy validation only (no
//!   allocation proportional to the graph; what a driver pays before its
//!   first neighbour query)
//!
//! — and, unlike the other benches, also writes its medians to
//! `BENCH_store.json` at the repo root so the speedup is tracked as a
//! number, not a claim.

use circlekit::graph::{parse_edge_list, parse_groups_with_policy, Graph, IngestPolicy};
use circlekit::store::{load_snapshot, save_snapshot, MappedSnapshot};
use circlekit::synth::presets;
use criterion::{black_box, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Serialised fixture: the same dataset as text files and as a snapshot.
struct Fixture {
    edges_text: String,
    groups_text: String,
    snapshot_path: PathBuf,
    snapshot_bytes: u64,
    nodes: usize,
    edges: usize,
    groups: usize,
}

fn build_fixture() -> Fixture {
    let dataset = presets::google_plus()
        .scaled(0.05)
        .generate(&mut SmallRng::seed_from_u64(2014));

    let mut edges_buf = Vec::new();
    circlekit::graph::write_edge_list(&dataset.graph, &mut edges_buf).expect("serialise edges");
    let mut groups_buf = Vec::new();
    circlekit::graph::write_groups(&dataset.groups, &mut groups_buf).expect("serialise groups");

    let dir = std::env::temp_dir().join("circlekit-bench-store");
    fs::create_dir_all(&dir).expect("create temp dir");
    let snapshot_path = dir.join("ingest_vs_snapshot.cks");
    let snapshot_bytes =
        save_snapshot(&snapshot_path, &dataset.graph, &dataset.groups).expect("pack snapshot");

    Fixture {
        edges_text: String::from_utf8(edges_buf).expect("ascii edge list"),
        groups_text: String::from_utf8(groups_buf).expect("ascii groups"),
        snapshot_path,
        snapshot_bytes,
        nodes: dataset.graph.node_count(),
        edges: dataset.graph.edge_count(),
        groups: dataset.groups.len(),
    }
}

fn text_ingest(fx: &Fixture) -> (Graph, usize) {
    let edges = parse_edge_list(&fx.edges_text).expect("edge list parses");
    let graph = Graph::from_edges(true, edges);
    let (groups, _) =
        parse_groups_with_policy(&fx.groups_text, Some(graph.node_count()), IngestPolicy::FailFast)
            .expect("groups parse");
    let n = groups.len();
    (graph, n)
}

/// Median wall-clock nanoseconds per call over `samples` timed calls.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    // One untimed call to warm caches (and fault the snapshot pages in).
    f();
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn write_report(fx: &Fixture, medians: &[(&str, u64)], out_path: &Path) {
    let text_ns = medians
        .iter()
        .find(|(k, _)| *k == "text_ingest")
        .expect("text baseline present")
        .1;
    let median_obj = serde_json::Value::Map(
        medians.iter().map(|(name, ns)| (name.to_string(), serde_json::json!(ns))).collect(),
    );
    let speedup_obj = serde_json::Value::Map(
        medians
            .iter()
            .filter(|(name, ns)| *name != "text_ingest" && *ns > 0)
            .map(|(name, ns)| {
                (name.to_string(), serde_json::json!(text_ns as f64 / *ns as f64))
            })
            .collect(),
    );
    let dataset_obj = serde_json::json!({
        "preset": "google+",
        "scale": 0.05,
        "nodes": fx.nodes,
        "edges": fx.edges,
        "groups": fx.groups,
        "edges_text_bytes": fx.edges_text.len(),
        "snapshot_bytes": fx.snapshot_bytes,
    });
    let report = serde_json::Value::Map(vec![
        ("bench".to_string(), serde_json::json!("ingest_vs_snapshot")),
        ("dataset".to_string(), dataset_obj),
        ("median_ns".to_string(), median_obj),
        ("speedup_vs_text_ingest".to_string(), speedup_obj),
    ]);
    let json = serde_json::to_string(&report).expect("report serialises");
    fs::write(out_path, json + "\n").expect("write BENCH_store.json");
    println!("wrote {}", out_path.display());
}

fn bench_ingest_vs_snapshot(c: &mut Criterion, fx: &Fixture) {
    let mut group = c.benchmark_group("ingest_vs_snapshot");
    group.sample_size(20);
    group.bench_function("text_ingest", |b| {
        b.iter(|| black_box(text_ingest(fx)));
    });
    group.bench_function("snapshot_buffered", |b| {
        b.iter(|| black_box(load_snapshot(&fx.snapshot_path).expect("buffered load")));
    });
    group.bench_function("snapshot_mmap_full", |b| {
        b.iter(|| {
            let mapped = MappedSnapshot::open(&fx.snapshot_path).expect("mmap open");
            black_box(mapped.load().expect("mmap load"))
        });
    });
    group.bench_function("snapshot_mmap_view", |b| {
        b.iter(|| {
            let mapped = MappedSnapshot::open(&fx.snapshot_path).expect("mmap open");
            black_box(mapped.view().expect("view validates").node_count())
        });
    });
    group.finish();
}

fn main() {
    let fx = build_fixture();
    let mut criterion = Criterion::default();
    bench_ingest_vs_snapshot(&mut criterion, &fx);

    // A second, compact measurement pass feeds BENCH_store.json: the
    // vendored criterion stand-in prints but does not export, and the
    // perf trajectory needs machine-readable numbers.
    let medians: Vec<(&str, u64)> = vec![
        ("text_ingest", median_ns(15, || {
            black_box(text_ingest(&fx));
        })),
        ("snapshot_buffered", median_ns(15, || {
            black_box(load_snapshot(&fx.snapshot_path).expect("buffered load"));
        })),
        ("snapshot_mmap_full", median_ns(15, || {
            let mapped = MappedSnapshot::open(&fx.snapshot_path).expect("mmap open");
            black_box(mapped.load().expect("mmap load"));
        })),
        ("snapshot_mmap_view", median_ns(15, || {
            let mapped = MappedSnapshot::open(&fx.snapshot_path).expect("mmap open");
            black_box(mapped.view().expect("view validates").node_count());
        })),
    ];
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json");
    write_report(&fx, &medians, &out_path);
}
