//! §IV-B robustness check: directed vs undirected scoring deviation.

use circlekit::experiments::directed_vs_undirected;
use circlekit_bench::{gplus, twitter, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_robustness(c: &mut Criterion) {
    let gp = gplus(BENCH_SCALE);
    let tw = twitter(BENCH_SCALE);
    let mut group = c.benchmark_group("robustness");
    group.sample_size(10);
    group.bench_function("directed_vs_undirected_gplus", |b| {
        b.iter(|| black_box(directed_vs_undirected(black_box(&gp))))
    });
    group.bench_function("directed_vs_undirected_twitter", |b| {
        b.iter(|| black_box(directed_vs_undirected(black_box(&tw))))
    });
    group.finish();
}

criterion_group!(benches, bench_robustness);
criterion_main!(benches);
