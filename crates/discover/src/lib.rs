//! Profile-free structural circle discovery over ego networks.
//!
//! The source paper *scores* circles its users curated by hand; its
//! companion paper (McAuley–Leskovec, "Discovering Social Circles in Ego
//! Networks") *infers* them. This crate implements the structural half of
//! that workload on top of the existing stack:
//!
//! * [`EgoView`] extracts the ego-induced subgraph — the ego's
//!   out-neighbours plus every arc among them, folded to an undirected
//!   local graph — from any adjacency backing: an in-memory [`Graph`], any
//!   [`AdjacencyAccess`] implementor (CKS1 [`SnapshotView`], CKS2 paged),
//!   or a live [`DeltaOverlay`] composed over a base snapshot. All three
//!   constructors build the *same* local CSR, so everything downstream is
//!   bit-identical across backings.
//! * [`discover`] runs seeded local clustering: from every local vertex,
//!   greedily grow a community by repeatedly admitting the frontier vertex
//!   that minimises conductance, with overlap allowed (each seed expands
//!   independently). Ties are broken by a per-seed [SplitMix64] stream
//!   derived from `(seed, ego, seed-vertex)`, so results are deterministic
//!   and — because every seed expansion is an independent pure function —
//!   bit-identical at any thread count, matching the `ParallelScorer`
//!   discipline.
//! * Candidates are deduplicated, scored with the paper's
//!   [`SetStats`]-derived functions (conductance, average degree) on the
//!   local subgraph, and ranked by a deterministic total order.
//! * [`best_match_f1`] evaluates suggestions against planted ground-truth
//!   circles with Yang–Leskovec best-match precision/recall/F1.
//! * [`affected_egos`] names exactly which egos' suggestions an edge
//!   mutation can change — the cache-invalidation scope used by the
//!   `suggest_circles` serve op.
//!
//! [`SnapshotView`]: https://docs.rs/ — see `circlekit-store`
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;

pub use eval::{best_match_f1, EvalScores};

use circlekit_graph::{AdjacencyAccess, Graph, GraphBuilder, NodeId, VertexSet};
use circlekit_live::DeltaOverlay;
use circlekit_scoring::{Scorer, ScoringFunction};
use std::collections::BTreeSet;

/// Default root seed (the paper's publication year, like the synth presets).
pub const DEFAULT_SEED: u64 = 2014;
/// Default smallest circle worth suggesting.
pub const DEFAULT_MIN_SIZE: usize = 3;
/// Default number of ranked candidates returned.
pub const DEFAULT_TOP: usize = 10;

/// SplitMix64 (Steele–Lea–Flood): tiny, seedable, and platform-independent.
/// Used only for deterministic tie-breaking; one independent stream per
/// `(root seed, ego, seed vertex)` so chunking order cannot leak into
/// results.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives the per-seed-vertex RNG stream. Mixing the ego and seed vertex
/// through distinct odd multipliers keeps streams independent regardless of
/// how seeds are chunked across threads.
fn stream_seed(root: u64, ego: NodeId, seed_vertex: NodeId) -> u64 {
    root ^ (ego as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (seed_vertex as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)
}

/// Tuning knobs for [`discover`]. Defaults match the CLI and serve op so
/// the three surfaces agree byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoverConfig {
    /// Root seed for the tie-breaking streams.
    pub seed: u64,
    /// Worker threads for seed expansion (results identical at any count).
    pub threads: usize,
    /// Smallest candidate kept (smaller expansions are discarded).
    pub min_size: usize,
    /// Largest community a single expansion may grow to; `0` = unbounded
    /// (the whole ego net).
    pub max_size: usize,
    /// Ranked candidates returned; `0` = all.
    pub top: usize,
}

impl Default for DiscoverConfig {
    fn default() -> DiscoverConfig {
        DiscoverConfig {
            seed: DEFAULT_SEED,
            threads: 1,
            min_size: DEFAULT_MIN_SIZE,
            max_size: 0,
            top: DEFAULT_TOP,
        }
    }
}

/// The ego-induced subgraph of one vertex, extracted once and reused for
/// every seed expansion.
///
/// `alters[i]` is the parent id of local vertex `i`; `local` is the
/// undirected graph induced on the alters (arcs folded, the ego itself
/// excluded — every alter is adjacent to the ego by construction, so
/// keeping it would only blur the circle structure).
#[derive(Debug, Clone)]
pub struct EgoView {
    /// The ego whose neighbourhood this is.
    pub ego: NodeId,
    /// Sorted parent ids of the ego's out-neighbours.
    pub alters: Vec<NodeId>,
    /// Undirected graph induced on the alters, vertices `0..alters.len()`.
    pub local: Graph,
}

impl EgoView {
    /// Extracts the ego view from an in-memory graph.
    pub fn from_graph(graph: &Graph, ego: NodeId) -> EgoView {
        match EgoView::from_access(graph, ego) {
            Ok(view) => view,
            Err(never) => match never {},
        }
    }

    /// Extracts the ego view from any adjacency backing (CKS1 snapshot
    /// view, CKS2 paged reader, in-memory graph).
    pub fn from_access<A: AdjacencyAccess>(access: &A, ego: NodeId) -> Result<EgoView, A::Error> {
        let alters: Vec<NodeId> = access
            .with_out_neighbors(ego, |nbrs| nbrs.iter().copied().filter(|&v| v != ego).collect())?;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (li, &a) in alters.iter().enumerate() {
            access.with_out_neighbors(a, |nbrs| {
                induced_edges(&mut edges, &alters, li, nbrs.iter().copied());
            })?;
        }
        Ok(EgoView::assemble(ego, alters, edges))
    }

    /// Extracts the ego view from a live delta overlay composed over its
    /// base snapshot — the incremental path: no materialisation, adjacency
    /// comes from the overlay's sorted merge iterators.
    pub fn from_overlay(base: &Graph, overlay: &DeltaOverlay, ego: NodeId) -> EgoView {
        let alters: Vec<NodeId> =
            overlay.out_neighbors(base, ego).filter(|&v| v != ego).collect();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (li, &a) in alters.iter().enumerate() {
            induced_edges(&mut edges, &alters, li, overlay.out_neighbors(base, a));
        }
        EgoView::assemble(ego, alters, edges)
    }

    fn assemble(ego: NodeId, alters: Vec<NodeId>, edges: Vec<(NodeId, NodeId)>) -> EgoView {
        let mut builder = GraphBuilder::undirected();
        builder.reserve_nodes(alters.len());
        builder.add_edges(edges);
        EgoView { ego, local: builder.build(), alters }
    }

    /// Maps a set of local vertex ids back to parent ids.
    pub fn to_parent(&self, local: &[NodeId]) -> VertexSet {
        VertexSet::from_vec(local.iter().map(|&l| self.alters[l as usize]).collect())
    }
}

/// Scans `nbrs` (sorted ascending) against `alters` (sorted ascending) and
/// records an induced local edge for every neighbour that is itself an
/// alter. Self-pairs are skipped; reciprocal arcs dedup in the builder.
fn induced_edges(
    edges: &mut Vec<(NodeId, NodeId)>,
    alters: &[NodeId],
    li: usize,
    nbrs: impl Iterator<Item = NodeId>,
) {
    let mut ai = 0usize;
    for b in nbrs {
        while ai < alters.len() && alters[ai] < b {
            ai += 1;
        }
        if ai == alters.len() {
            break;
        }
        if alters[ai] == b && ai != li {
            edges.push((li as NodeId, ai as NodeId));
        }
    }
}

/// One ranked candidate circle.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Members in parent (graph) ids, sorted ascending.
    pub members: VertexSet,
    /// Conductance of the set within the local ego subgraph (lower is
    /// better; primary ranking key).
    pub conductance: f64,
    /// Average internal degree within the local ego subgraph (higher is
    /// better; secondary ranking key).
    pub average_degree: f64,
}

/// The full ranked answer for one ego.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The ego queried.
    pub ego: NodeId,
    /// Root seed the tie-break streams were derived from.
    pub seed: u64,
    /// Number of alters in the ego network.
    pub alters: usize,
    /// Ranked candidate circles, best first.
    pub candidates: Vec<Candidate>,
}

/// Runs seeded conductance expansion over the ego view and returns ranked
/// candidate circles.
///
/// Determinism contract: output is a pure function of
/// `(view, config.seed, config.min_size, config.max_size, config.top)` —
/// `config.threads` never changes the result, only how the independent
/// seed expansions are scheduled.
pub fn discover(view: &EgoView, config: &DiscoverConfig) -> Suggestion {
    let n = view.local.node_count();
    let cap = if config.max_size == 0 { n } else { config.max_size.min(n) };
    let min_size = config.min_size.max(1);

    let mut raw: Vec<Option<Vec<NodeId>>> = Vec::with_capacity(n);
    if n > 0 {
        let seeds: Vec<NodeId> = (0..n as NodeId).collect();
        let threads = config.threads.max(1).min(n);
        if threads <= 1 {
            raw.extend(seeds.iter().map(|&s| expand_seed(view, s, config.seed, min_size, cap)));
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = seeds
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|&s| expand_seed(view, s, config.seed, min_size, cap))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    raw.extend(handle.join().expect("discover worker panicked"));
                }
            });
        }
    }

    let mut distinct: BTreeSet<Vec<NodeId>> = BTreeSet::new();
    for members in raw.into_iter().flatten() {
        distinct.insert(members);
    }

    let median = if n > 0 { Scorer::new(&view.local).median_degree() } else { 0.0 };
    let mut candidates: Vec<Candidate> = distinct
        .into_iter()
        .map(|members| {
            let local_set = VertexSet::from_vec(members.clone());
            let stats =
                circlekit_scoring::SetStats::compute(&view.local, &local_set, median);
            Candidate {
                members: view.to_parent(&members),
                conductance: ScoringFunction::Conductance.score(&stats),
                average_degree: ScoringFunction::AverageDegree.score(&stats),
            }
        })
        .collect();

    candidates.sort_by(|a, b| {
        a.conductance
            .total_cmp(&b.conductance)
            .then_with(|| b.average_degree.total_cmp(&a.average_degree))
            .then_with(|| b.members.len().cmp(&a.members.len()))
            .then_with(|| a.members.as_slice().cmp(b.members.as_slice()))
    });
    if config.top > 0 {
        candidates.truncate(config.top);
    }

    Suggestion { ego: view.ego, seed: config.seed, alters: n, candidates }
}

/// Conductance of a set with boundary `cut` and `m_c` internal edges in an
/// undirected graph: `cut / (2 m_c + cut)`; an isolated singleton scores
/// the worst possible 1.0 so it never beats a connected candidate.
fn conductance_of(cut: u64, m_c: u64) -> f64 {
    let vol = 2 * m_c + cut;
    if vol == 0 {
        return 1.0;
    }
    cut as f64 / vol as f64
}

/// Greedy conductance-minimising expansion from one seed vertex. Pure:
/// depends only on the local graph, the derived RNG stream, and the size
/// bounds — never on scheduling.
fn expand_seed(
    view: &EgoView,
    s: NodeId,
    root_seed: u64,
    min_size: usize,
    cap: usize,
) -> Option<Vec<NodeId>> {
    let local = &view.local;
    let n = local.node_count();
    let mut rng = SplitMix64::new(stream_seed(root_seed, view.ego, s));

    let mut in_set = vec![false; n];
    let mut e_in = vec![0u32; n];
    let mut members: Vec<NodeId> = vec![s];
    in_set[s as usize] = true;
    let mut m_c: u64 = 0;
    let mut cut: u64 = local.out_neighbors(s).len() as u64;
    let mut frontier: Vec<NodeId> = local.out_neighbors(s).to_vec();
    for &w in &frontier {
        e_in[w as usize] = 1;
    }

    let mut ties: Vec<NodeId> = Vec::new();
    while members.len() < cap && !frontier.is_empty() {
        let phi = conductance_of(cut, m_c);
        let mut best_phi = f64::INFINITY;
        let mut best_ein = 0u32;
        ties.clear();
        for &v in &frontier {
            let ein = e_in[v as usize];
            let dv = local.out_neighbors(v).len() as u64;
            let new_m = m_c + ein as u64;
            let new_cut = cut - ein as u64 + (dv - ein as u64);
            let new_phi = conductance_of(new_cut, new_m);
            if new_phi < best_phi || (new_phi == best_phi && ein > best_ein) {
                best_phi = new_phi;
                best_ein = ein;
                ties.clear();
                ties.push(v);
            } else if new_phi == best_phi && ein == best_ein {
                ties.push(v);
            }
        }
        let improves = best_phi < phi;
        let must_grow = members.len() < min_size;
        if !improves && !must_grow {
            break;
        }
        let v = ties[(rng.next_u64() % ties.len() as u64) as usize];
        let ein = e_in[v as usize] as u64;
        let dv = local.out_neighbors(v).len() as u64;
        members.push(v);
        in_set[v as usize] = true;
        m_c += ein;
        cut = cut - ein + (dv - ein);
        if let Ok(pos) = frontier.binary_search(&v) {
            frontier.remove(pos);
        }
        for &w in local.out_neighbors(v) {
            if in_set[w as usize] {
                continue;
            }
            if e_in[w as usize] == 0 {
                if let Err(pos) = frontier.binary_search(&w) {
                    frontier.insert(pos, w);
                }
            }
            e_in[w as usize] += 1;
        }
    }

    if members.len() < min_size {
        return None;
    }
    members.sort_unstable();
    Some(members)
}

/// Canonical text rendering of a suggestion — the *same* function backs the
/// CLI `discover` command and `query suggest-circles`, so the two surfaces
/// are byte-identical (scores cross the wire bit-exactly; see the serve
/// protocol tests).
pub fn render_suggestion(s: &Suggestion) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ego {}  seed {}  alters {}  candidates {}\n",
        s.ego,
        s.seed,
        s.alters,
        s.candidates.len()
    ));
    for (i, c) in s.candidates.iter().enumerate() {
        let members: Vec<String> =
            c.members.as_slice().iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "#{}  size {}  conductance {}  avg-degree {}  members {}\n",
            i + 1,
            c.members.len(),
            fmt_score(c.conductance),
            fmt_score(c.average_degree),
            members.join(" ")
        ));
    }
    out
}

fn fmt_score(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "nan".to_string()
    }
}

/// Egos whose [`EgoView`] an edge mutation `{u, v}` can change: `u` and `v`
/// themselves (their alter sets change), plus every ego that has *both*
/// endpoints as out-neighbours (the induced edge appears/disappears inside
/// its view) — i.e. the intersection of the in-neighbourhoods of `u` and
/// `v` in the composed graph. Sorted ascending. This is the exact
/// per-ego cache-invalidation scope for `suggest_circles`.
pub fn affected_egos(base: &Graph, overlay: &DeltaOverlay, u: NodeId, v: NodeId) -> Vec<NodeId> {
    let n = overlay.node_count() as NodeId;
    let mut out: Vec<NodeId> = Vec::new();
    if u < n && v < n {
        let in_u: Vec<NodeId> = overlay.in_neighbors(base, u).collect();
        let mut ai = 0usize;
        for b in overlay.in_neighbors(base, v) {
            while ai < in_u.len() && in_u[ai] < b {
                ai += 1;
            }
            if ai == in_u.len() {
                break;
            }
            if in_u[ai] == b {
                out.push(b);
            }
        }
    }
    if u < n {
        out.push(u);
    }
    if v < n {
        out.push(v);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_graph::Graph;

    /// Ego 0 pointing at two triangles {1,2,3} and {4,5,6} with a single
    /// bridge 3–4, plus an isolated alter 7.
    fn two_triangle_ego() -> Graph {
        let mut edges = vec![];
        for a in 1..=7u32 {
            edges.push((0, a));
        }
        edges.extend([(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)]);
        Graph::from_edges(true, edges)
    }

    #[test]
    fn ego_view_extracts_induced_subgraph() {
        let g = two_triangle_ego();
        let view = EgoView::from_graph(&g, 0);
        assert_eq!(view.alters, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(view.local.node_count(), 7);
        // 7 induced edges among alters, ego arcs excluded.
        assert_eq!(view.local.edge_count(), 7);
        // Local ids are positions in `alters`: parent 1 -> local 0.
        assert_eq!(view.local.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn discover_finds_planted_triangles() {
        let g = two_triangle_ego();
        let view = EgoView::from_graph(&g, 0);
        let suggestion = discover(&view, &DiscoverConfig::default());
        assert!(!suggestion.candidates.is_empty());
        let sets: Vec<Vec<u32>> = suggestion
            .candidates
            .iter()
            .map(|c| c.members.as_slice().to_vec())
            .collect();
        assert!(sets.contains(&vec![1, 2, 3]), "missing triangle 1-2-3 in {sets:?}");
        assert!(sets.contains(&vec![4, 5, 6]), "missing triangle 4-5-6 in {sets:?}");
    }

    #[test]
    fn thread_count_never_changes_output() {
        let g = two_triangle_ego();
        let view = EgoView::from_graph(&g, 0);
        let base = discover(&view, &DiscoverConfig { threads: 1, ..DiscoverConfig::default() });
        for threads in [2, 3, 8] {
            let other =
                discover(&view, &DiscoverConfig { threads, ..DiscoverConfig::default() });
            assert_eq!(base, other, "threads={threads} diverged");
            assert_eq!(render_suggestion(&base), render_suggestion(&other));
        }
    }

    #[test]
    fn same_seed_same_bytes() {
        let g = two_triangle_ego();
        let view = EgoView::from_graph(&g, 0);
        let config = DiscoverConfig { seed: 99, ..DiscoverConfig::default() };
        let a = render_suggestion(&discover(&view, &config));
        let b = render_suggestion(&discover(&view, &config));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_overlay_matches_from_graph() {
        let g = two_triangle_ego();
        let overlay = DeltaOverlay::new(&g);
        for ego in 0..g.node_count() as NodeId {
            let direct = EgoView::from_graph(&g, ego);
            let via_overlay = EgoView::from_overlay(&g, &overlay, ego);
            assert_eq!(direct.alters, via_overlay.alters);
            let config = DiscoverConfig::default();
            assert_eq!(
                discover(&direct, &config),
                discover(&via_overlay, &config),
                "ego {ego} diverged"
            );
        }
    }

    #[test]
    fn mutated_overlay_matches_materialized() {
        let g = two_triangle_ego();
        let mut overlay = DeltaOverlay::new(&g);
        overlay.add_edge(&g, 2, 5).unwrap();
        overlay.remove_edge(&g, 3, 4).unwrap();
        let materialized = overlay.materialize(&g);
        let config = DiscoverConfig::default();
        for ego in 0..g.node_count() as NodeId {
            let live = discover(&EgoView::from_overlay(&g, &overlay, ego), &config);
            let scratch = discover(&EgoView::from_graph(&materialized, ego), &config);
            assert_eq!(
                render_suggestion(&live),
                render_suggestion(&scratch),
                "ego {ego} diverged"
            );
        }
    }

    #[test]
    fn ego_without_alters_yields_empty_suggestion() {
        let g = Graph::from_edges(true, vec![(1, 2)]);
        let view = EgoView::from_graph(&g, 0);
        let suggestion = discover(&view, &DiscoverConfig::default());
        assert_eq!(suggestion.alters, 0);
        assert!(suggestion.candidates.is_empty());
    }

    #[test]
    fn affected_egos_cover_endpoints_and_shared_watchers() {
        let g = two_triangle_ego();
        let overlay = DeltaOverlay::new(&g);
        // Edge {1,2}: ego 0 sees both as alters; 1 and 2 change themselves.
        assert_eq!(affected_egos(&g, &overlay, 1, 2), vec![0, 1, 2]);
        // Edge {5,6}: ego 0 and fellow triangle member 4 watch both ends.
        assert_eq!(affected_egos(&g, &overlay, 5, 6), vec![0, 4, 5, 6]);
    }

    #[test]
    fn top_truncates_after_deterministic_ranking() {
        let g = two_triangle_ego();
        let view = EgoView::from_graph(&g, 0);
        let all = discover(&view, &DiscoverConfig { top: 0, ..DiscoverConfig::default() });
        let one = discover(&view, &DiscoverConfig { top: 1, ..DiscoverConfig::default() });
        assert_eq!(one.candidates.len(), 1);
        assert_eq!(one.candidates[0], all.candidates[0]);
    }
}
