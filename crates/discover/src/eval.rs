//! Ground-truth evaluation: Yang–Leskovec best-match precision/recall/F1.
//!
//! Given discovered circles and planted ground truth for the *same* ego,
//! every discovered set is matched to its best planted counterpart and
//! vice versa. Precision averages the best per-discovered overlap
//! fraction, recall the best per-planted coverage, and F1 is the balanced
//! average of the two best-match F1 directions — the measure used in
//! "Defining and Evaluating Network Communities based on Ground-truth".

use circlekit_graph::VertexSet;

/// Aggregated best-match quality of one set of discovered circles against
/// planted ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalScores {
    /// Mean over discovered circles of the best `|D ∩ C| / |D|`.
    pub precision: f64,
    /// Mean over planted circles of the best `|D ∩ C| / |C|`.
    pub recall: f64,
    /// Balanced best-match F1: half the discovered-side average best F1
    /// plus half the planted-side average best F1.
    pub f1: f64,
}

impl EvalScores {
    /// Element-wise mean of several evaluations (e.g. one per ego).
    /// Returns zeros for an empty slice.
    pub fn mean(scores: &[EvalScores]) -> EvalScores {
        if scores.is_empty() {
            return EvalScores { precision: 0.0, recall: 0.0, f1: 0.0 };
        }
        let n = scores.len() as f64;
        EvalScores {
            precision: scores.iter().map(|s| s.precision).sum::<f64>() / n,
            recall: scores.iter().map(|s| s.recall).sum::<f64>() / n,
            f1: scores.iter().map(|s| s.f1).sum::<f64>() / n,
        }
    }
}

fn pair_f1(p: f64, r: f64) -> f64 {
    if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    }
}

/// Scores `discovered` against `planted` with best-match averaging. Either
/// side empty yields all-zero scores (nothing can match).
pub fn best_match_f1(discovered: &[VertexSet], planted: &[VertexSet]) -> EvalScores {
    if discovered.is_empty() || planted.is_empty() {
        return EvalScores { precision: 0.0, recall: 0.0, f1: 0.0 };
    }

    let mut precision_sum = 0.0;
    let mut disc_f1_sum = 0.0;
    for d in discovered {
        let mut best_p = 0.0f64;
        let mut best_f = 0.0f64;
        for c in planted {
            let inter = d.intersection(c).len() as f64;
            let p = inter / d.len() as f64;
            let r = inter / c.len() as f64;
            best_p = best_p.max(p);
            best_f = best_f.max(pair_f1(p, r));
        }
        precision_sum += best_p;
        disc_f1_sum += best_f;
    }

    let mut recall_sum = 0.0;
    let mut plant_f1_sum = 0.0;
    for c in planted {
        let mut best_r = 0.0f64;
        let mut best_f = 0.0f64;
        for d in discovered {
            let inter = d.intersection(c).len() as f64;
            let p = inter / d.len() as f64;
            let r = inter / c.len() as f64;
            best_r = best_r.max(r);
            best_f = best_f.max(pair_f1(p, r));
        }
        recall_sum += best_r;
        plant_f1_sum += best_f;
    }

    let nd = discovered.len() as f64;
    let nc = planted.len() as f64;
    EvalScores {
        precision: precision_sum / nd,
        recall: recall_sum / nc,
        f1: 0.5 * (disc_f1_sum / nd + plant_f1_sum / nc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> VertexSet {
        VertexSet::from_vec(v.to_vec())
    }

    #[test]
    fn perfect_match_scores_one() {
        let truth = vec![set(&[1, 2, 3]), set(&[4, 5, 6])];
        let scores = best_match_f1(&truth, &truth);
        assert_eq!(scores.precision, 1.0);
        assert_eq!(scores.recall, 1.0);
        assert_eq!(scores.f1, 1.0);
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let scores = best_match_f1(&[set(&[1, 2])], &[set(&[3, 4])]);
        assert_eq!(scores.precision, 0.0);
        assert_eq!(scores.recall, 0.0);
        assert_eq!(scores.f1, 0.0);
    }

    #[test]
    fn empty_sides_score_zero() {
        assert_eq!(best_match_f1(&[], &[set(&[1])]).f1, 0.0);
        assert_eq!(best_match_f1(&[set(&[1])], &[]).f1, 0.0);
    }

    #[test]
    fn partial_overlap_is_between() {
        // Discovered {1,2,3,4} vs planted {1,2}: p = 0.5, r = 1.0.
        let scores = best_match_f1(&[set(&[1, 2, 3, 4])], &[set(&[1, 2])]);
        assert_eq!(scores.precision, 0.5);
        assert_eq!(scores.recall, 1.0);
        let f = 2.0 * 0.5 * 1.0 / 1.5;
        assert!((scores.f1 - f).abs() < 1e-12);
    }

    #[test]
    fn mean_averages_elementwise() {
        let a = EvalScores { precision: 1.0, recall: 0.5, f1: 0.75 };
        let b = EvalScores { precision: 0.0, recall: 0.5, f1: 0.25 };
        let m = EvalScores::mean(&[a, b]);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f1, 0.5);
    }
}
