//! Property: incremental discovery over a live [`DeltaOverlay`] is
//! bit-identical to from-scratch discovery on the materialized graph,
//! after *any* history of mutations — the contract that lets the serve
//! layer answer `suggest_circles` straight off the overlay without ever
//! materializing.

use circlekit_discover::{discover, render_suggestion, DiscoverConfig, EgoView};
use circlekit_graph::{Graph, NodeId};
use circlekit_live::DeltaOverlay;
use proptest::prelude::*;

const VERTS: u32 = 12;

#[derive(Debug, Clone)]
enum Op {
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
    AddVertex,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0..VERTS, 0..VERTS).prop_map(|(kind, u, v)| match kind {
        0..=3 => Op::AddEdge(u, v),
        4..=6 => Op::RemoveEdge(u, v),
        _ => Op::AddVertex,
    })
}

fn base_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..VERTS, 0..VERTS), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn overlay_suggestions_match_materialized(
        base_edges in base_strategy(),
        history in proptest::collection::vec(op_strategy(), 0..30),
        directed in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let base = Graph::from_edges(directed, base_edges);
        let mut overlay = DeltaOverlay::new(&base);
        for op in &history {
            // Individual mutations may be rejected (duplicate edge,
            // missing edge, self-loop): the property must hold after any
            // *accepted* prefix, so rejections are simply skipped.
            match *op {
                Op::AddEdge(u, v) => {
                    let n = overlay.node_count() as u32;
                    let _ = overlay.add_edge(&base, u % n.max(1), v % n.max(1));
                }
                Op::RemoveEdge(u, v) => {
                    let n = overlay.node_count() as u32;
                    let _ = overlay.remove_edge(&base, u % n.max(1), v % n.max(1));
                }
                Op::AddVertex => {
                    overlay.add_vertex();
                }
            }
        }

        let materialized = overlay.materialize(&base);
        prop_assert_eq!(materialized.node_count(), overlay.node_count());

        let config = DiscoverConfig { seed, ..DiscoverConfig::default() };
        for ego in 0..overlay.node_count() as NodeId {
            let live_view = EgoView::from_overlay(&base, &overlay, ego);
            let scratch_view = EgoView::from_graph(&materialized, ego);
            prop_assert_eq!(&live_view.alters, &scratch_view.alters, "ego {} alters", ego);

            let live = discover(&live_view, &config);
            let scratch = discover(&scratch_view, &config);
            prop_assert_eq!(&live, &scratch, "ego {} suggestion", ego);
            prop_assert_eq!(
                render_suggestion(&live),
                render_suggestion(&scratch),
                "ego {} rendering", ego
            );

            // Thread count is scheduling, never output.
            let threaded = discover(&live_view, &DiscoverConfig { threads: 4, ..config.clone() });
            prop_assert_eq!(&live, &threaded, "ego {} thread invariance", ego);
        }
    }
}
