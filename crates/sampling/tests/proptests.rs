//! Property tests for the samplers: exact sizes, valid ids, and
//! graph-structure adherence for any input graph.

use circlekit_graph::{Graph, GraphBuilder};
use circlekit_sampling::{
    bfs_crawl, ego_crawl, forest_fire_set, random_walk_set, size_matched_random_walk_sets,
    uniform_set,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const MAX_NODE: u32 = 30;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (
        prop::collection::vec((0..MAX_NODE, 0..MAX_NODE), 0..120),
        any::<bool>(),
    )
        .prop_map(|(edges, directed)| {
            let mut b = if directed {
                GraphBuilder::directed()
            } else {
                GraphBuilder::undirected()
            };
            b.add_edges(edges).reserve_nodes(MAX_NODE as usize);
            b.build()
        })
}

proptest! {
    #[test]
    fn all_samplers_produce_exact_clamped_sizes(
        g in arbitrary_graph(),
        size in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let expect = size.min(g.node_count());
        prop_assert_eq!(random_walk_set(&g, size, &mut rng).len(), expect);
        prop_assert_eq!(uniform_set(&g, size, &mut rng).len(), expect);
        prop_assert_eq!(forest_fire_set(&g, size, 0.6, &mut rng).len(), expect);
    }

    #[test]
    fn sampled_ids_are_valid(g in arbitrary_graph(), size in 1usize..20, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = g.node_count() as u32;
        for set in [
            random_walk_set(&g, size, &mut rng),
            uniform_set(&g, size, &mut rng),
            forest_fire_set(&g, size, 0.4, &mut rng),
        ] {
            prop_assert!(set.iter().all(|v| v < n));
        }
    }

    #[test]
    fn bfs_crawl_is_connected_per_construction(g in arbitrary_graph(), limit in 1usize..25, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let start = (rng.next_u32() % MAX_NODE).min(g.node_count() as u32 - 1);
        use rand::RngCore;
        let set = bfs_crawl(&g, start, limit);
        prop_assert!(set.contains(start));
        prop_assert!(set.len() <= limit);
        // Every crawled vertex is reachable from start within the crawl's
        // undirected view of the full graph.
        let reach = circlekit_graph::bfs_reachable(&g, start, circlekit_graph::Direction::Both);
        prop_assert_eq!(set.intersection(&reach).len(), set.len());
    }

    #[test]
    fn ego_crawl_covers_owner_neighbourhoods(g in arbitrary_graph(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::RngCore;
        if g.node_count() == 0 {
            return Ok(());
        }
        let owners: Vec<u32> = (0..3)
            .map(|_| rng.next_u32() % g.node_count() as u32)
            .collect();
        let set = ego_crawl(&g, &owners);
        for &o in &owners {
            prop_assert!(set.contains(o));
            for &w in g.out_neighbors(o) {
                prop_assert!(set.contains(w));
            }
        }
    }

    #[test]
    fn size_matched_sets_respect_each_size(g in arbitrary_graph(), sizes in prop::collection::vec(0usize..15, 0..8), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        if g.node_count() == 0 {
            return Ok(());
        }
        let sets = size_matched_random_walk_sets(&g, &sizes, &mut rng);
        prop_assert_eq!(sets.len(), sizes.len());
        for (set, &s) in sets.iter().zip(&sizes) {
            prop_assert_eq!(set.len(), s.min(g.node_count()));
        }
    }
}
