//! Graph samplers.
//!
//! §V-A of *"Are Circles Communities?"* builds its baseline by comparing
//! circles against "randomly selected sets from the graph with the same
//! size as the circles", sampled "by performing random walks on the graph
//! … restarted whenever no new neighbour is available". [`random_walk_set`]
//! implements exactly that procedure; [`uniform_set`] is the ablation
//! alternative, and the crawl samplers reproduce the two crawl strategies
//! the paper contrasts in Table II (ego-crawl vs BFS).
//!
//! ```
//! use circlekit_graph::Graph;
//! use circlekit_sampling::random_walk_set;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let g = Graph::from_edges(false, (0..50u32).map(|i| (i, (i + 1) % 50)));
//! let mut rng = SmallRng::seed_from_u64(1);
//! let set = random_walk_set(&g, 10, &mut rng);
//! assert_eq!(set.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circlekit_graph::{Direction, Graph, Interrupted, NodeId, RunControl, VertexSet};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Fault-injection hooks for the robustness test-suite: stall a chosen
/// walk for a finite duration, long enough for a soft deadline to expire
/// at the next cooperative checkpoint. Compiled only under
/// `--features fault-inject`.
#[cfg(feature = "fault-inject")]
pub mod fault {
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    /// Walk index armed to stall; `-1` means disarmed.
    static STALL_WALK: AtomicI64 = AtomicI64::new(-1);
    /// How long the armed walk sleeps, in milliseconds.
    static STALL_MILLIS: AtomicU64 = AtomicU64::new(0);

    /// Arms a one-shot stall of `millis` ms before walk `index` runs.
    pub fn arm_walk_stall(index: usize, millis: u64) {
        STALL_MILLIS.store(millis, Ordering::SeqCst);
        STALL_WALK.store(index as i64, Ordering::SeqCst);
    }

    /// Disarms any armed stall. Idempotent; call from test cleanup.
    pub fn disarm() {
        STALL_WALK.store(-1, Ordering::SeqCst);
        STALL_MILLIS.store(0, Ordering::SeqCst);
    }

    /// Sampler-side hook: sleeps once if `index` is armed.
    pub(crate) fn maybe_stall(index: usize) {
        let armed = STALL_WALK.load(Ordering::SeqCst);
        if armed >= 0
            && armed as usize == index
            && STALL_WALK
                .compare_exchange(armed, -1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            std::thread::sleep(std::time::Duration::from_millis(
                STALL_MILLIS.load(Ordering::SeqCst),
            ));
        }
    }
}

/// Samples a vertex set of exactly `size` vertices by random walking
/// (following edges in either orientation), restarting from a fresh random
/// vertex whenever the walk gets stuck — the paper's §V-A baseline
/// procedure.
///
/// The result is clamped to `min(size, node_count)`.
///
/// # Panics
///
/// Panics if the graph has no nodes and `size > 0`.
pub fn random_walk_set<R: Rng + ?Sized>(graph: &Graph, size: usize, rng: &mut R) -> VertexSet {
    let n = graph.node_count();
    let size = size.min(n);
    if size == 0 {
        return VertexSet::new();
    }
    assert!(n > 0, "cannot sample from an empty graph");
    // Pre-shuffled restart order guarantees termination: every restart
    // lands on a vertex not yet in the set.
    let mut restart_order: Vec<NodeId> = (0..n as NodeId).collect();
    restart_order.shuffle(rng);
    let mut restart_cursor = 0usize;
    let mut restart = |set: &VertexSet| -> NodeId {
        while restart_cursor < restart_order.len() {
            let v = restart_order[restart_cursor];
            restart_cursor += 1;
            if !set.contains(v) {
                return v;
            }
        }
        unreachable!("restart requested with every vertex already sampled")
    };

    let mut set = VertexSet::new();
    let mut current = restart(&set);
    set.insert(current);
    while set.len() < size {
        // Collect unvisited neighbours (either orientation — the walk
        // explores the underlying undirected structure).
        let fresh: Vec<NodeId> = graph
            .neighbors(current, Direction::Both)
            .filter(|&v| !set.contains(v))
            .collect();
        if let Some(&next) = fresh.choose(rng) {
            set.insert(next);
            current = next;
        } else {
            // "The walk is restarted whenever no new neighbour is
            // available": jump to a fresh vertex.
            current = restart(&set);
            set.insert(current);
        }
    }
    set
}

/// Samples `size` distinct vertices uniformly at random (the ablation
/// baseline contrasted with [`random_walk_set`]).
///
/// The result is clamped to `min(size, node_count)`.
pub fn uniform_set<R: Rng + ?Sized>(graph: &Graph, size: usize, rng: &mut R) -> VertexSet {
    let n = graph.node_count();
    let size = size.min(n);
    let mut ids: Vec<NodeId> = (0..n as NodeId).collect();
    ids.shuffle(rng);
    ids.truncate(size);
    VertexSet::from_vec(ids)
}

/// Breadth-first crawl from `start`, following out-edges then in-edges as
/// one frontier (the strategy of Magno et al.'s Google+ crawl), stopping
/// once `limit` vertices are collected.
///
/// Returns the crawled vertex set (including `start`).
///
/// # Panics
///
/// Panics if `start >= node_count()`.
pub fn bfs_crawl(graph: &Graph, start: NodeId, limit: usize) -> VertexSet {
    assert!((start as usize) < graph.node_count(), "start out of range");
    let mut set = VertexSet::new();
    if limit == 0 {
        return set;
    }
    let mut queue = VecDeque::new();
    queue.push_back(start);
    set.insert(start);
    while let Some(u) = queue.pop_front() {
        if set.len() >= limit {
            break;
        }
        for v in graph.neighbors(u, Direction::Both) {
            if set.len() >= limit {
                break;
            }
            if set.insert(v) {
                queue.push_back(v);
            }
        }
    }
    set
}

/// Ego crawl: collects the union of the ego networks of `owners` (the
/// McAuley–Leskovec crawl strategy — predefined users plus everyone in
/// their ego networks).
///
/// # Panics
///
/// Panics if an owner id is `>= node_count()`.
pub fn ego_crawl(graph: &Graph, owners: &[NodeId]) -> VertexSet {
    let mut set = VertexSet::new();
    for &owner in owners {
        set = set.union(&graph.ego_network(owner));
    }
    set
}

/// Forest-fire sampling (Leskovec & Faloutsos): from a random ember, burn
/// outward — at each burned node, a geometrically distributed number of
/// unburned neighbours (mean `p / (1 - p)`) catches fire. Restarts from a
/// fresh ember when the fire dies before `size` nodes are burned.
///
/// Forest fires are the classic model of *crawler bias*: they produce
/// samples between the BFS extreme (wide, shallow) and the random-walk
/// extreme (deep, narrow) — the axis on which the paper's Table II
/// contrasts the McAuley and Magno corpora.
///
/// The result is clamped to `min(size, node_count)`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1)`, or if the graph is empty and
/// `size > 0`.
pub fn forest_fire_set<R: Rng + ?Sized>(
    graph: &Graph,
    size: usize,
    p: f64,
    rng: &mut R,
) -> VertexSet {
    assert!((0.0..1.0).contains(&p), "burn probability must be in [0, 1)");
    let n = graph.node_count();
    let size = size.min(n);
    if size == 0 {
        return VertexSet::new();
    }
    assert!(n > 0, "cannot sample from an empty graph");
    let mut burned = VertexSet::new();
    let mut frontier: VecDeque<NodeId> = VecDeque::new();
    while burned.len() < size {
        if frontier.is_empty() {
            // Ignite a fresh random ember.
            let ember = rng.gen_range(0..n) as NodeId;
            if burned.insert(ember) {
                frontier.push_back(ember);
            } else if burned.len() >= n {
                break;
            } else {
                continue;
            }
        }
        let v = frontier.pop_front().expect("non-empty frontier");
        // Geometric number of new burns: keep burning while coin shows p.
        let fresh: Vec<NodeId> = graph
            .neighbors(v, Direction::Both)
            .filter(|&w| !burned.contains(w))
            .collect();
        let mut burn_count = 0usize;
        while burn_count < fresh.len() && rng.gen::<f64>() < p {
            burn_count += 1;
        }
        for &w in fresh.choose_multiple(rng, burn_count) {
            if burned.len() >= size {
                break;
            }
            if burned.insert(w) {
                frontier.push_back(w);
            }
        }
    }
    burned
}

/// Samples one size-matched random-walk set per input set — the exact
/// shape of the paper's Figure 5 baseline ("random sets … with the same
/// size as the circles").
pub fn size_matched_random_walk_sets<R: Rng + ?Sized>(
    graph: &Graph,
    sizes: &[usize],
    rng: &mut R,
) -> Vec<VertexSet> {
    sizes
        .iter()
        .map(|&s| random_walk_set(graph, s, rng))
        .collect()
}

/// Derives the RNG seed of walk `index` from `root_seed` (a SplitMix64
/// finalizer over the pair). Each walk gets its own stream, so the sample
/// for a given `(root_seed, index)` does not depend on which thread — or
/// how many threads — produced it.
fn stream_seed(root_seed: u64, index: u64) -> u64 {
    let mut z = root_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the stream-seeded walk at `index`, firing the fault-injection
/// stall hook first when that build feature is on.
fn seeded_walk(graph: &Graph, size: usize, root_seed: u64, index: u64) -> VertexSet {
    #[cfg(feature = "fault-inject")]
    fault::maybe_stall(index as usize);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(stream_seed(root_seed, index));
    random_walk_set(graph, size, &mut rng)
}

/// Like [`size_matched_random_walk_sets`], but each walk draws from its
/// own RNG stream derived from `root_seed` and the walk's index. This is
/// the sequential reference for
/// [`size_matched_random_walk_sets_parallel`], which produces identical
/// output for every thread count.
pub fn size_matched_random_walk_sets_seeded(
    graph: &Graph,
    sizes: &[usize],
    root_seed: u64,
) -> Vec<VertexSet> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| seeded_walk(graph, s, root_seed, i as u64))
        .collect()
}

/// Samples the size-matched random-walk baseline on `threads` scoped
/// worker threads, one independent chunk of walks per worker.
///
/// Per-walk RNG streams are keyed by `(root_seed, walk index)` alone, so
/// the output is identical to [`size_matched_random_walk_sets_seeded`]
/// regardless of `threads` — parallelism changes wall-clock time, never
/// the sample.
///
/// # Panics
///
/// Panics if `threads == 0`, or if the graph is empty and some size is
/// positive.
pub fn size_matched_random_walk_sets_parallel(
    graph: &Graph,
    sizes: &[usize],
    root_seed: u64,
    threads: usize,
) -> Vec<VertexSet> {
    assert!(threads > 0, "need at least one thread");
    if sizes.is_empty() {
        return Vec::new();
    }
    let chunk_size = sizes.len().div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = sizes
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk_index, chunk)| {
                scope.spawn(move |_| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(offset, &s)| {
                            let index = (chunk_index * chunk_size + offset) as u64;
                            seeded_walk(graph, s, root_seed, index)
                        })
                        .collect::<Vec<VertexSet>>()
                })
            })
            .collect();
        // Joining in spawn order restores input order.
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sampling worker panicked"))
            .collect()
    })
    .expect("sampling scope panicked")
}

/// Cancellable [`size_matched_random_walk_sets_parallel`]: every worker
/// observes `control` before each walk, so a cancel or an elapsed soft
/// deadline stops the whole sample within one walk's work.
///
/// An uninterrupted run returns exactly the sets of the uncontrolled
/// variant — per-walk RNG streams are keyed by `(root_seed, index)`
/// alone, so neither the thread count nor the control change the sample.
///
/// # Errors
///
/// Returns [`Interrupted`] if the run was stopped. Sampled sets feed
/// directly into set scoring where a shortened batch would silently skew
/// the baseline, so no partial sample is returned.
///
/// # Panics
///
/// Panics if `threads == 0`, or if the graph is empty and some size is
/// positive.
pub fn size_matched_random_walk_sets_parallel_with_control(
    graph: &Graph,
    sizes: &[usize],
    root_seed: u64,
    threads: usize,
    control: &RunControl,
) -> Result<Vec<VertexSet>, Interrupted> {
    assert!(threads > 0, "need at least one thread");
    if sizes.is_empty() {
        return Ok(Vec::new());
    }
    let chunk_size = sizes.len().div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = sizes
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk_index, chunk)| {
                scope.spawn(move |_| {
                    let mut out = Vec::with_capacity(chunk.len());
                    for (offset, &s) in chunk.iter().enumerate() {
                        control.check()?;
                        let index = (chunk_index * chunk_size + offset) as u64;
                        out.push(seeded_walk(graph, s, root_seed, index));
                    }
                    Ok::<Vec<VertexSet>, Interrupted>(out)
                })
            })
            .collect();
        let mut sets = Vec::with_capacity(sizes.len());
        let mut interrupted = None;
        for handle in handles {
            match handle.join().expect("sampling worker panicked") {
                Ok(chunk_sets) => sets.extend(chunk_sets),
                Err(why) => interrupted = Some(interrupted.unwrap_or(why)),
            }
        }
        match interrupted {
            Some(why) => Err(why),
            None => Ok(sets),
        }
    })
    .expect("sampling scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ring(n: u32) -> Graph {
        Graph::from_edges(false, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn random_walk_set_has_exact_size() {
        let g = ring(100);
        let mut rng = SmallRng::seed_from_u64(1);
        for size in [1usize, 5, 50, 100] {
            assert_eq!(random_walk_set(&g, size, &mut rng).len(), size);
        }
    }

    #[test]
    fn random_walk_set_clamps_to_node_count() {
        let g = ring(10);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(random_walk_set(&g, 500, &mut rng).len(), 10);
    }

    #[test]
    fn random_walk_on_connected_graph_is_mostly_connected() {
        // On a ring, a never-restarting walk collects a contiguous arc, so
        // the induced subgraph has size-1 edges.
        let g = ring(200);
        let mut rng = SmallRng::seed_from_u64(3);
        let set = random_walk_set(&g, 30, &mut rng);
        let sub = g.subgraph(&set).unwrap();
        assert!(sub.graph().edge_count() >= 25, "walk should follow edges");
    }

    #[test]
    fn random_walk_handles_edgeless_graph() {
        let mut b = circlekit_graph::GraphBuilder::undirected();
        b.reserve_nodes(20);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(4);
        let set = random_walk_set(&g, 7, &mut rng);
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn random_walk_zero_size() {
        let g = ring(5);
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(random_walk_set(&g, 0, &mut rng).is_empty());
    }

    #[test]
    fn uniform_set_sizes_and_distinctness() {
        let g = ring(50);
        let mut rng = SmallRng::seed_from_u64(6);
        let set = uniform_set(&g, 20, &mut rng);
        assert_eq!(set.len(), 20);
        assert_eq!(uniform_set(&g, 500, &mut rng).len(), 50);
    }

    #[test]
    fn bfs_crawl_collects_ball() {
        let g = ring(100);
        let set = bfs_crawl(&g, 0, 11);
        assert_eq!(set.len(), 11);
        // A BFS ball on the ring is the contiguous window around 0.
        for v in [0u32, 1, 2, 3, 4, 5, 95, 96, 97, 98, 99] {
            assert!(set.contains(v), "missing {v}");
        }
    }

    #[test]
    fn bfs_crawl_respects_component_boundary() {
        let g = Graph::from_edges(false, [(0u32, 1u32), (1, 2), (5, 6)]);
        let set = bfs_crawl(&g, 0, 100);
        assert_eq!(set.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn bfs_crawl_directed_uses_both_orientations() {
        let g = Graph::from_edges(true, [(1u32, 0u32), (1, 2)]);
        let set = bfs_crawl(&g, 0, 3);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn ego_crawl_unions_ego_networks() {
        let g = Graph::from_edges(true, [(0u32, 1u32), (0, 2), (3, 4), (3, 1)]);
        let set = ego_crawl(&g, &[0, 3]);
        assert_eq!(set.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn forest_fire_exact_size_and_clamping() {
        let g = ring(80);
        let mut rng = SmallRng::seed_from_u64(8);
        for size in [1usize, 10, 40] {
            assert_eq!(forest_fire_set(&g, size, 0.5, &mut rng).len(), size);
        }
        assert_eq!(forest_fire_set(&g, 500, 0.5, &mut rng).len(), 80);
        assert!(forest_fire_set(&g, 0, 0.5, &mut rng).is_empty());
    }

    #[test]
    fn forest_fire_survives_edgeless_graph() {
        let mut b = circlekit_graph::GraphBuilder::undirected();
        b.reserve_nodes(10);
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(forest_fire_set(&g, 4, 0.7, &mut rng).len(), 4);
    }

    #[test]
    fn forest_fire_zero_p_degenerates_to_uniform_embers() {
        // p = 0 never spreads: every burned node is a fresh ember.
        let g = ring(50);
        let mut rng = SmallRng::seed_from_u64(10);
        let set = forest_fire_set(&g, 20, 0.0, &mut rng);
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn forest_fire_high_p_burns_locally() {
        // With aggressive spread the burned set is largely connected.
        let g = ring(200);
        let mut rng = SmallRng::seed_from_u64(11);
        let set = forest_fire_set(&g, 30, 0.9, &mut rng);
        let sub = g.subgraph(&set).unwrap();
        let cc = circlekit_graph::connected_components(sub.graph());
        assert!(cc.component_count() <= 6, "{} components", cc.component_count());
    }

    #[test]
    #[should_panic(expected = "burn probability")]
    fn forest_fire_rejects_p_one() {
        let g = ring(5);
        let mut rng = SmallRng::seed_from_u64(12);
        forest_fire_set(&g, 3, 1.0, &mut rng);
    }

    #[test]
    fn size_matched_sets_match_sizes() {
        let g = ring(60);
        let mut rng = SmallRng::seed_from_u64(7);
        let sizes = [3usize, 10, 25];
        let sets = size_matched_random_walk_sets(&g, &sizes, &mut rng);
        assert_eq!(sets.len(), 3);
        for (set, &s) in sets.iter().zip(&sizes) {
            assert_eq!(set.len(), s);
        }
    }

    #[test]
    fn seeded_sets_are_reproducible_and_size_matched() {
        let g = ring(60);
        let sizes = [3usize, 10, 25, 0, 60];
        let a = size_matched_random_walk_sets_seeded(&g, &sizes, 99);
        let b = size_matched_random_walk_sets_seeded(&g, &sizes, 99);
        assert_eq!(a, b);
        for (set, &s) in a.iter().zip(&sizes) {
            assert_eq!(set.len(), s.min(60));
        }
        // A different root seed gives a different sample.
        let c = size_matched_random_walk_sets_seeded(&g, &sizes, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_sets_invariant_to_thread_count() {
        let g = ring(80);
        let sizes: Vec<usize> = (0..37).map(|i| 1 + i % 12).collect();
        let reference = size_matched_random_walk_sets_seeded(&g, &sizes, 7);
        for threads in [1usize, 2, 3, 8, 64] {
            let got = size_matched_random_walk_sets_parallel(&g, &sizes, 7, threads);
            assert_eq!(reference, got, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sets_empty_batch() {
        let g = ring(10);
        assert!(size_matched_random_walk_sets_parallel(&g, &[], 1, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn parallel_sets_reject_zero_threads() {
        let g = ring(10);
        size_matched_random_walk_sets_parallel(&g, &[3], 1, 0);
    }

    #[test]
    fn controlled_sampler_matches_uncontrolled_when_uninterrupted() {
        let g = ring(80);
        let sizes: Vec<usize> = (0..23).map(|i| 1 + i % 9).collect();
        let reference = size_matched_random_walk_sets_seeded(&g, &sizes, 7);
        for threads in [1usize, 3, 8] {
            let got = size_matched_random_walk_sets_parallel_with_control(
                &g,
                &sizes,
                7,
                threads,
                &RunControl::new(),
            )
            .unwrap();
            assert_eq!(reference, got, "threads={threads}");
        }
        assert!(size_matched_random_walk_sets_parallel_with_control(
            &g,
            &[],
            7,
            4,
            &RunControl::new()
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn controlled_sampler_stops_on_cancel() {
        let g = ring(20);
        let control = RunControl::new();
        control.cancel_flag().cancel();
        assert_eq!(
            size_matched_random_walk_sets_parallel_with_control(&g, &[3, 4], 1, 2, &control),
            Err(Interrupted::Cancelled)
        );
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(stream_seed(2014, i)), "collision at index {i}");
        }
    }
}
