//! Seeded synthetic data sets for the `circlekit` reproduction.
//!
//! The original corpora (McAuley–Leskovec `gplus`/`twitter`, Yang–Leskovec
//! `com-LiveJournal`/`com-Orkut`, and Magno et al.'s full crawl) are not
//! redistributable here, so this crate generates graphs that reproduce the
//! *crawl geometry* each study relied on — the property the paper's
//! findings actually hinge on:
//!
//! * [`EgoCircleConfig`] — overlapping, dense ego networks around a small
//!   set of owners, with owner-curated circles inside them and log-normal
//!   attractiveness weights (Google+/Twitter; §IV-A, Figures 1–3),
//! * [`CommunityGraphConfig`] — an Affiliation-Graph-Model-style planted
//!   community graph over a sparse background (LiveJournal/Orkut; the
//!   comparison class of Figure 6),
//! * [`BfsCrawlConfig`] — a power-law directed configuration model sampled
//!   by BFS (the Magno et al. column of Table II).
//!
//! All generators are deterministic given an RNG; the [`presets`] module
//! carries the paper-scale parameterisations with a
//! [`scaled`](EgoCircleConfig::scaled) knob for laptop-sized runs.
//!
//! ```
//! use circlekit_synth::presets;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(2014);
//! let dataset = presets::google_plus().scaled(0.01).generate(&mut rng);
//! assert!(dataset.graph.is_directed());
//! assert!(!dataset.groups.is_empty());     // the circles
//! assert!(!dataset.egos.is_empty());       // the ego networks
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod communities;
mod crawl;
mod dataset;
mod degrees;
mod ego_circles;

pub use communities::CommunityGraphConfig;
pub use crawl::BfsCrawlConfig;
pub use dataset::{DatasetSummary, GroupKind, SynthDataset};
pub use degrees::{lognormal_degrees, zipf_degrees};
pub use ego_circles::EgoCircleConfig;

/// Paper-scale preset configurations for the four evaluation corpora plus
/// the Magno et al. comparison crawl.
pub mod presets {
    use super::*;

    /// The McAuley–Leskovec Google+ corpus shape: 133 ego networks,
    /// 107,614 vertices, 13.7 M directed edges, 468 shared circles,
    /// log-normal in-degree, average degree ≈ 127.
    pub fn google_plus() -> EgoCircleConfig {
        EgoCircleConfig {
            name: "google+".into(),
            ego_count: 133,
            member_pool: 107_481,
            membership_exponent: 2.3,
            intra_avg_degree: 55.0,
            weight_sigma: 1.1,
            circles_per_ego: 3.5,
            circle_size_min: 8,
            circle_size_max: 220,
            circle_boost: 0.3,
            triadic_closure: 1.5,
        }
    }

    /// The McAuley–Leskovec Twitter corpus shape: 81,306 vertices, 1.77 M
    /// directed edges, 100 lists — an order of magnitude sparser than the
    /// Google+ crawl.
    pub fn twitter() -> EgoCircleConfig {
        EgoCircleConfig {
            name: "twitter".into(),
            ego_count: 100,
            member_pool: 81_206,
            membership_exponent: 2.5,
            intra_avg_degree: 13.0,
            weight_sigma: 0.9,
            circles_per_ego: 1.0,
            circle_size_min: 6,
            circle_size_max: 120,
            circle_boost: 0.25,
            triadic_closure: 0.5,
        }
    }

    /// The Yang–Leskovec LiveJournal corpus shape: ~4 M vertices, 34.7 M
    /// undirected edges, top-5000 interest communities, well-separated.
    pub fn livejournal() -> CommunityGraphConfig {
        CommunityGraphConfig {
            name: "livejournal".into(),
            vertices: 3_997_962,
            community_count: 5_000,
            size_min: 10,
            size_max: 1_500,
            size_exponent: 2.2,
            internal_avg_degree: 16.0,
            background_avg_degree: 8.0,
        }
    }

    /// The Mislove/Yang–Leskovec Orkut corpus shape: ~3 M vertices, 117 M
    /// undirected edges, top-5000 communities, denser and less separated
    /// than LiveJournal.
    pub fn orkut() -> CommunityGraphConfig {
        CommunityGraphConfig {
            name: "orkut".into(),
            vertices: 3_072_441,
            community_count: 5_000,
            size_min: 20,
            size_max: 3_000,
            size_exponent: 2.0,
            internal_avg_degree: 30.0,
            background_avg_degree: 45.0,
        }
    }

    /// The Magno et al. crawl shape: power-law in/out degrees
    /// (α ≈ 2.1–2.3), average degree ≈ 16, BFS-sampled — the Table II
    /// comparison column.
    pub fn magno() -> BfsCrawlConfig {
        BfsCrawlConfig {
            name: "magno-bfs".into(),
            vertices: 35_114_957,
            degree_exponent: 2.1,
            max_degree_fraction: 0.001,
            crawl_fraction: 1.0,
        }
    }
}

#[cfg(test)]
mod preset_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_presets_generate_at_tiny_scale() {
        let mut rng = SmallRng::seed_from_u64(1);
        let gp = presets::google_plus().scaled(0.005).generate(&mut rng);
        assert_eq!(gp.kind, GroupKind::Circles);
        assert!(gp.graph.is_directed());

        let tw = presets::twitter().scaled(0.01).generate(&mut rng);
        assert!(tw.graph.is_directed());

        let lj = presets::livejournal().scaled(0.002).generate(&mut rng);
        assert_eq!(lj.kind, GroupKind::Communities);
        assert!(!lj.graph.is_directed());

        let ok = presets::orkut().scaled(0.002).generate(&mut rng);
        assert!(!ok.graph.is_directed());

        let mg = presets::magno().scaled(0.0005).generate(&mut rng);
        assert!(mg.graph.is_directed());
    }
}
