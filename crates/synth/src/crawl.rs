//! Power-law BFS-crawl generator — the synthetic stand-in for the Magno
//! et al. Google+ crawl (Table II's comparison column).

use crate::dataset::{GroupKind, SynthDataset};
use crate::degrees::{balance_sums, zipf_degrees};
use circlekit_graph::NodeId;
use circlekit_nullmodel::directed_configuration_model;
use rand::Rng;

/// Configuration of the BFS-crawled power-law graph generator.
///
/// The underlying population is a directed configuration model with Zipf
/// in/out degrees (the distribution family Magno et al. report); the
/// emitted data set is the breadth-first crawl of that population, which
/// is how their corpus was collected. BFS crawls yield sparse,
/// wide-diameter samples — the opposite bias of the ego crawl, which is
/// precisely the Table II contrast.
#[derive(Clone, Debug, PartialEq)]
pub struct BfsCrawlConfig {
    /// Data-set name.
    pub name: String,
    /// Population size before crawling.
    pub vertices: usize,
    /// Zipf exponent of the in/out degree distributions.
    pub degree_exponent: f64,
    /// Cap on any single degree, as a fraction of `vertices`.
    pub max_degree_fraction: f64,
    /// Fraction of the population the BFS crawl collects (1.0 = all).
    pub crawl_fraction: f64,
}

impl BfsCrawlConfig {
    /// Scales the population size linearly (minimum 2000 vertices).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> BfsCrawlConfig {
        assert!(factor > 0.0, "scale factor must be positive");
        self.vertices = ((self.vertices as f64 * factor) as usize).max(2_000);
        self
    }

    /// Generates the crawled data set (directed; no labelled groups — this
    /// corpus only participates in the Table II statistics).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SynthDataset {
        let n = self.vertices;
        // Cap degrees at the configured fraction, but never below n/20:
        // small scaled-down runs still need room for a heavy tail.
        let max_degree = ((n as f64 * self.max_degree_fraction) as u64)
            .max((n / 20) as u64)
            .max(4);
        let mut out_deg = zipf_degrees(n, self.degree_exponent, max_degree, rng);
        let mut in_deg = zipf_degrees(n, self.degree_exponent, max_degree, rng);
        balance_sums(&mut out_deg, &mut in_deg, rng);
        let population = directed_configuration_model(&out_deg, &in_deg, rng);

        let graph = if self.crawl_fraction >= 1.0 {
            population
        } else {
            // Crawl from the highest-total-degree vertex, like a crawler
            // seeded on a prominent account.
            let seed = (0..population.node_count() as NodeId)
                .max_by_key(|&v| population.degree(v))
                .unwrap_or(0);
            let limit =
                ((population.node_count() as f64 * self.crawl_fraction) as usize).max(10);
            let crawled = circlekit_sampling::bfs_crawl(&population, seed, limit);
            population
                .subgraph(&crawled)
                .expect("crawl yields valid node ids")
                .into_parts()
                .0
        };

        SynthDataset {
            name: self.name.clone(),
            graph,
            groups: Vec::new(),
            egos: Vec::new(),
            ego_owners: Vec::new(),
            kind: GroupKind::Communities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> BfsCrawlConfig {
        crate::presets::magno().scaled(0.0002)
    }

    #[test]
    fn generates_directed_powerlawish_graph() {
        let mut rng = SmallRng::seed_from_u64(30);
        let ds = tiny().generate(&mut rng);
        assert!(ds.graph.is_directed());
        assert!(ds.groups.is_empty());
        assert!(ds.graph.edge_count() > 0);
        // Heavy tail: the maximum degree dwarfs the average.
        let n = ds.graph.node_count() as u32;
        let max_deg = (0..n).map(|v| ds.graph.degree(v)).max().unwrap();
        let avg = 2.0 * ds.graph.edge_count() as f64 / n as f64;
        assert!(max_deg as f64 > 5.0 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn partial_crawl_shrinks_graph() {
        let mut rng = SmallRng::seed_from_u64(31);
        let mut cfg = tiny();
        cfg.crawl_fraction = 0.3;
        let ds = cfg.generate(&mut rng);
        assert!(ds.graph.node_count() <= (cfg.vertices as f64 * 0.35) as usize);
        assert!(ds.graph.node_count() > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = tiny();
        let a = cfg.generate(&mut SmallRng::seed_from_u64(3));
        let b = cfg.generate(&mut SmallRng::seed_from_u64(3));
        assert_eq!(a.graph, b.graph);
    }
}
