//! Degree-sequence samplers for the generators.

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Zipf};

/// Samples `n` integer degrees from a Zipf (discrete power-law) law with
/// the given exponent, capped at `max` (caps keep configuration-model
/// erasure losses small).
///
/// # Panics
///
/// Panics if `exponent <= 1.0` or `max == 0`.
pub fn zipf_degrees<R: Rng + ?Sized>(n: usize, exponent: f64, max: u64, rng: &mut R) -> Vec<usize> {
    assert!(exponent > 1.0, "zipf exponent must exceed 1");
    assert!(max > 0, "max degree must be positive");
    let dist = Zipf::new(max, exponent).expect("valid zipf parameters");
    (0..n).map(|_| dist.sample(rng) as usize).collect()
}

/// Samples `n` integer degrees from a log-normal law (rounded, clamped to
/// `[1, max]`) — the in-degree family the paper finds in the Google+
/// ego-crawl data.
///
/// # Panics
///
/// Panics if `sigma <= 0` or `max == 0`.
pub fn lognormal_degrees<R: Rng + ?Sized>(
    n: usize,
    mu: f64,
    sigma: f64,
    max: u64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(max > 0, "max degree must be positive");
    let dist = LogNormal::new(mu, sigma).expect("valid log-normal parameters");
    (0..n)
        .map(|_| (dist.sample(rng).round() as u64).clamp(1, max) as usize)
        .collect()
}

/// Adjusts two degree sequences so their sums match (required by the
/// directed configuration model): the longer-sum sequence has random
/// positive entries decremented until the sums agree.
pub(crate) fn balance_sums<R: Rng + ?Sized>(
    out_degrees: &mut [usize],
    in_degrees: &mut [usize],
    rng: &mut R,
) {
    loop {
        let so: usize = out_degrees.iter().sum();
        let si: usize = in_degrees.iter().sum();
        if so == si {
            return;
        }
        let (seq, excess) = if so > si {
            (&mut *out_degrees, so - si)
        } else {
            (&mut *in_degrees, si - so)
        };
        // Decrement up to `excess` random positive entries per pass.
        let mut remaining = excess;
        let len = seq.len();
        while remaining > 0 {
            let idx = rng.gen_range(0..len);
            if seq[idx] > 1 {
                seq[idx] -= 1;
                remaining -= 1;
            } else if seq.iter().all(|&d| d <= 1) {
                // Cannot decrement below 1 everywhere; drop to 0 instead.
                if seq[idx] == 1 {
                    seq[idx] = 0;
                    remaining -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_degrees_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = zipf_degrees(5_000, 2.2, 1_000, &mut rng);
        assert_eq!(d.len(), 5_000);
        assert!(d.iter().all(|&x| (1..=1_000).contains(&x)));
        // Heavy tail: some degree above 50 should appear.
        assert!(d.iter().any(|&x| x > 50));
        // But the bulk is small.
        let ones = d.iter().filter(|&&x| x <= 2).count();
        assert!(ones > 2_000);
    }

    #[test]
    fn lognormal_degrees_have_positive_floor() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = lognormal_degrees(5_000, 2.0, 1.0, 10_000, &mut rng);
        assert!(d.iter().all(|&x| x >= 1));
        let mean = d.iter().sum::<usize>() as f64 / d.len() as f64;
        // E[lognormal(2,1)] = exp(2.5) ≈ 12.2.
        assert!((mean - 12.2).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn balance_sums_equalises() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut a = vec![5usize, 5, 5, 5];
        let mut b = vec![3usize, 3, 3, 3];
        balance_sums(&mut a, &mut b, &mut rng);
        assert_eq!(a.iter().sum::<usize>(), b.iter().sum::<usize>());
    }

    #[test]
    fn balance_sums_noop_when_equal() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut a = vec![2usize, 2];
        let mut b = vec![1usize, 3];
        balance_sums(&mut a, &mut b, &mut rng);
        assert_eq!(a, vec![2, 2]);
        assert_eq!(b, vec![1, 3]);
    }
}
