//! Overlapping ego-network generator with owner-curated circles — the
//! synthetic stand-in for the McAuley–Leskovec Google+/Twitter corpora.

use crate::dataset::{GroupKind, SynthDataset};
use circlekit_graph::{GraphBuilder, NodeId, VertexSet};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Zipf};

/// Configuration of the ego-network circle generator.
///
/// The generator reproduces the crawl geometry of Figure 1: `ego_count`
/// owners, each with a dense ego network; member vertices appear in a
/// heavy-tailed number of ego networks (Figure 2); edge targets inside an
/// ego network are chosen proportionally to log-normal attractiveness
/// weights, yielding an approximately log-normal in-degree distribution
/// (Figure 3). Circles are weight-correlated subsets of one ego's alters
/// with a configurable internal density boost — dense inside, yet fully
/// embedded in an already-dense ego network, which is exactly the
/// "community with many additional transit links" signature the paper
/// reports.
#[derive(Clone, Debug, PartialEq)]
pub struct EgoCircleConfig {
    /// Data-set name.
    pub name: String,
    /// Number of ego-network owners (the paper's 133).
    pub ego_count: usize,
    /// Number of non-owner member vertices in the pool.
    pub member_pool: usize,
    /// Zipf exponent of the per-vertex ego-membership count (Figure 2's
    /// heavy tail).
    pub membership_exponent: f64,
    /// Target average number of intra-ego out-edges per ego member.
    pub intra_avg_degree: f64,
    /// σ of the log-normal attractiveness weights (drives the in-degree
    /// tail width).
    pub weight_sigma: f64,
    /// Average number of circles per ego network (468/133 ≈ 3.5 in the
    /// paper).
    pub circles_per_ego: f64,
    /// Smallest circle size.
    pub circle_size_min: usize,
    /// Largest circle size (clamped to the ego's alter count).
    pub circle_size_max: usize,
    /// Extra intra-circle edge probability per ordered member pair — the
    /// "shared attribute" densification.
    pub circle_boost: f64,
    /// Triadic-closure intensity: expected number of closure attempts per
    /// intra-ego edge (each attempt links two random out-neighbours of a
    /// common contact). Drives the clustering coefficient of Figure 4.
    pub triadic_closure: f64,
}

impl EgoCircleConfig {
    /// Scales the configuration towards laptop size: the member pool
    /// scales linearly with `factor`, ego/circle counts and densities with
    /// `√factor` (so ego networks keep a realistic member-to-owner ratio).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> EgoCircleConfig {
        assert!(factor > 0.0, "scale factor must be positive");
        let root = factor.sqrt();
        self.member_pool = ((self.member_pool as f64 * factor) as usize).max(200);
        self.ego_count = ((self.ego_count as f64 * root) as usize).max(6);
        self.intra_avg_degree = (self.intra_avg_degree * root).max(4.0);
        self.circle_size_min = ((self.circle_size_min as f64 * root) as usize).max(4);
        self.circle_size_max = ((self.circle_size_max as f64 * root) as usize)
            .max(self.circle_size_min + 4);
        self
    }

    /// Total number of circles the generator will attempt.
    pub fn circle_count(&self) -> usize {
        ((self.circles_per_ego * self.ego_count as f64).round() as usize).max(1)
    }

    /// Generates the data set.
    ///
    /// Vertices `0..ego_count` are the owners; members follow. The output
    /// graph is directed.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SynthDataset {
        let n_owners = self.ego_count;
        let n = n_owners + self.member_pool;

        // Per-vertex attractiveness weights (log-normal).
        let weight_dist = LogNormal::new(0.0, self.weight_sigma).expect("valid sigma");
        let weights: Vec<f64> = (0..n).map(|_| weight_dist.sample(rng)).collect();

        // Ego attraction factors vary ego sizes.
        let ego_attraction: Vec<f64> = (0..n_owners).map(|_| weight_dist.sample(rng)).collect();
        let ego_cum: Vec<f64> = cumulative(&ego_attraction);

        // Assign members to egos with heavy-tailed membership counts.
        let membership_dist = Zipf::new(n_owners.max(2) as u64, self.membership_exponent)
            .expect("valid zipf parameters");
        let mut ego_alters: Vec<Vec<NodeId>> = vec![Vec::new(); n_owners];
        for member in n_owners..n {
            let k = (membership_dist.sample(rng) as usize).min(n_owners);
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            let mut guard = 0;
            while chosen.len() < k && guard < 20 * k + 40 {
                let ego = weighted_pick(&ego_cum, rng);
                if !chosen.contains(&ego) {
                    chosen.push(ego);
                }
                guard += 1;
            }
            for ego in chosen {
                ego_alters[ego].push(member as NodeId);
            }
        }

        // Build edges per ego network.
        let mut builder = GraphBuilder::directed();
        builder.reserve_nodes(n);
        let mut egos: Vec<VertexSet> = Vec::with_capacity(n_owners);
        for (ego, alters) in ego_alters.iter().enumerate() {
            let owner = ego as NodeId;
            // The owner has every alter "in your circles"; a share of
            // alters reciprocate ("in circles of others").
            for &a in alters {
                builder.add_edge(owner, a);
                if rng.gen::<f64>() < 0.3 {
                    builder.add_edge(a, owner);
                }
            }
            // Intra-ego edges: sources uniform, targets weight-biased.
            let s = alters.len();
            if s >= 2 {
                let target_edges =
                    ((self.intra_avg_degree * s as f64) as usize).min(s * (s - 1) * 4 / 5);
                let alter_weights: Vec<f64> =
                    alters.iter().map(|&a| weights[a as usize]).collect();
                let cum = cumulative(&alter_weights);
                // Local adjacency for the triadic-closure pass below.
                let mut local_out: Vec<Vec<u32>> = vec![Vec::new(); s];
                for _ in 0..target_edges {
                    let ui = rng.gen_range(0..s);
                    let vi = weighted_pick(&cum, rng);
                    if ui != vi {
                        builder.add_edge(alters[ui], alters[vi]);
                        local_out[ui].push(vi as u32);
                    }
                }
                // Triadic closure: contacts of a common contact connect —
                // the mechanism behind the paper's mid-range clustering
                // coefficient (Figure 4).
                let closures = (self.triadic_closure * target_edges as f64) as usize;
                for _ in 0..closures {
                    let wi = rng.gen_range(0..s);
                    let outs = &local_out[wi];
                    if outs.len() < 2 {
                        continue;
                    }
                    // Source uniform, target weight-biased among the common
                    // contact's neighbours: closure also obeys popularity,
                    // keeping the in-degree tail log-normal (Figure 3).
                    let a = outs[rng.gen_range(0..outs.len())] as usize;
                    let b = *pick_weighted(outs, &alter_weights, rng) as usize;
                    if a != b {
                        builder.add_edge(alters[a], alters[b]);
                    }
                }
            }
            let mut ego_set: VertexSet = alters.iter().copied().collect();
            ego_set.insert(owner);
            egos.push(ego_set);
        }

        // Circles: weight-correlated alter subsets with a density boost.
        let mut circles: Vec<VertexSet> = Vec::new();
        let wanted = self.circle_count();
        let eligible: Vec<usize> = (0..n_owners)
            .filter(|&e| ego_alters[e].len() >= self.circle_size_min.max(2))
            .collect();
        if !eligible.is_empty() {
            // Alters sorted by weight, per ego, computed lazily.
            let mut sorted_cache: Vec<Option<Vec<NodeId>>> = vec![None; n_owners];
            let mut guard = 0;
            while circles.len() < wanted && guard < wanted * 10 {
                guard += 1;
                let ego = eligible[rng.gen_range(0..eligible.len())];
                let sorted = sorted_cache[ego].get_or_insert_with(|| {
                    let mut v = ego_alters[ego].clone();
                    v.sort_by(|&a, &b| {
                        weights[a as usize]
                            .partial_cmp(&weights[b as usize])
                            .expect("finite weights")
                    });
                    v
                });
                let max_size = self.circle_size_max.min(sorted.len());
                let min_size = self.circle_size_min.min(max_size);
                if min_size < 2 {
                    continue;
                }
                let size = rng.gen_range(min_size..=max_size);
                let start = rng.gen_range(0..=(sorted.len() - size));
                let members: Vec<NodeId> = sorted[start..start + size].to_vec();
                // Densify the circle: shared-attribute contacts connect.
                for i in 0..members.len() {
                    for j in 0..members.len() {
                        if i != j && rng.gen::<f64>() < self.circle_boost {
                            builder.add_edge(members[i], members[j]);
                        }
                    }
                }
                circles.push(VertexSet::from_vec(members));
            }
        }

        SynthDataset {
            name: self.name.clone(),
            graph: builder.build(),
            groups: circles,
            egos,
            ego_owners: (0..n_owners as NodeId).collect(),
            kind: GroupKind::Circles,
        }
    }
}

/// Picks an element of `indices` with probability proportional to its
/// weight in `weights` (indexed by the element value).
fn pick_weighted<'a, R: Rng + ?Sized>(
    indices: &'a [u32],
    weights: &[f64],
    rng: &mut R,
) -> &'a u32 {
    let total: f64 = indices.iter().map(|&i| weights[i as usize].max(0.0)).sum();
    if total <= 0.0 {
        return &indices[0];
    }
    let mut x = rng.gen::<f64>() * total;
    for i in indices {
        x -= weights[*i as usize].max(0.0);
        if x <= 0.0 {
            return i;
        }
    }
    indices.last().expect("non-empty")
}

/// Prefix sums for weighted picking.
fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w.max(0.0);
        cum.push(acc);
    }
    cum
}

/// Index sampling proportional to the weights behind `cum`.
fn weighted_pick<R: Rng + ?Sized>(cum: &[f64], rng: &mut R) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let x = rng.gen::<f64>() * total;
    cum.partition_point(|&c| c <= x).min(cum.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> EgoCircleConfig {
        crate::presets::google_plus().scaled(0.004)
    }

    #[test]
    fn generates_directed_graph_with_circles_and_egos() {
        let mut rng = SmallRng::seed_from_u64(7);
        let cfg = tiny();
        let ds = cfg.generate(&mut rng);
        assert!(ds.graph.is_directed());
        assert_eq!(ds.kind, GroupKind::Circles);
        assert_eq!(ds.egos.len(), cfg.ego_count);
        assert!(!ds.groups.is_empty());
        assert!(ds.graph.edge_count() > 0);
    }

    #[test]
    fn circles_are_subsets_of_some_ego_network() {
        let mut rng = SmallRng::seed_from_u64(8);
        let ds = tiny().generate(&mut rng);
        for circle in &ds.groups {
            assert!(
                ds.egos.iter().any(|ego| circle.intersection(ego).len() == circle.len()),
                "circle not contained in any ego network"
            );
        }
    }

    #[test]
    fn owners_point_at_their_alters() {
        let mut rng = SmallRng::seed_from_u64(9);
        let ds = tiny().generate(&mut rng);
        for (i, ego) in ds.egos.iter().enumerate() {
            let owner = ds.ego_owners[i];
            for v in ego.iter().filter(|&v| v != owner) {
                assert!(ds.graph.has_edge(owner, v), "owner {owner} missing alter {v}");
            }
        }
    }

    #[test]
    fn circle_sizes_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(10);
        let cfg = tiny();
        let ds = cfg.generate(&mut rng);
        for c in &ds.groups {
            assert!(c.len() >= 2);
            assert!(c.len() <= cfg.circle_size_max);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = tiny();
        let a = cfg.generate(&mut SmallRng::seed_from_u64(42));
        let b = cfg.generate(&mut SmallRng::seed_from_u64(42));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.groups, b.groups);
    }

    #[test]
    fn most_vertices_in_few_egos_some_in_many() {
        // The Figure-2 shape: membership counts are heavy-tailed.
        let mut rng = SmallRng::seed_from_u64(11);
        let ds = crate::presets::google_plus().scaled(0.02).generate(&mut rng);
        let mut counts = std::collections::HashMap::new();
        for ego in &ds.egos {
            for v in ego.iter() {
                *counts.entry(v).or_insert(0u32) += 1;
            }
        }
        let singles = counts.values().filter(|&&c| c == 1).count();
        let multi = counts.values().filter(|&&c| c >= 3).count();
        assert!(singles > counts.len() / 2, "bulk should be in one ego");
        assert!(multi > 0, "tail should exist");
    }

    #[test]
    fn scaled_reduces_size_monotonically() {
        let base = crate::presets::google_plus();
        let small = base.clone().scaled(0.01);
        assert!(small.member_pool < base.member_pool);
        assert!(small.ego_count <= base.ego_count);
        assert!(small.intra_avg_degree <= base.intra_avg_degree);
    }
}
