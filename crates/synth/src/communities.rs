//! Planted-community (Affiliation-Graph-Model-style) generator — the
//! synthetic stand-in for the LiveJournal/Orkut ground-truth-community
//! corpora.

use crate::dataset::{GroupKind, SynthDataset};
use circlekit_graph::{GraphBuilder, NodeId, VertexSet};
use rand::Rng;

/// Configuration of the community-graph generator.
///
/// Communities follow the Yang–Leskovec picture: member-joined groups with
/// high internal density embedded in a sparse background, so external
/// connectivity per group is low — the "rather closed groups with few
/// relations to the outside" the paper contrasts circles against.
#[derive(Clone, Debug, PartialEq)]
pub struct CommunityGraphConfig {
    /// Data-set name.
    pub name: String,
    /// Number of vertices.
    pub vertices: usize,
    /// Number of planted communities.
    pub community_count: usize,
    /// Smallest community size.
    pub size_min: usize,
    /// Largest community size.
    pub size_max: usize,
    /// Power-law exponent of the community-size distribution.
    pub size_exponent: f64,
    /// Target average *internal* degree of community members.
    pub internal_avg_degree: f64,
    /// Target average degree contributed by the background graph.
    pub background_avg_degree: f64,
}

impl CommunityGraphConfig {
    /// Scales the configuration: vertices and community count scale
    /// linearly, the size cap with `√factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> CommunityGraphConfig {
        assert!(factor > 0.0, "scale factor must be positive");
        self.vertices = ((self.vertices as f64 * factor) as usize).max(500);
        self.community_count = ((self.community_count as f64 * factor) as usize).max(20);
        let root = factor.sqrt();
        self.size_max = ((self.size_max as f64 * root) as usize)
            .clamp(self.size_min + 4, self.vertices / 4);
        self
    }

    /// Generates the data set (undirected).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SynthDataset {
        let n = self.vertices;
        let mut builder = GraphBuilder::undirected();
        builder.reserve_nodes(n);

        // Background: sparse uniform noise.
        let background_edges = (self.background_avg_degree * n as f64 / 2.0) as usize;
        for _ in 0..background_edges {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u != v {
                builder.add_edge(u, v);
            }
        }

        // Planted communities with power-law sizes.
        let mut groups = Vec::with_capacity(self.community_count);
        for _ in 0..self.community_count {
            let size = power_law_size(self.size_min, self.size_max, self.size_exponent, rng);
            let mut members = Vec::with_capacity(size);
            let mut seen = std::collections::HashSet::with_capacity(size * 2);
            while members.len() < size {
                let v = rng.gen_range(0..n) as NodeId;
                if seen.insert(v) {
                    members.push(v);
                }
            }
            let internal_edges =
                ((self.internal_avg_degree * size as f64 / 2.0) as usize)
                    .min(size * (size - 1) * 2 / 5);
            for _ in 0..internal_edges {
                let u = members[rng.gen_range(0..size)];
                let v = members[rng.gen_range(0..size)];
                if u != v {
                    builder.add_edge(u, v);
                }
            }
            groups.push(VertexSet::from_vec(members));
        }

        SynthDataset {
            name: self.name.clone(),
            graph: builder.build(),
            groups,
            egos: Vec::new(),
            ego_owners: Vec::new(),
            kind: GroupKind::Communities,
        }
    }
}

/// Samples a community size from a truncated power law via inverse CDF.
fn power_law_size<R: Rng + ?Sized>(min: usize, max: usize, exponent: f64, rng: &mut R) -> usize {
    let (a, b) = (min as f64, max as f64);
    if min >= max {
        return min;
    }
    let g = 1.0 - exponent;
    let u = rng.gen::<f64>();
    let x = (a.powf(g) + u * (b.powf(g) - a.powf(g))).powf(1.0 / g);
    (x as usize).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny() -> CommunityGraphConfig {
        crate::presets::livejournal().scaled(0.001)
    }

    #[test]
    fn generates_undirected_graph_with_groups() {
        let mut rng = SmallRng::seed_from_u64(20);
        let cfg = tiny();
        let ds = cfg.generate(&mut rng);
        assert!(!ds.graph.is_directed());
        assert_eq!(ds.kind, GroupKind::Communities);
        assert_eq!(ds.groups.len(), cfg.community_count);
        assert!(ds.egos.is_empty());
    }

    #[test]
    fn community_sizes_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(21);
        let cfg = tiny();
        let ds = cfg.generate(&mut rng);
        for g in &ds.groups {
            assert!(g.len() >= cfg.size_min.min(cfg.size_max));
            assert!(g.len() <= cfg.size_max);
        }
    }

    #[test]
    fn communities_are_denser_than_background() {
        let mut rng = SmallRng::seed_from_u64(22);
        let cfg = tiny();
        let ds = cfg.generate(&mut rng);
        // Average internal degree across communities should beat the
        // graph-wide average degree contributed by background noise alone.
        let mut internal_deg = 0.0;
        let mut count = 0usize;
        for g in ds.groups.iter().take(30) {
            let sub = ds.graph.subgraph(g).unwrap();
            internal_deg += 2.0 * sub.graph().edge_count() as f64 / g.len() as f64;
            count += 1;
        }
        internal_deg /= count as f64;
        assert!(
            internal_deg > cfg.internal_avg_degree * 0.4,
            "internal degree {internal_deg} too low"
        );
    }

    #[test]
    fn power_law_size_bounds_and_bias() {
        let mut rng = SmallRng::seed_from_u64(23);
        let sizes: Vec<usize> = (0..2_000)
            .map(|_| power_law_size(10, 1000, 2.2, &mut rng))
            .collect();
        assert!(sizes.iter().all(|&s| (10..=1000).contains(&s)));
        let small = sizes.iter().filter(|&&s| s < 50).count();
        assert!(small > 1_200, "sizes should be bottom-heavy: {small}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = tiny();
        let a = cfg.generate(&mut SmallRng::seed_from_u64(5));
        let b = cfg.generate(&mut SmallRng::seed_from_u64(5));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.groups, b.groups);
    }
}
