//! The common output type of all generators.

use circlekit_graph::{Graph, VertexSet};

/// Whether a data set's groups are owner-curated circles or member-joined
/// communities — the distinction §III of the paper is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// Owner-curated selective-sharing groups (Google+ circles, Twitter
    /// lists).
    Circles,
    /// Member-initiated interest groups (LiveJournal, Orkut).
    Communities,
}

impl std::fmt::Display for GroupKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GroupKind::Circles => "circles",
            GroupKind::Communities => "communities",
        })
    }
}

/// A generated data set: the social graph, its labelled groups, and (for
/// ego-crawled data) the ego networks the crawl collected.
#[derive(Clone, Debug)]
pub struct SynthDataset {
    /// Human-readable data-set name (e.g. `"google+"`).
    pub name: String,
    /// The social graph.
    pub graph: Graph,
    /// The labelled groups: circles or communities.
    pub groups: Vec<VertexSet>,
    /// Ego networks (one per crawled owner); empty for non-ego data sets.
    pub egos: Vec<VertexSet>,
    /// Owner vertex of each ego network, parallel to [`egos`](Self::egos).
    pub ego_owners: Vec<u32>,
    /// Circle vs community semantics.
    pub kind: GroupKind,
}

impl SynthDataset {
    /// Summary row for the paper's Table III.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            name: self.name.clone(),
            vertices: self.graph.node_count(),
            edges: self.graph.edge_count(),
            directed: self.graph.is_directed(),
            kind: self.kind,
            group_count: self.groups.len(),
        }
    }

    /// The sizes of the groups, in group order (used to build size-matched
    /// random baselines).
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.len()).collect()
    }
}

/// One row of the paper's Table III.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Data-set name.
    pub name: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count (arcs if directed).
    pub edges: usize,
    /// Edge type.
    pub directed: bool,
    /// Group semantics.
    pub kind: GroupKind,
    /// Number of labelled groups.
    pub group_count: usize,
}

impl std::fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} |V|={:>9} |E|={:>11} type={:<10} structure={:<11} groups={}",
            self.name,
            self.vertices,
            self.edges,
            if self.directed { "directed" } else { "undirected" },
            self.kind,
            self.group_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circlekit_graph::Graph;

    #[test]
    fn summary_reflects_dataset() {
        let ds = SynthDataset {
            name: "toy".into(),
            graph: Graph::from_edges(true, [(0u32, 1u32), (1, 2)]),
            groups: vec![VertexSet::from_vec(vec![0, 1])],
            egos: vec![],
            ego_owners: vec![],
            kind: GroupKind::Circles,
        };
        let s = ds.summary();
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 2);
        assert!(s.directed);
        assert_eq!(s.group_count, 1);
        assert_eq!(ds.group_sizes(), vec![2]);
        assert!(s.to_string().contains("circles"));
    }

    #[test]
    fn group_kind_display() {
        assert_eq!(GroupKind::Circles.to_string(), "circles");
        assert_eq!(GroupKind::Communities.to_string(), "communities");
    }
}
