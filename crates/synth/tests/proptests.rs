//! Property tests for the data-set generators: structural invariants must
//! hold for any scale and seed.

use circlekit_graph::connected_components;
use circlekit_synth::{presets, GroupKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    // Generators are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ego_circle_generator_invariants(seed in any::<u64>(), scale in 0.002f64..0.006) {
        let cfg = presets::google_plus().scaled(scale);
        let ds = cfg.generate(&mut SmallRng::seed_from_u64(seed));
        prop_assert!(ds.graph.is_directed());
        prop_assert_eq!(ds.kind, GroupKind::Circles);
        prop_assert_eq!(ds.egos.len(), cfg.ego_count);
        prop_assert_eq!(ds.egos.len(), ds.ego_owners.len());

        // Every circle fits inside one ego network and has sane size.
        for circle in &ds.groups {
            prop_assert!(circle.len() >= 2);
            prop_assert!(circle.len() <= cfg.circle_size_max);
            prop_assert!(
                ds.egos.iter().any(|ego| circle.intersection(ego).len() == circle.len())
            );
        }

        // Owners link to all their alters; ego sets contain their owner.
        for (i, ego) in ds.egos.iter().enumerate() {
            let owner = ds.ego_owners[i];
            prop_assert!(ego.contains(owner));
            for v in ego.iter().filter(|&v| v != owner) {
                prop_assert!(ds.graph.has_edge(owner, v));
            }
        }

        // No node id exceeds the graph.
        let n = ds.graph.node_count() as u32;
        for group in ds.groups.iter().chain(&ds.egos) {
            prop_assert!(group.iter().all(|v| v < n));
        }
    }

    #[test]
    fn community_generator_invariants(seed in any::<u64>(), scale in 0.0005f64..0.002) {
        let cfg = presets::livejournal().scaled(scale);
        let ds = cfg.generate(&mut SmallRng::seed_from_u64(seed));
        prop_assert!(!ds.graph.is_directed());
        prop_assert_eq!(ds.kind, GroupKind::Communities);
        prop_assert_eq!(ds.groups.len(), cfg.community_count);
        prop_assert!(ds.egos.is_empty());
        let n = ds.graph.node_count() as u32;
        for g in &ds.groups {
            prop_assert!(g.len() >= cfg.size_min.min(cfg.size_max));
            prop_assert!(g.len() <= cfg.size_max);
            prop_assert!(g.iter().all(|v| v < n));
        }
    }

    #[test]
    fn crawl_generator_invariants(seed in any::<u64>()) {
        let cfg = presets::magno().scaled(0.0001);
        let ds = cfg.generate(&mut SmallRng::seed_from_u64(seed));
        prop_assert!(ds.graph.is_directed());
        prop_assert!(ds.graph.node_count() >= 2_000);
        prop_assert!(ds.groups.is_empty());
    }

    #[test]
    fn ego_crawl_joint_graph_is_dominated_by_one_component(seed in any::<u64>()) {
        // The paper: joining all ego networks forms "a large connected
        // component". Owners' ego networks overlap heavily, so the bulk of
        // the graph must sit in one weak component.
        let ds = presets::google_plus()
            .scaled(0.004)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let cc = connected_components(&ds.graph);
        let largest = cc.sizes().into_iter().max().unwrap_or(0);
        prop_assert!(
            largest as f64 > 0.9 * ds.graph.node_count() as f64,
            "largest component {largest} of {}",
            ds.graph.node_count()
        );
    }
}
