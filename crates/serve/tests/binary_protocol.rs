//! CKP1 acceptance properties over real sockets: every op round-trips
//! the binary codec bit-identically (property-tested), JSON-mode and
//! binary-mode responses render byte-identical score tables, pipelined
//! requests come back in request order, a burst of simultaneous
//! connects sees zero refused, every malformed-frame shape is a
//! typed error or a clean close — never a panic or a hang — and the
//! thread-per-connection front end negotiates CKP1 exactly like the
//! event loop.

use circlekit_scoring::ScoringFunction;
use circlekit_serve::binary;
use circlekit_serve::{
    Client, ClientOptions, Mutation, Request, ServeConfig, Server, SnapshotRegistry,
    MAX_FRAME_LEN,
};
use circlekit_synth::presets;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn fixture() -> circlekit_synth::SynthDataset {
    presets::google_plus().scaled(0.004).generate(&mut SmallRng::seed_from_u64(2014))
}

fn start_server(config: ServeConfig) -> (Server, circlekit_synth::SynthDataset) {
    let data = fixture();
    let mut registry = SnapshotRegistry::new();
    registry.insert("gplus", data.graph.clone(), data.groups.clone()).unwrap();
    let server = Server::start(registry, config, ("127.0.0.1", 0)).unwrap();
    (server, data)
}

// ---------------------------------------------------------------------
// Property: every op round-trips the CKP1 codec bit-identically
// ---------------------------------------------------------------------

fn arb_snapshot() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["gplus", "web", "a.b-c_d", "x0", "gplus.shard2"])
        .prop_map(String::from)
}

fn arb_functions() -> impl Strategy<Value = Vec<ScoringFunction>> {
    prop::collection::vec(prop::sample::select(ScoringFunction::ALL.to_vec()), 1..6)
}

fn arb_mutations() -> impl Strategy<Value = Vec<Mutation>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Mutation::AddEdge { u, v }),
            (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Mutation::RemoveEdge { u, v }),
        ],
        1..8,
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    let members = || prop::collection::vec(any::<u32>(), 0..16);
    let deadline = || prop::option::of(0u64..1_000_000);
    prop_oneof![
        Just(Request::Health),
        Just(Request::Stats),
        Just(Request::Shutdown),
        Just(Request::ListSnapshots),
        Just(Request::ReplStatus),
        arb_snapshot().prop_map(|snapshot| Request::ListGroups { snapshot }),
        arb_snapshot().prop_map(|snapshot| Request::Compact { snapshot }),
        (arb_snapshot(), 0usize..4096, arb_functions(), deadline()).prop_map(
            |(snapshot, group, functions, deadline_ms)| Request::ScoreGroup {
                snapshot,
                group,
                functions,
                deadline_ms,
            }
        ),
        (arb_snapshot(), members(), arb_functions(), deadline()).prop_map(
            |(snapshot, members, functions, deadline_ms)| Request::ScoreSet {
                snapshot,
                members,
                functions,
                deadline_ms,
            }
        ),
        (arb_snapshot(), 0usize..4096, arb_functions(), 1usize..512, any::<u64>(), deadline())
            .prop_map(|(snapshot, group, functions, samples, seed, deadline_ms)| {
                Request::Baseline { snapshot, group, functions, samples, seed, deadline_ms }
            }),
        (arb_snapshot(), arb_mutations()).prop_map(|(snapshot, mutations)| {
            Request::ApplyMutations { snapshot, mutations }
        }),
        (arb_snapshot(), 0usize..4096)
            .prop_map(|(snapshot, group)| Request::WatchScores { snapshot, group }),
        (arb_snapshot(), any::<u32>(), any::<u64>(), 1usize..64, 0usize..64).prop_map(
            |(snapshot, ego, seed, min_size, top)| Request::SuggestCircles {
                snapshot,
                ego,
                seed,
                min_size,
                top,
            }
        ),
        (arb_snapshot(), any::<u32>(), any::<u64>()).prop_map(
            |(snapshot, base_crc, wal_offset)| Request::Replicate {
                snapshot,
                base_crc,
                wal_offset,
            }
        ),
        any::<u64>().prop_map(|offset| Request::ReplAck { offset }),
        (arb_snapshot(), 0usize..4096, deadline()).prop_map(|(snapshot, group, deadline_ms)| {
            Request::ShardStats { snapshot, group: Some(group), members: None, deadline_ms }
        }),
        (arb_snapshot(), members(), deadline()).prop_map(|(snapshot, members, deadline_ms)| {
            Request::ShardStats { snapshot, group: None, members: Some(members), deadline_ms }
        }),
        (0u64..10_000).prop_map(|millis| Request::DebugSleep { millis }),
    ]
}

proptest! {
    #[test]
    fn every_op_roundtrips_ckp1_bit_identically(request in arb_request()) {
        let (op, payload) = binary::encode_request(&request);
        let wire = binary::encode_frame(binary::KIND_REQUEST, op, &payload);
        let (frame, consumed) =
            binary::try_parse(&wire).expect("well-formed frame").expect("complete frame");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(frame.kind, binary::KIND_REQUEST);
        prop_assert_eq!(frame.op, op);
        prop_assert_eq!(&frame.payload, &payload);
        let decoded = binary::decode_request(frame.op, &frame.payload)
            .expect("encoded requests decode");
        prop_assert_eq!(&decoded, &request);
        // Re-encoding the decoded request reproduces the exact bytes:
        // the codec is canonical, not merely invertible.
        let (op2, payload2) = binary::encode_request(&decoded);
        prop_assert_eq!(op2, op);
        prop_assert_eq!(payload2, payload);
    }
}

// ---------------------------------------------------------------------
// Byte identity across wire modes, over real sockets
// ---------------------------------------------------------------------

fn write_json_frame(stream: &mut TcpStream, payload: &str) {
    stream.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
}

fn read_json_frame(stream: &mut TcpStream) -> Option<String> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut len[got..]).unwrap() {
            0 if got == 0 => return None,
            0 => panic!("peer closed mid-prefix"),
            n => got += n,
        }
    }
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut payload).unwrap();
    Some(String::from_utf8(payload).unwrap())
}

/// Reads one CKP1 frame, carrying leftover bytes in `buf` across calls
/// (one `read` can return several pipelined frames back to back).
/// Returns `None` on a clean close with no buffered bytes.
fn read_binary_frame_buffered(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> Option<binary::Frame> {
    let mut chunk = [0u8; 4096];
    loop {
        match binary::try_parse(buf) {
            Ok(Some((frame, consumed))) => {
                buf.drain(..consumed);
                return Some(frame);
            }
            Ok(None) => {}
            Err(defect) => panic!("server sent a malformed frame: {defect}"),
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return None,
            Ok(0) => panic!("server closed mid-frame"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read: {e}"),
        }
    }
}

/// [`read_binary_frame_buffered`] for strictly request/response traffic
/// where no second frame can trail the first.
fn read_binary_frame(stream: &mut TcpStream) -> Option<binary::Frame> {
    read_binary_frame_buffered(stream, &mut Vec::new())
}

fn connect_raw(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

#[test]
fn json_and_binary_modes_render_byte_identical_score_tables() {
    let (server, data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let groups = data.groups.len().min(6);
    let members: Vec<u32> = data.groups[0].as_slice().iter().copied().take(12).collect();

    let mut requests: Vec<Request> = vec![
        Request::Health,
        Request::ListSnapshots,
        Request::ListGroups { snapshot: "gplus".to_string() },
        Request::ScoreSet {
            snapshot: "gplus".to_string(),
            members,
            functions: ScoringFunction::ALL.to_vec(),
            deadline_ms: None,
        },
    ];
    for g in 0..groups {
        requests.push(Request::ScoreGroup {
            snapshot: "gplus".to_string(),
            group: g,
            functions: ScoringFunction::ALL.to_vec(),
            deadline_ms: None,
        });
        requests.push(Request::WatchScores { snapshot: "gplus".to_string(), group: g });
    }

    let mut json = connect_raw(addr);
    let mut bin = connect_raw(addr);
    for request in &requests {
        // Warm the score cache through the JSON path first, so both
        // modes replay the same cached entry and even the `cached`
        // marker agrees.
        let rendered = binary::encode_request_json(request);
        write_json_frame(&mut json, &rendered);
        let _warm = read_json_frame(&mut json).expect("warm response");
        write_json_frame(&mut json, &rendered);
        let via_json = read_json_frame(&mut json).expect("json response");

        let (op, payload) = binary::encode_request(request);
        bin.write_all(&binary::encode_frame(binary::KIND_REQUEST, op, &payload)).unwrap();
        let frame = read_binary_frame(&mut bin).expect("binary response");
        assert_eq!(frame.kind, binary::KIND_RESPONSE);
        assert_eq!(frame.op, op);
        let via_binary = binary::decode_response_payload(&frame.payload).unwrap().to_string();

        assert_eq!(
            via_binary, via_json,
            "rendered response diverged across wire modes for {request:?}"
        );
    }
    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn binary_client_scores_match_json_client_bit_for_bit() {
    let (server, data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let options = ClientOptions {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(Duration::from_secs(10)),
        binary: true,
    };
    let mut binary_client = Client::connect_with_options(addr, options).unwrap();
    assert!(binary_client.is_binary());
    let mut json_client = Client::connect(addr).unwrap();
    for g in 0..data.groups.len().min(8) {
        let a = binary_client.score_group("gplus", g, Some("all"), None).unwrap();
        let b = json_client.score_group("gplus", g, Some("all"), None).unwrap();
        let a = Client::scores_of(&a).unwrap();
        let b = Client::scores_of(&b).unwrap();
        let a_bits: Vec<u64> = a.iter().map(|s| s.to_bits()).collect();
        let b_bits: Vec<u64> = b.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "group {g} diverged across client modes");
    }
    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn threaded_front_end_negotiates_ckp1_like_the_event_loop() {
    // `--event-loop off` must speak the same two protocols: the thread-
    // per-connection path sniffs the first byte exactly like the loop.
    let (server, data) =
        start_server(ServeConfig { event_loop: false, ..ServeConfig::default() });
    let addr = server.local_addr();
    let options = ClientOptions {
        connect_timeout: Some(Duration::from_secs(5)),
        read_timeout: Some(Duration::from_secs(10)),
        binary: true,
    };
    let mut binary_client = Client::connect_with_options(addr, options).unwrap();
    assert!(binary_client.is_binary());
    let mut json_client = Client::connect(addr).unwrap();
    for g in 0..data.groups.len().min(4) {
        let a = binary_client.score_group("gplus", g, Some("all"), None).unwrap();
        let b = json_client.score_group("gplus", g, Some("all"), None).unwrap();
        let a_bits: Vec<u64> =
            Client::scores_of(&a).unwrap().iter().map(|s| s.to_bits()).collect();
        let b_bits: Vec<u64> =
            Client::scores_of(&b).unwrap().iter().map(|s| s.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "group {g} diverged across client modes");
    }

    // Same failure matrix as the event loop: a response-kind frame draws
    // a typed error echoing its op and the connection survives.
    let mut stream = connect_raw(addr);
    let (op, payload) = binary::encode_request(&Request::Health);
    stream.write_all(&binary::encode_frame(binary::KIND_RESPONSE, op, &payload)).unwrap();
    let frame = read_binary_frame(&mut stream).expect("typed error for response-kind frame");
    assert_eq!(frame.op, op);
    let envelope = binary::decode_response_payload(&frame.payload).unwrap().to_string();
    assert!(envelope.contains("bad-request"), "{envelope}");
    stream.write_all(&binary::encode_frame(binary::KIND_REQUEST, op, &payload)).unwrap();
    let frame = read_binary_frame(&mut stream).expect("connection survived the bad frame");
    let envelope = binary::decode_response_payload(&frame.payload).unwrap().to_string();
    assert!(envelope.contains("serving"), "{envelope}");

    // A framing defect draws one typed error, then the stream closes.
    let mut stream = connect_raw(addr);
    let mut bad = binary::encode_frame(binary::KIND_REQUEST, op, &payload);
    bad[0] = b'C';
    bad[1] = b'X'; // still sniffs as binary, then fails the magic check
    stream.write_all(&bad).unwrap();
    let frame = read_binary_frame(&mut stream).expect("typed error for bad magic");
    assert_eq!(frame.op, binary::OP_UNKNOWN);
    let envelope = binary::decode_response_payload(&frame.payload).unwrap().to_string();
    assert!(envelope.contains("bad-request"), "{envelope}");
    assert!(read_binary_frame(&mut stream).is_none(), "stream must close after the defect");

    server.shutdown_handle().trigger();
    server.join();
}

// ---------------------------------------------------------------------
// Pipelining: responses strictly in request order
// ---------------------------------------------------------------------

#[test]
fn pipelined_binary_requests_come_back_in_request_order() {
    let (server, data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let groups = data.groups.len().min(8);
    let mut stream = connect_raw(addr);

    // Fire every request before reading a single response.
    let mut expected_ops = Vec::new();
    let mut burst = Vec::new();
    for round in 0..4 {
        for g in 0..groups {
            let request = if (round + g) % 2 == 0 {
                Request::ScoreGroup {
                    snapshot: "gplus".to_string(),
                    group: g,
                    functions: ScoringFunction::PAPER.to_vec(),
                    deadline_ms: None,
                }
            } else {
                Request::WatchScores { snapshot: "gplus".to_string(), group: g }
            };
            let (op, payload) = binary::encode_request(&request);
            burst.extend_from_slice(&binary::encode_frame(binary::KIND_REQUEST, op, &payload));
            expected_ops.push((op, g as u64));
        }
    }
    stream.write_all(&burst).unwrap();

    let mut leftover = Vec::new();
    for (op, group) in expected_ops {
        let frame =
            read_binary_frame_buffered(&mut stream, &mut leftover).expect("pipelined response");
        assert_eq!(frame.kind, binary::KIND_RESPONSE);
        assert_eq!(frame.op, op, "responses must arrive in request order");
        let value = binary::decode_response_payload(&frame.payload).unwrap();
        let rendered = value.to_string();
        assert!(
            rendered.contains(&format!("\"group\":{group}")),
            "response for group {group} out of order: {rendered}"
        );
    }
    server.shutdown_handle().trigger();
    server.join();
}

// ---------------------------------------------------------------------
// Burst connects: the raised backlog refuses nothing
// ---------------------------------------------------------------------

#[test]
fn burst_of_simultaneous_connects_sees_zero_refused() {
    let (server, _data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                scope.spawn(move || {
                    let mut failed = Vec::new();
                    for _ in 0..16 {
                        match Client::connect(addr) {
                            Ok(mut client) => {
                                if let Err(e) = client.health() {
                                    failed.push(format!("health: {e}"));
                                }
                            }
                            Err(e) => failed.push(format!("connect: {e}")),
                        }
                    }
                    failed
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert!(failures.is_empty(), "refused or failed connects: {failures:?}");
    server.shutdown_handle().trigger();
    server.join();
}

// ---------------------------------------------------------------------
// Malformed-frame battery: typed error or clean close, never a hang
// ---------------------------------------------------------------------

/// Sends `bytes`, then asserts the server answers with at most one
/// typed error frame before closing the connection. Returns the error
/// envelope when one was sent.
fn expect_error_then_close(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<String> {
    let mut stream = connect_raw(addr);
    stream.write_all(bytes).unwrap();
    let envelope = read_binary_frame(&mut stream).map(|frame| {
        assert_eq!(frame.kind, binary::KIND_RESPONSE);
        assert_eq!(frame.op, binary::OP_UNKNOWN, "framing defects answer at op_unknown");
        binary::decode_response_payload(&frame.payload).unwrap().to_string()
    });
    // Whatever was sent, the connection must now close cleanly.
    let mut rest = [0u8; 64];
    loop {
        match stream.read(&mut rest) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => panic!("expected a clean close, got {e}"),
        }
    }
    envelope
}

#[test]
fn malformed_binary_frames_are_typed_errors_or_clean_closes() {
    let (server, _data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let (op, payload) = binary::encode_request(&Request::Health);
    let good = binary::encode_frame(binary::KIND_REQUEST, op, &payload);

    // Bad magic (first byte still sniffs as binary).
    let mut bad_magic = good.clone();
    bad_magic[3] = b'9';
    let envelope = expect_error_then_close(addr, &bad_magic).expect("typed error");
    assert!(envelope.contains("\"ok\":false"), "{envelope}");

    // Bad CRC: flip one payload byte so the header checksum disagrees.
    let mut bad_crc = good.clone();
    *bad_crc.last_mut().unwrap() ^= 0xFF;
    let envelope = expect_error_then_close(addr, &bad_crc).expect("typed error");
    assert!(envelope.contains("\"ok\":false"), "{envelope}");

    // Oversized length: a header advertising a payload over the cap.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&binary::MAGIC);
    oversized.push(binary::KIND_REQUEST);
    oversized.push(0);
    oversized.extend_from_slice(&op.to_le_bytes());
    oversized.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    oversized.extend_from_slice(&0u32.to_le_bytes());
    let envelope = expect_error_then_close(addr, &oversized).expect("typed error");
    assert!(envelope.contains("frame-too-large"), "{envelope}");

    // Truncation at every prefix boundary: an EOF inside a well-formed
    // frame is a clean close, not a response and not a hang.
    for cut in 1..good.len() {
        let mut stream = connect_raw(addr);
        stream.write_all(&good[..cut]).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert!(rest.is_empty(), "a truncated frame must not be answered (cut {cut})");
    }

    // Mid-frame disconnect: drop the socket without shutdown.
    for cut in [1, binary::HEADER_LEN - 1, good.len() - 1] {
        let mut stream = connect_raw(addr);
        stream.write_all(&good[..cut]).unwrap();
        drop(stream);
    }

    // A response-kind frame from a client is a protocol violation, but
    // a recoverable one: typed error, connection survives.
    let mut stream = connect_raw(addr);
    stream.write_all(&binary::encode_frame(binary::KIND_RESPONSE, op, &payload)).unwrap();
    let frame = read_binary_frame(&mut stream).expect("typed error");
    // The frame itself parsed (op and all), so the error echoes its op.
    assert_eq!(frame.op, op);
    let envelope = binary::decode_response_payload(&frame.payload).unwrap().to_string();
    assert!(envelope.contains("\"ok\":false"), "{envelope}");
    stream.write_all(&good).unwrap();
    let frame = read_binary_frame(&mut stream).expect("the connection must survive");
    assert_eq!(frame.op, op);

    // After the whole battery the server still serves.
    let mut client = Client::connect(addr).unwrap();
    client.health().unwrap();
    server.shutdown_handle().trigger();
    server.join();
}
