//! Live mutation through the serve layer: committed batches change
//! served scores, invalidate exactly the stale cache entries, and keep
//! the O(1) `watch_scores` path bit-identical to the full scoring path —
//! including under concurrent mutating and scoring connections, across a
//! server restart (WAL adoption), and across compaction.

use circlekit_graph::VertexSet;
use circlekit_live::{wal_path_for, LiveSnapshot, Mutation};
use circlekit_scoring::{Scorer, ScoringFunction};
use circlekit_serve::protocol::wire;
use circlekit_serve::{Client, ErrorKind, ServeConfig, Server, SnapshotRegistry};
use circlekit_synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::Value;
use std::path::Path;

fn fixture() -> circlekit_synth::SynthDataset {
    presets::google_plus()
        .scaled(0.004)
        .generate(&mut SmallRng::seed_from_u64(2014))
}

fn start_server(config: ServeConfig) -> (Server, circlekit_synth::SynthDataset) {
    let data = fixture();
    let mut registry = SnapshotRegistry::new();
    registry
        .insert("gplus", data.graph.clone(), data.groups.clone())
        .unwrap();
    let server = Server::start(registry, config, ("127.0.0.1", 0)).unwrap();
    (server, data)
}

fn get_u64(value: &Value, key: &str) -> u64 {
    match wire::get(value, key) {
        Some(Value::UInt(u)) => *u,
        other => panic!("field {key:?}: {other:?}"),
    }
}

fn bits(scores: &[f64]) -> Vec<u64> {
    scores.iter().map(|s| s.to_bits()).collect()
}

fn watch_bits(client: &mut Client, snapshot: &str, group: usize) -> Vec<u64> {
    let response = client.watch_scores(snapshot, group).unwrap();
    bits(&wire::get_scores(&response, "scores").unwrap())
}

#[test]
fn committed_mutations_change_served_scores_and_invalidate_the_cache() {
    let (server, data) = start_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Pick a group with at least two members so flipping an internal
    // edge is guaranteed to move its scores.
    let g = data.groups.iter().position(|g| g.len() >= 2).unwrap();
    let before = client.score_group("gplus", g, Some("paper"), None).unwrap();
    let before_scores = Client::scores_of(&before).unwrap();

    // Mirror the committed mutations on an in-memory LiveSnapshot so the
    // expected scores come from the offline scorer over the same
    // composed graph.
    let mut mirror = LiveSnapshot::in_memory(data.graph.clone(), data.groups.clone());
    let (a, b) = (data.groups[g].as_slice()[0], data.groups[g].as_slice()[1]);
    let mut batch = vec![Mutation::AddEdge { u: a, v: b }];
    let mut response = client.apply_mutations("gplus", &batch).unwrap();
    if get_u64(&response, "applied") == 0 {
        // The edge already existed: removing it moves the scores instead.
        batch = vec![Mutation::RemoveEdge { u: a, v: b }];
        response = client.apply_mutations("gplus", &batch).unwrap();
    }
    assert_eq!(get_u64(&response, "applied"), 1, "{response}");
    assert_eq!(get_u64(&response, "version"), 1, "first commit bumps to version 1");
    // Exactly the four paper scores cached by the probe above are stale.
    assert_eq!(get_u64(&response, "cache_invalidated"), 4, "{response}");
    mirror.apply(&batch).unwrap();

    let after = client.score_group("gplus", g, Some("paper"), None).unwrap();
    assert!(
        matches!(wire::get(&after, "cached"), Some(Value::Bool(false))),
        "invalidated entries must not answer the post-commit request"
    );
    let after_scores = Client::scores_of(&after).unwrap();
    assert_ne!(bits(&before_scores), bits(&after_scores), "scores must move");

    // Bit-identical to the offline scorer over the composed graph.
    let graph = mirror.materialize();
    let mut offline = Scorer::new(&graph);
    let expected: Vec<u64> = ScoringFunction::PAPER
        .iter()
        .map(|&f| offline.score(f, &mirror.groups()[g]).to_bits())
        .collect();
    assert_eq!(bits(&after_scores), expected);

    // And the O(1) watch path agrees with the full path, bit for bit.
    assert_eq!(watch_bits(&mut client, "gplus", g), expected);

    let stats = client.stats().unwrap();
    assert!(get_u64(&stats, "mutations_applied") >= 1, "{stats}");
    assert_eq!(get_u64(&stats, "cache_invalidations"), 4, "{stats}");

    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn rejections_report_the_applied_prefix_and_typed_errors() {
    let (server, data) = start_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let n = data.graph.node_count() as u32;
    let batch = vec![
        Mutation::AddVertex,
        Mutation::AddEdge { u: n + 100, v: 0 }, // out of range: rejected
        Mutation::AddVertex,                    // never reached
    ];
    let response = client.apply_mutations("gplus", &batch).unwrap();
    assert_eq!(get_u64(&response, "applied"), 1, "{response}");
    let rejected = wire::get(&response, "rejected").unwrap();
    assert_eq!(get_u64(rejected, "index"), 1, "{response}");
    assert!(
        matches!(wire::get(rejected, "message"), Some(Value::Str(m)) if m.contains("range")),
        "{response}"
    );

    let err = client.apply_mutations("nope", &[Mutation::AddVertex]).unwrap_err();
    assert!(err.is_kind(ErrorKind::NotFound), "{err}");
    let err = client.watch_scores("gplus", 99_999).unwrap_err();
    assert!(err.is_kind(ErrorKind::NotFound), "{err}");
    // In-memory snapshots have no CKS1 file to fold a WAL into.
    let err = client.compact("gplus").unwrap_err();
    assert!(err.is_kind(ErrorKind::BadRequest), "{err}");

    let stats = client.stats().unwrap();
    assert!(get_u64(&stats, "mutations_rejected") >= 1, "{stats}");

    server.shutdown_handle().trigger();
    server.join();
}

/// The satellite property: LRU invalidation and eviction accounting stay
/// consistent while mutating and scoring connections race. The capacity
/// is deliberately tiny so evictions and invalidations both occur.
#[test]
fn concurrent_mutators_and_scorers_keep_cache_accounting_consistent() {
    let config = ServeConfig { workers: 4, cache_capacity: 8, ..ServeConfig::default() };
    let (server, data) = start_server(config);
    let addr = server.local_addr();
    let groups = data.groups.len().min(6);

    std::thread::scope(|scope| {
        // Three scorers hammer the same groups with full-path requests.
        for s in 0..3 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..30 {
                    let g = (s + i) % groups;
                    let response = client.score_group("gplus", g, Some("paper"), None).unwrap();
                    assert!(wire::get(&response, "scores").is_some());
                }
            });
        }
        // Two mutators commit always-valid batches and read the watch
        // path between commits.
        for _ in 0..2 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..15 {
                    let response =
                        client.apply_mutations("gplus", &[Mutation::AddVertex]).unwrap();
                    assert_eq!(get_u64(&response, "applied"), 1);
                    if i % 5 == 0 {
                        let watched = client.watch_scores("gplus", 0).unwrap();
                        assert!(wire::get(&watched, "version").is_some());
                    }
                }
            });
        }
    });

    // Deterministic tail on a quiet server: 3 groups × 4 paper functions
    // are 12 distinct keys, so an 8-entry cache must evict at least 4.
    let mut client = Client::connect(addr).unwrap();
    for g in 0..3 {
        client.score_group("gplus", g, Some("paper"), None).unwrap();
    }
    // Group 2 was inserted last; its entries are still resident.
    let warm = client.score_group("gplus", 2, Some("paper"), None).unwrap();
    assert!(matches!(wire::get(&warm, "cached"), Some(Value::Bool(true))), "{warm}");

    // A commit invalidates every resident entry (all 8 are now stale).
    let response = client.apply_mutations("gplus", &[Mutation::AddVertex]).unwrap();
    assert_eq!(get_u64(&response, "cache_invalidated"), 8, "{response}");
    let cold = client.score_group("gplus", 2, Some("paper"), None).unwrap();
    assert!(matches!(wire::get(&cold, "cached"), Some(Value::Bool(false))), "{cold}");

    // The incremental and full paths still agree bit for bit.
    for g in 0..groups {
        let full = client.score_group("gplus", g, Some("paper"), None).unwrap();
        let full_bits = bits(&Client::scores_of(&full).unwrap());
        assert_eq!(watch_bits(&mut client, "gplus", g), full_bits, "group {g}");
    }

    server.shutdown_handle().trigger();
    let stats = server.join();
    assert!(stats.mutations_applied >= 31, "{stats:?}");
    assert!(stats.cache.evictions >= 4, "{stats:?}");
    assert!(stats.cache.invalidations >= 8, "{stats:?}");
    assert!(stats.cache.entries <= 8, "{stats:?}");
    assert!(stats.queue_depth_max >= 1, "{stats:?}");
    assert_eq!(stats.ok_responses + stats.error_responses, stats.requests, "{stats:?}");
}

#[test]
fn wal_survives_restart_and_compaction_preserves_scores() {
    let dir = std::env::temp_dir().join("circlekit-serve-live-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("restart-{}.cks", std::process::id()));
    let path_str = path.to_string_lossy().into_owned();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));

    let data = fixture();
    let groups: Vec<VertexSet> = data.groups.iter().take(4).cloned().collect();
    circlekit_store::save_snapshot(&path, &data.graph, &groups).unwrap();
    let n = data.graph.node_count() as u32;

    // Server 1: commit guaranteed-valid mutations, record every group's
    // watch scores, and exit without compacting — the WAL is the only
    // record of the mutations.
    let mutations = vec![
        Mutation::AddVertex,
        Mutation::AddVertex,
        Mutation::AddEdge { u: n, v: n + 1 },
        Mutation::AddMember { group: 0, node: n },
    ];
    let expected: Vec<Vec<u64>> = {
        let mut registry = SnapshotRegistry::new();
        registry.load(&path_str, Some("disk")).unwrap();
        let server = Server::start(registry, ServeConfig::default(), ("127.0.0.1", 0)).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let response = client.apply_mutations("disk", &mutations).unwrap();
        assert_eq!(get_u64(&response, "applied"), mutations.len() as u64);
        assert_eq!(get_u64(&response, "wal_records"), mutations.len() as u64);
        let expected =
            (0..groups.len()).map(|g| watch_bits(&mut client, "disk", g)).collect();
        server.shutdown_handle().trigger();
        server.join();
        expected
    };
    assert!(wal_path_for(&path).exists(), "the WAL must outlive the server");

    // Server 2: startup adopts the WAL, so both score paths serve the
    // pre-restart state; compaction folds the log without moving scores.
    {
        let mut registry = SnapshotRegistry::new();
        registry.load(&path_str, Some("disk")).unwrap();
        let server = Server::start(registry, ServeConfig::default(), ("127.0.0.1", 0)).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for (g, want) in expected.iter().enumerate() {
            assert_eq!(&watch_bits(&mut client, "disk", g), want, "group {g} after restart");
            let full = client.score_group("disk", g, Some("paper"), None).unwrap();
            assert_eq!(&bits(&Client::scores_of(&full).unwrap()), want, "full path, group {g}");
        }
        let listing = client.list_snapshots().unwrap().to_string();
        assert!(
            listing.contains(&format!("\"version\":{}", mutations.len())),
            "adoption reports the replayed version: {listing}"
        );

        let response = client.compact("disk").unwrap();
        assert_eq!(get_u64(&response, "folded_records"), mutations.len() as u64);
        assert!(!wal_path_for(&path).exists(), "compaction unlinks the WAL");
        for (g, want) in expected.iter().enumerate() {
            assert_eq!(&watch_bits(&mut client, "disk", g), want, "group {g} after compact");
        }
        server.shutdown_handle().trigger();
        server.join();
    }

    // Server 3: a clean start from the compacted snapshot alone.
    {
        let mut registry = SnapshotRegistry::new();
        registry.load(&path_str, Some("disk")).unwrap();
        let server = Server::start(registry, ServeConfig::default(), ("127.0.0.1", 0)).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for (g, want) in expected.iter().enumerate() {
            assert_eq!(&watch_bits(&mut client, "disk", g), want, "group {g} after compact");
        }
        server.shutdown_handle().trigger();
        server.join();
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
    let _ = std::fs::remove_file(Path::new(&format!("{path_str}.tmp")));
}
