//! Hostile-input tests: malformed frames, oversized length prefixes,
//! mid-request disconnects, overload, and deadline expiry must produce a
//! typed error response or a clean close — never a panic or a hang.

use circlekit_graph::Graph;
use circlekit_serve::protocol::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use circlekit_serve::{Client, ErrorKind, SnapshotRegistry, ServeConfig, Server};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

fn small_server(config: ServeConfig) -> Server {
    let graph = Graph::from_edges(
        false,
        [(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
    );
    let groups = vec![
        circlekit_graph::VertexSet::from_vec(vec![0, 1, 2]),
        circlekit_graph::VertexSet::from_vec(vec![3, 4, 5]),
    ];
    let mut registry = SnapshotRegistry::new();
    registry.insert("tiny", graph, groups).unwrap();
    Server::start(registry, config, ("127.0.0.1", 0)).unwrap()
}

fn finish(server: Server) {
    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn malformed_payloads_get_typed_bad_request_responses() {
    let server = small_server(ServeConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    for payload in [
        "not json",
        "[]",
        "{\"op\":\"warp-core-breach\"}",
        "{\"op\":\"score_group\"}",
        "{\"op\":\"score_group\",\"snapshot\":\"tiny\",\"group\":\"zero\"}",
    ] {
        write_frame(&mut stream, payload).unwrap();
        let response = read_frame(&mut stream).unwrap();
        assert!(response.contains("\"ok\":false"), "{payload} => {response}");
        assert!(response.contains("bad-request"), "{payload} => {response}");
    }
    // The connection survives garbage and still answers real requests.
    write_frame(&mut stream, "{\"op\":\"health\"}").unwrap();
    assert!(read_frame(&mut stream).unwrap().contains("\"ok\":true"));
    finish(server);
}

#[test]
fn unknown_snapshot_group_and_members_are_not_found_or_bad_request() {
    let server = small_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.score_group("nope", 0, None, None).unwrap_err();
    assert!(err.is_kind(ErrorKind::NotFound), "{err}");
    let err = client.score_group("tiny", 99, None, None).unwrap_err();
    assert!(err.is_kind(ErrorKind::NotFound), "{err}");
    let err = client.score_set("tiny", &[0, 99], None, None).unwrap_err();
    assert!(err.is_kind(ErrorKind::BadRequest), "{err}");
    finish(server);
}

#[test]
fn oversized_length_prefix_is_refused_and_the_connection_closed() {
    let server = small_server(ServeConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes())
        .unwrap();
    stream.flush().unwrap();
    let response = read_frame(&mut stream).unwrap();
    assert!(response.contains("frame-too-large"), "{response}");
    // The stream is desynchronised by construction, so the server closes
    // it after the error instead of guessing at a resync point.
    assert!(matches!(read_frame(&mut stream), Err(FrameError::Closed)));
    // The server itself is unharmed.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.health().unwrap();
    finish(server);
}

#[test]
fn mid_request_disconnects_leave_the_server_serving() {
    let server = small_server(ServeConfig::default());
    let addr = server.local_addr();
    // Half a length prefix, then gone.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&[0u8, 0]).unwrap();
    drop(stream);
    // A full prefix promising bytes that never arrive, then gone.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&64u32.to_be_bytes()).unwrap();
    stream.write_all(b"{\"op\":").unwrap();
    drop(stream);
    // Disconnect while a response is pending.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        "{\"op\":\"score_group\",\"snapshot\":\"tiny\",\"group\":0}",
    )
    .unwrap();
    drop(stream);

    std::thread::sleep(Duration::from_millis(50));
    let mut client = Client::connect(addr).unwrap();
    client.health().unwrap();
    client.score_group("tiny", 0, None, None).unwrap();
    finish(server);
}

#[test]
fn expired_deadline_is_a_typed_refusal() {
    let server = small_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client
        .score_group("tiny", 0, None, Some(0))
        .unwrap_err();
    assert!(err.is_kind(ErrorKind::DeadlineExceeded), "{err}");
    // The connection still works afterwards.
    client.score_group("tiny", 0, None, None).unwrap();
    finish(server);
}

#[test]
fn deadline_expiring_in_the_queue_is_refused_at_the_batch_boundary() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        debug_ops: true,
        ..ServeConfig::default()
    };
    let server = small_server(config);
    let addr = server.local_addr();
    // Occupy the single worker, then enqueue a request whose deadline
    // lapses while it waits.
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.call(
            "debug_sleep",
            vec![("millis".to_string(), serde_json::Value::UInt(250))],
        )
    });
    std::thread::sleep(Duration::from_millis(60));
    let mut client = Client::connect(addr).unwrap();
    let err = client
        .score_group("tiny", 0, None, Some(50))
        .unwrap_err();
    assert!(err.is_kind(ErrorKind::DeadlineExceeded), "{err}");
    sleeper.join().unwrap().unwrap();
    finish(server);
}

#[test]
fn saturated_queue_answers_overloaded_immediately() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        debug_ops: true,
        ..ServeConfig::default()
    };
    let server = small_server(config);
    let addr = server.local_addr();
    // One sleeper occupies the worker, a second fills the queue's single
    // slot; the third request must be refused synchronously.
    let sleepers: Vec<_> = (0..2)
        .map(|_| {
            let handle = std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.call(
                    "debug_sleep",
                    vec![("millis".to_string(), serde_json::Value::UInt(300))],
                )
            });
            std::thread::sleep(Duration::from_millis(60));
            handle
        })
        .collect();
    let mut client = Client::connect(addr).unwrap();
    let started = std::time::Instant::now();
    let err = client.score_group("tiny", 0, None, None).unwrap_err();
    assert!(err.is_kind(ErrorKind::Overloaded), "{err}");
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "overload must be reported synchronously, not after the queue drains"
    );
    for sleeper in sleepers {
        sleeper.join().unwrap().unwrap();
    }
    let stats = server.stats();
    assert!(stats.overloaded >= 1);
    finish(server);
}

#[test]
fn debug_ops_are_rejected_unless_enabled() {
    let server = small_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client
        .call(
            "debug_sleep",
            vec![("millis".to_string(), serde_json::Value::UInt(1))],
        )
        .unwrap_err();
    assert!(err.is_kind(ErrorKind::BadRequest), "{err}");
    finish(server);
}

#[test]
fn requests_after_shutdown_are_refused_as_shutting_down() {
    let server = small_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    // New connections are no longer accepted once the acceptor observes
    // the flag; a pre-existing connection that races a request in may be
    // refused with shutting-down. Either way, join() must complete: the
    // real assertion is that nothing hangs.
    let stats = server.join();
    assert!(stats.ok_responses >= 1);
}
