//! End-to-end sharded cluster over real sockets: shard processes serving
//! halo sub-snapshots, a coordinator scatter-gathering partials, and the
//! acceptance properties of the subsystem — coordinator answers are
//! bit-identical to a single-node server over the parent graph, and a
//! dead shard is a typed `shard-unavailable` refusal, never a silently
//! partial score.

use circlekit_scoring::{Scorer, ScoringFunction};
use circlekit_serve::{
    Client, ClientError, CoordinatorConfig, ErrorKind, Server, ServeConfig, SnapshotRegistry,
};
use circlekit_shard::{manifest_for, shard_graph};
use circlekit_store::save_shard_snapshot;
use circlekit_synth::SynthDataset;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

fn fixture() -> SynthDataset {
    circlekit_synth::presets::google_plus()
        .scaled(0.003)
        .generate(&mut SmallRng::seed_from_u64(9))
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("circlekit-serve-shard-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Packs `count` halo sub-snapshots of the fixture under
/// `<dir>/web.shard<i>.cks` — the library-level equivalent of running
/// `pack --shard` once per index — and returns their paths.
fn pack_shards(dir: &Path, data: &SynthDataset, count: u32) -> Vec<String> {
    let median = Scorer::new(&data.graph).median_degree();
    (0..count)
        .map(|index| {
            let manifest = manifest_for(&data.graph, median, 0xC0FFEE, count, index);
            let sub = shard_graph(&data.graph, count, index);
            let path = dir.join(format!("web.shard{index}.cks"));
            let path = path.to_string_lossy().into_owned();
            save_shard_snapshot(&path, &sub, &data.groups, &manifest).unwrap();
            path
        })
        .collect()
}

fn boot_shard(path: &str) -> Server {
    let mut registry = SnapshotRegistry::new();
    registry.load(path, None).unwrap();
    Server::start(registry, ServeConfig::default(), ("127.0.0.1", 0)).unwrap()
}

fn boot_coordinator(shard_addrs: &[SocketAddr]) -> std::io::Result<Server> {
    let config = ServeConfig {
        coordinator: Some(CoordinatorConfig::new(
            shard_addrs.iter().map(|a| a.to_string()).collect(),
        )),
        ..ServeConfig::default()
    };
    Server::start(SnapshotRegistry::new(), config, ("127.0.0.1", 0))
}

/// Shard fleet + coordinator + a single-node server over the parent, so
/// tests can compare whole response payloads byte for byte.
struct Cluster {
    shards: Vec<Server>,
    shard_paths: Vec<String>,
    coordinator: Server,
    single: Server,
    data: SynthDataset,
}

fn boot_cluster(name: &str, count: u32) -> Cluster {
    let dir = test_dir(name);
    let data = fixture();
    let shard_paths = pack_shards(&dir, &data, count);
    let shards: Vec<Server> = shard_paths.iter().map(|p| boot_shard(p)).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(Server::local_addr).collect();
    let coordinator = boot_coordinator(&addrs).unwrap();
    let mut registry = SnapshotRegistry::new();
    registry.insert("web", data.graph.clone(), data.groups.clone()).unwrap();
    let single = Server::start(registry, ServeConfig::default(), ("127.0.0.1", 0)).unwrap();
    Cluster { shards, shard_paths, coordinator, single, data }
}

impl Cluster {
    fn stop(self) {
        for server in self.shards {
            server.shutdown_handle().trigger();
            server.join();
        }
        self.coordinator.shutdown_handle().trigger();
        self.coordinator.join();
        self.single.shutdown_handle().trigger();
        self.single.join();
    }
}

#[test]
fn coordinator_responses_are_byte_identical_to_a_single_node_server() {
    let cluster = boot_cluster("byte-identical", 3);
    let mut via_coord = Client::connect(cluster.coordinator.local_addr()).unwrap();
    let mut via_single = Client::connect(cluster.single.local_addr()).unwrap();
    let groups = cluster.data.groups.len().min(10);

    for g in 0..groups {
        for spec in [Some("all"), Some("paper"), None] {
            let sharded = via_coord.score_group("web", g, spec, None).unwrap();
            let single = via_single.score_group("web", g, spec, None).unwrap();
            assert_eq!(
                uncached(&sharded),
                uncached(&single),
                "score_group response diverged for group {g}, functions {spec:?}"
            );
        }
    }

    // Explicit members, unsorted and with a duplicate: the deduplicated
    // size and every score must come back identical.
    let members: Vec<u32> = vec![9, 2, 4, 2, 17, 0];
    let sharded = via_coord.score_set("web", &members, Some("all"), None).unwrap();
    let single = via_single.score_set("web", &members, Some("all"), None).unwrap();
    assert_eq!(uncached(&sharded), uncached(&single));

    // And against the offline scorer, bit for bit.
    let mut offline = Scorer::new(&cluster.data.graph);
    for (g, group) in cluster.data.groups.iter().enumerate().take(groups) {
        let response = via_coord.score_group("web", g, Some("all"), None).unwrap();
        let served = Client::scores_of(&response).unwrap();
        for (f, &function) in ScoringFunction::ALL.iter().enumerate() {
            assert_eq!(
                served[f].to_bits(),
                offline.score(function, group).to_bits(),
                "group {g}, function {}",
                function.name()
            );
        }
    }
    cluster.stop();
}

#[test]
fn suggest_circles_routes_to_the_owning_shard_and_matches_single_node() {
    let cluster = boot_cluster("suggest-routing", 3);
    let mut via_coord = Client::connect(cluster.coordinator.local_addr()).unwrap();
    let mut via_single = Client::connect(cluster.single.local_addr()).unwrap();
    for ego in [0u32, 3, 11, 29] {
        let sharded = via_coord.suggest_circles("web", ego, 7, 3, 4).unwrap();
        let single = via_single.suggest_circles("web", ego, 7, 3, 4).unwrap();
        assert_eq!(
            sharded.to_string(),
            single.to_string(),
            "suggest_circles response diverged for ego {ego}"
        );
    }
    // An ego past the parent's node space is refused with the same
    // message a single-node server renders.
    let bad = cluster.data.graph.node_count() as u32;
    let sharded = via_coord.suggest_circles("web", bad, 7, 3, 4).unwrap_err();
    let single = via_single.suggest_circles("web", bad, 7, 3, 4).unwrap_err();
    match (&sharded, &single) {
        (
            ClientError::Server { kind: a, message: ma },
            ClientError::Server { kind: b, message: mb },
        ) => {
            assert_eq!(a, b);
            assert_eq!(ma, mb);
        }
        other => panic!("expected matching typed refusals, got {other:?}"),
    }
    cluster.stop();
}

#[test]
fn dead_shard_is_a_typed_refusal_then_recovery_is_exact() {
    let mut cluster = boot_cluster("dead-shard", 3);
    let mut client = Client::connect(cluster.coordinator.local_addr()).unwrap();
    let baseline = client.score_group("web", 0, Some("paper"), None).unwrap().to_string();

    // Kill shard 1. A set that was never gathered must be refused —
    // naming the shard — rather than reduced from the two partials the
    // coordinator can still gather.
    let victim = cluster.shards.remove(1);
    let victim_addr = victim.local_addr();
    victim.shutdown_handle().trigger();
    victim.join();
    let err = client.score_group("web", 1, Some("paper"), None).unwrap_err();
    match err {
        ClientError::Server { kind, message } => {
            assert_eq!(kind, ErrorKind::ShardUnavailable, "{message}");
            assert!(message.contains("shard 1"), "message must name the shard: {message}");
        }
        other => panic!("expected a typed shard-unavailable refusal, got {other:?}"),
    }

    // The baseline group, by contrast, was cached under the shard
    // version vector at the first gather; the shards are immutable, so
    // replaying it needs no scatter and stays exact through the outage
    // (only the `cached` marker differs).
    let replay = client.score_group("web", 0, Some("paper"), None).unwrap().to_string();
    assert_eq!(
        replay,
        baseline.replace("\"cached\":false", "\"cached\":true"),
        "a cached group must replay exactly while a shard is down"
    );

    // Restore the shard on the same port; the failover client reconnects
    // and uncached answers are exact again.
    let mut registry = SnapshotRegistry::new();
    registry.load(&cluster.shard_paths[1], None).unwrap();
    let revived = Server::start(registry, ServeConfig::default(), victim_addr).unwrap();
    cluster.shards.insert(1, revived);
    let mut single = Client::connect(cluster.single.local_addr()).unwrap();
    let recovered = client.score_group("web", 1, Some("paper"), None).unwrap().to_string();
    let expected = single.score_group("web", 1, Some("paper"), None).unwrap().to_string();
    assert_eq!(recovered, expected, "post-recovery scores must be bit-identical");
    cluster.stop();
}

#[test]
fn mismatched_topology_is_a_startup_refusal() {
    let dir = test_dir("mismatched-topology");
    let data = fixture();
    let paths = pack_shards(&dir, &data, 3);
    // Only two of the three shards are given to the coordinator.
    let shards: Vec<Server> = paths.iter().take(2).map(|p| boot_shard(p)).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(Server::local_addr).collect();
    let message = match boot_coordinator(&addrs) {
        Err(err) => err.to_string(),
        Ok(_) => panic!("coordinator must refuse an incomplete topology"),
    };
    assert!(
        message.contains("packed for 3 shards") && message.contains("2 endpoints"),
        "startup refusal must explain the mismatch: {message}"
    );
    for server in shards {
        server.shutdown_handle().trigger();
        server.join();
    }
}

#[test]
fn writes_and_baseline_are_refused_with_typed_errors() {
    let cluster = boot_cluster("typed-refusals", 2);
    let mut via_coord = Client::connect(cluster.coordinator.local_addr()).unwrap();
    let mutations = [circlekit_serve::Mutation::AddEdge { u: 0, v: 1 }];

    let err = via_coord.apply_mutations("web", &mutations).unwrap_err();
    assert!(err.is_kind(ErrorKind::NotPrimary), "{err}");
    let err = via_coord.compact("web").unwrap_err();
    assert!(err.is_kind(ErrorKind::NotPrimary), "{err}");
    let err = via_coord.baseline("web", 0, 4, 7).unwrap_err();
    assert!(err.is_kind(ErrorKind::BadRequest), "{err}");

    // A shard process refuses direct writes too: its sub-snapshot is an
    // immutable projection of the parent.
    let mut via_shard = Client::connect(cluster.shards[0].local_addr()).unwrap();
    let err = via_shard.apply_mutations("web.shard0", &mutations).unwrap_err();
    match err {
        ClientError::Server { kind, message } => {
            assert_eq!(kind, ErrorKind::BadRequest, "{message}");
            assert!(message.contains("immutable partition"), "{message}");
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    cluster.stop();
}

#[test]
fn repeated_gathers_replay_from_the_version_keyed_cache() {
    let cluster = boot_cluster("coord-cache", 2);
    let mut client = Client::connect(cluster.coordinator.local_addr()).unwrap();

    let first = client.score_group("web", 0, Some("paper"), None).unwrap().to_string();
    let shard_requests = |client: &mut Client| -> u64 {
        let stats = client.stats().unwrap();
        let rows = match find(&stats, "shards") {
            Some(serde_json::Value::Seq(rows)) => rows.clone(),
            other => panic!("stats must carry a shards array, got {other:?}"),
        };
        rows.iter()
            .map(|row| match find(row, "requests") {
                Some(serde_json::Value::UInt(n)) => *n,
                other => panic!("requests not an integer: {other:?}"),
            })
            .sum()
    };
    let gathered = shard_requests(&mut client);

    // The replay must not touch any shard, and must render the same
    // payload with only the cached marker flipped.
    let replay = client.score_group("web", 0, Some("paper"), None).unwrap().to_string();
    assert_eq!(replay, first.replace("\"cached\":false", "\"cached\":true"));
    assert_ne!(replay, first, "the replay must be marked cached");
    assert_eq!(shard_requests(&mut client), gathered, "a cache hit must skip the scatter");

    // watch_scores shares the PAPER-function key space with score_group,
    // so it replays from the same entries — and renders identically to
    // its own uncached form (it carries no cached marker).
    let watched = client.watch_scores("web", 0).unwrap().to_string();
    assert_eq!(shard_requests(&mut client), gathered);

    // The hit/miss accounting lands in the ordinary cache_* stats rows.
    let stats = client.stats().unwrap();
    let row = |key: &str| match find(&stats, key) {
        Some(serde_json::Value::UInt(n)) => *n,
        other => panic!("stats row {key} not an integer: {other:?}"),
    };
    assert!(row("cache_hits") >= 8, "two replays of four functions: {}", row("cache_hits"));
    // The all-or-nothing probe short-circuits on its first absence, so
    // an empty cache records one miss per probed request.
    assert!(row("cache_misses") >= 1, "the first gather missed: {}", row("cache_misses"));
    assert!(row("cache_entries") >= 4);
    assert!(watched.contains("\"op\":\"watch_scores\""));
    cluster.stop();
}

#[test]
fn coordinator_stats_expose_per_shard_rows() {
    let cluster = boot_cluster("shard-rows", 2);
    let mut client = Client::connect(cluster.coordinator.local_addr()).unwrap();
    client.score_group("web", 0, None, None).unwrap();

    let stats = client.stats().unwrap();
    let rows = match find(&stats, "shards") {
        Some(serde_json::Value::Seq(rows)) => rows.clone(),
        other => panic!("stats must carry a shards array, got {other:?}"),
    };
    assert_eq!(rows.len(), 2);
    for (index, row) in rows.iter().enumerate() {
        assert_eq!(find(row, "shard"), Some(&serde_json::Value::UInt(index as u64)));
        for key in ["endpoints", "snapshot", "requests", "failures", "inflight", "last_rtt_us"] {
            assert!(find(row, key).is_some(), "row {index} lacks {key}");
        }
        let requests = match find(row, "requests") {
            Some(serde_json::Value::UInt(n)) => *n,
            other => panic!("requests not an integer: {other:?}"),
        };
        assert!(requests >= 1, "the gather must have touched shard {index}");
        assert_eq!(find(row, "last_error"), Some(&serde_json::Value::Null));
    }

    let status = client.repl_status().unwrap();
    assert_eq!(
        find(&status, "role"),
        Some(&serde_json::Value::Str("coordinator".to_string()))
    );
    assert!(matches!(find(&status, "shards"), Some(serde_json::Value::Seq(_))));
    cluster.stop();
}

/// Renders a response with its `cached` flag forced to `false`: repeat
/// queries hit the single-node server's LRU while the coordinator always
/// recomputes, and that operational flag is the one field allowed to
/// differ between the two.
fn uncached(response: &serde_json::Value) -> String {
    let mut response = response.clone();
    if let serde_json::Value::Map(entries) = &mut response {
        for (key, value) in entries.iter_mut() {
            if key == "cached" {
                *value = serde_json::Value::Bool(false);
            }
        }
    }
    response.to_string()
}

fn find<'a>(value: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
    match value {
        serde_json::Value::Map(entries) => {
            entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
        _ => None,
    }
}
