//! Served scores must be *bit-identical* to the offline scoring path —
//! the acceptance property of the serve subsystem — under concurrent
//! clients, with and without cache hits, and for the seeded baseline op.

use circlekit_graph::VertexSet;
use circlekit_sampling::size_matched_random_walk_sets_parallel_with_control;
use circlekit_scoring::{Scorer, ScoringFunction};
use circlekit_serve::{Client, SnapshotRegistry, ServeConfig, Server};
use circlekit_synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn fixture() -> circlekit_synth::SynthDataset {
    presets::google_plus()
        .scaled(0.004)
        .generate(&mut SmallRng::seed_from_u64(2014))
}

fn start_server(config: ServeConfig) -> (Server, circlekit_synth::SynthDataset) {
    let data = fixture();
    let mut registry = SnapshotRegistry::new();
    registry
        .insert("gplus", data.graph.clone(), data.groups.clone())
        .unwrap();
    let server = Server::start(registry, config, ("127.0.0.1", 0)).unwrap();
    (server, data)
}

#[test]
fn served_group_scores_match_offline_scorer_bit_for_bit() {
    let (server, data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut offline = Scorer::new(&data.graph);
    let mut client = Client::connect(addr).unwrap();
    for (g, group) in data.groups.iter().enumerate().take(12) {
        let response = client.score_group("gplus", g, Some("all"), None).unwrap();
        let served = Client::scores_of(&response).unwrap();
        assert_eq!(served.len(), ScoringFunction::ALL.len());
        for (f, &function) in ScoringFunction::ALL.iter().enumerate() {
            let expected = offline.score(function, group);
            assert_eq!(
                served[f].to_bits(),
                expected.to_bits(),
                "group {g}, function {}",
                function.name()
            );
        }
    }
    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let config = ServeConfig { workers: 4, ..ServeConfig::default() };
    let (server, data) = start_server(config);
    let addr = server.local_addr();
    let groups = data.groups.len().min(8);

    // 8 clients race over the same groups; every response must equal the
    // serial offline scorer's answer exactly.
    let transcripts: Vec<Vec<Vec<f64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    (0..groups)
                        .map(|g| {
                            let response =
                                client.score_group("gplus", g, Some("paper"), None).unwrap();
                            Client::scores_of(&response).unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut offline = Scorer::new(&data.graph);
    for (g, group) in data.groups.iter().enumerate().take(groups) {
        let expected: Vec<u64> = ScoringFunction::PAPER
            .iter()
            .map(|&f| offline.score(f, group).to_bits())
            .collect();
        for (c, transcript) in transcripts.iter().enumerate() {
            let got: Vec<u64> = transcript[g].iter().map(|s| s.to_bits()).collect();
            assert_eq!(got, expected, "client {c}, group {g}");
        }
    }
    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn cache_replays_scores_bit_exactly_and_reports_hits() {
    let (server, _data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let first = client.score_group("gplus", 0, Some("paper"), None).unwrap();
    let second = client.score_group("gplus", 0, Some("paper"), None).unwrap();
    let cold = Client::scores_of(&first).unwrap();
    let warm = Client::scores_of(&second).unwrap();
    let bits = |v: &[f64]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&cold), bits(&warm));
    let cached_flag = |v: &serde_json::Value| {
        matches!(
            circlekit_serve::protocol::wire::get(v, "cached"),
            Some(serde_json::Value::Bool(true))
        )
    };
    assert!(!cached_flag(&first), "first hit must be a miss");
    assert!(cached_flag(&second), "second hit must come from the cache");

    // The ad-hoc set path shares the cache via the set digest: scoring
    // the same members as score_set also hits.
    let stats = client.stats().unwrap();
    let hits_before = match circlekit_serve::protocol::wire::get(&stats, "cache_hits") {
        Some(serde_json::Value::UInt(h)) => *h,
        other => panic!("cache_hits missing: {other:?}"),
    };
    assert!(hits_before >= 4, "one full 4-function hit, got {hits_before}");

    server.shutdown_handle().trigger();
    let final_stats = server.join();
    assert!(final_stats.cache.hits >= 4);
    assert!(final_stats.ok_responses >= 3);
}

#[test]
fn score_set_matches_offline_for_ad_hoc_members() {
    let (server, data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let members: Vec<u32> = (0..data.graph.node_count() as u32).step_by(7).collect();
    let response = client.score_set("gplus", &members, Some("all"), None).unwrap();
    let served = Client::scores_of(&response).unwrap();
    let set = VertexSet::from_vec(members);
    let mut offline = Scorer::new(&data.graph);
    for (f, &function) in ScoringFunction::ALL.iter().enumerate() {
        assert_eq!(
            served[f].to_bits(),
            offline.score(function, &set).to_bits(),
            "{}",
            function.name()
        );
    }
    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn baseline_is_deterministic_and_matches_offline_sampling() {
    let (server, data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();

    let first = a.baseline("gplus", 1, 6, 77).unwrap();
    let second = b.baseline("gplus", 1, 6, 77).unwrap();
    assert_eq!(
        first.to_string(),
        second.to_string(),
        "same (group, samples, seed) must serve the same bytes"
    );

    // Reproduce the baseline means offline: seeded size-matched walks
    // scored with the same functions, averaged in walk order.
    let group = &data.groups[1];
    let sizes = vec![group.len(); 6];
    let control = circlekit_graph::RunControl::new();
    let walks = size_matched_random_walk_sets_parallel_with_control(
        &data.graph,
        &sizes,
        77,
        circlekit_scoring::default_threads(),
        &control,
    )
    .unwrap();
    let mut offline = Scorer::new(&data.graph);
    let expected: Vec<f64> = ScoringFunction::PAPER
        .iter()
        .map(|&f| {
            let sum: f64 = walks.iter().map(|w| offline.score(f, w)).sum();
            sum / 6.0
        })
        .collect();
    let served = circlekit_serve::protocol::wire::get_scores(&first, "baseline_means").unwrap();
    for (i, (&got, &want)) in served.iter().zip(&expected).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "baseline mean {i}");
    }

    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn listings_describe_the_registry() {
    let (server, data) = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let health = client.health().unwrap();
    assert!(health.to_string().contains("\"serving\""));

    let snaps = client.list_snapshots().unwrap();
    let rendered = snaps.to_string();
    assert!(rendered.contains("\"gplus\""), "{rendered}");
    assert!(
        rendered.contains(&format!("\"nodes\":{}", data.graph.node_count())),
        "{rendered}"
    );

    let groups = client.list_groups("gplus").unwrap();
    let rendered = groups.to_string();
    assert!(
        rendered.contains(&format!("\"groups\":{}", data.groups.len())),
        "{rendered}"
    );

    server.shutdown_handle().trigger();
    server.join();
}

#[test]
fn shutdown_drains_queued_work_before_exit() {
    let config = ServeConfig { workers: 1, ..ServeConfig::default() };
    let (server, _data) = start_server(config);
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    // Queue several requests from parallel clients, trigger shutdown
    // while they are in flight, and require every one of them to be
    // answered (ok or a typed shutting-down refusal — never a hang or a
    // dropped connection mid-response).
    let outcomes: Vec<bool> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    match client.score_group("gplus", i % 3, None, None) {
                        Ok(_) => true,
                        Err(e) => {
                            // A request that raced shutdown may be refused
                            // with the typed kind, or — if the connection
                            // never left the accept backlog — see a
                            // transport-level close. Anything else (a
                            // malformed response, a wrong error kind) is a
                            // bug.
                            let acceptable = e.is_kind(circlekit_serve::ErrorKind::ShuttingDown)
                                || matches!(
                                    e,
                                    circlekit_serve::ClientError::Io(_)
                                        | circlekit_serve::ClientError::Frame(_)
                                );
                            assert!(acceptable, "unexpected failure: {e}");
                            false
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(10));
        handle.trigger();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert!(!outcomes.is_empty());
    let stats = server.join();
    assert_eq!(stats.ok_responses + stats.error_responses, stats.requests);
}

/// A CKS2 (compressed, degree-relabelled) snapshot file served through
/// the registry answers bit-identically to the same data served from a
/// CKS1 file and to the offline scorer: the registry's load path
/// dispatches on the magic and un-permutes on materialisation.
#[test]
fn cks2_snapshot_files_serve_bit_identical_scores() {
    use circlekit_store::{save_cks2_snapshot, save_snapshot, Cks2PackOptions};

    let data = fixture();
    let dir = std::env::temp_dir().join(format!("circlekit-serve-cks2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("fixture.cks1");
    let p2 = dir.join("fixture.cks2");
    save_snapshot(&p1, &data.graph, &data.groups).unwrap();
    save_cks2_snapshot(&p2, &data.graph, &data.groups, &Cks2PackOptions::default()).unwrap();
    assert!(std::fs::metadata(&p2).unwrap().len() < std::fs::metadata(&p1).unwrap().len());

    let mut registry = SnapshotRegistry::new();
    registry.load(p1.to_str().unwrap(), Some("v1")).unwrap();
    registry.load(p2.to_str().unwrap(), Some("v2")).unwrap();
    let server = Server::start(registry, ServeConfig::default(), ("127.0.0.1", 0)).unwrap();
    let addr = server.local_addr();

    let mut offline = Scorer::new(&data.graph);
    let mut client = Client::connect(addr).unwrap();
    for (g, group) in data.groups.iter().enumerate().take(8) {
        let from_cks1 = Client::scores_of(&client.score_group("v1", g, Some("all"), None).unwrap())
            .unwrap();
        let from_cks2 = Client::scores_of(&client.score_group("v2", g, Some("all"), None).unwrap())
            .unwrap();
        for (f, &function) in ScoringFunction::ALL.iter().enumerate() {
            let expected = offline.score(function, group).to_bits();
            assert_eq!(from_cks1[f].to_bits(), expected, "cks1, group {g}, {}", function.name());
            assert_eq!(from_cks2[f].to_bits(), expected, "cks2, group {g}, {}", function.name());
        }
    }
    server.shutdown_handle().trigger();
    server.join();
}
