//! The sharing contract underneath the server: many threads scoring the
//! same snapshot-backed graph simultaneously must produce exactly the
//! bits a single serial scorer produces.
//!
//! This exercises the path end-to-end through the store: pack a seeded
//! synthetic graph to a `.cks` file, reopen it through the zero-copy
//! [`MappedSnapshot`] / `SnapshotView` path, then hammer the one shared
//! [`Graph`] from N threads at once.

use circlekit_scoring::{ParallelScorer, Scorer, ScoringFunction};
use circlekit_store::{save_snapshot, MappedSnapshot};
use circlekit_synth::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

const THREADS: usize = 8;

fn snapshot_path() -> String {
    let dir = std::env::temp_dir().join("circlekit-serve-concurrency-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("shared.cks").to_string_lossy().into_owned()
}

#[test]
fn n_threads_scoring_one_snapshot_view_graph_match_serial_bit_for_bit() {
    let data = presets::google_plus()
        .scaled(0.004)
        .generate(&mut SmallRng::seed_from_u64(2014));
    let path = snapshot_path();
    let _ = std::fs::remove_file(&path);
    save_snapshot(&path, &data.graph, &data.groups).unwrap();

    // Reopen through the mmap/SnapshotView path; this is the graph the
    // server would share, not the one we just generated.
    let mapped = MappedSnapshot::open(&path).unwrap();
    let view = mapped.view().unwrap();
    let snap = view.to_snapshot().unwrap();
    assert_eq!(snap.graph, data.graph, "snapshot roundtrip must be lossless");
    let graph = Arc::new(snap.graph);
    let groups = Arc::new(snap.groups);
    assert!(groups.len() >= 4, "fixture must provide several groups");

    // Serial baseline, computed once up front.
    let mut serial = Scorer::new(&graph);
    let baseline: Vec<Vec<f64>> = groups
        .iter()
        .map(|g| ScoringFunction::ALL.iter().map(|&f| serial.score(f, g)).collect())
        .collect();
    let median = serial.median_degree();

    // N threads, each with its own scorer over the one shared graph,
    // scoring every group concurrently — half through the serial Scorer,
    // half through the ParallelScorer batch path the server uses.
    let tables: Vec<Vec<Vec<f64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let graph = Arc::clone(&graph);
                let groups = Arc::clone(&groups);
                scope.spawn(move || if t % 2 == 0 {
                    let mut scorer = Scorer::new(&graph);
                    groups
                        .iter()
                        .map(|g| ScoringFunction::ALL.iter().map(|&f| scorer.score(f, g)).collect())
                        .collect()
                } else {
                    let scorer = ParallelScorer::with_graph_median(&graph, median, 2);
                    let stats = scorer.stats_batch(&groups);
                    stats
                        .iter()
                        .map(|s| ScoringFunction::ALL.iter().map(|&f| f.score(s)).collect())
                        .collect::<Vec<Vec<f64>>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, table) in tables.iter().enumerate() {
        assert_eq!(table.len(), baseline.len());
        for (g, (got, want)) in table.iter().zip(&baseline).enumerate() {
            for (f, (&a, &b)) in got.iter().zip(want).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "thread {t}, group {g}, {}: {a} != {b}",
                    ScoringFunction::ALL[f].name()
                );
            }
        }
    }

    let _ = std::fs::remove_file(&path);
}
